"""Tests for the Recorder core: sinks, events, counters, spans."""

import json

import pytest

from repro.obs.recorder import (
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink


class TestDisabledRecorder:
    def test_default_recorder_is_disabled(self):
        assert Recorder().enabled is False

    def test_null_sink_recorder_is_disabled(self):
        assert Recorder(NullSink()).enabled is False

    def test_null_sink_subclass_is_disabled(self):
        class CountingNull(NullSink):
            pass

        assert Recorder(CountingNull()).enabled is False

    def test_disabled_event_and_count_do_nothing(self):
        rec = Recorder()
        rec.event("x", a=1)
        rec.count("x")
        assert rec.counters == {}

    def test_disabled_span_is_shared_noop(self):
        rec = Recorder()
        # Must not allocate a fresh object per call (hot-path guarantee).
        assert rec.span("a") is rec.span("b")
        with rec.span("a"):
            pass
        assert rec.spans == {}

    def test_global_default_is_disabled(self):
        assert get_recorder().enabled is False


class TestEnabledRecorder:
    def test_event_reaches_sink(self):
        rec = Recorder.to_memory()
        rec.event("engine.step", t=1.5, queue=3)
        (record,) = rec.sink.records
        assert record == {
            "type": "event", "name": "engine.step", "t": 1.5, "queue": 3,
        }

    def test_counters_accumulate_without_sink_writes(self):
        rec = Recorder.to_memory()
        rec.count("a")
        rec.count("a", 4)
        rec.count("b", 2.5)
        assert rec.counters == {"a": 5, "b": 2.5}
        assert rec.sink.records == []

    def test_span_times_and_streams(self):
        rec = Recorder.to_memory()
        with rec.span("phase", algorithm="hcpa"):
            pass
        (record,) = rec.sink.records
        assert record["type"] == "span"
        assert record["name"] == "phase"
        assert record["algorithm"] == "hcpa"
        assert record["dur_s"] >= 0.0
        stats = rec.spans["phase"]
        assert stats.count == 1
        assert stats.total >= 0.0
        assert stats.mean == stats.total

    def test_span_records_even_on_exception(self):
        rec = Recorder.to_memory()
        with pytest.raises(RuntimeError):
            with rec.span("phase"):
                raise RuntimeError("boom")
        assert rec.spans["phase"].count == 1

    def test_metrics_rollup(self):
        rec = Recorder.to_memory()
        rec.count("z", 2)
        rec.count("a", 1)
        with rec.span("s"):
            pass
        metrics = rec.metrics()
        assert list(metrics["counters"]) == ["a", "z"]
        assert metrics["spans"]["s"]["count"] == 1
        assert set(metrics["spans"]["s"]) == {
            "count", "total_s", "mean_s", "min_s", "max_s",
        }


class TestGlobalRecorder:
    def test_recording_context_installs_and_restores(self):
        before = get_recorder()
        rec = Recorder.to_memory()
        with recording(rec):
            assert get_recorder() is rec
        assert get_recorder() is before

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(ValueError):
            with recording(Recorder.to_memory()):
                raise ValueError
        assert get_recorder() is before

    def test_set_recorder_none_resets_to_disabled(self):
        set_recorder(Recorder.to_memory())
        try:
            assert get_recorder().enabled
        finally:
            set_recorder(None)
        assert get_recorder().enabled is False


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = Recorder(JsonlSink(path))
        rec.event("a", i=1)
        rec.event("b", x=0.5)
        rec.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        Recorder(JsonlSink(path)).close()
        assert path.exists()

    def test_accepts_open_handle(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with path.open("w") as fh:
            sink = JsonlSink(fh)
            sink.write({"k": 1})
            sink.close()  # must not close a borrowed handle
            assert not fh.closed
        assert json.loads(path.read_text()) == {"k": 1}


class TestMemorySink:
    def test_clear(self):
        sink = MemorySink()
        sink.write({"a": 1})
        assert sink.records
        sink.clear()
        assert sink.records == []
