"""Tests for the Recorder core: sinks, events, counters, spans."""

import json

import pytest

from repro.obs.recorder import (
    Recorder,
    SpanStats,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink


class TestDisabledRecorder:
    def test_default_recorder_is_disabled(self):
        assert Recorder().enabled is False

    def test_null_sink_recorder_is_disabled(self):
        assert Recorder(NullSink()).enabled is False

    def test_null_sink_subclass_is_disabled(self):
        class CountingNull(NullSink):
            pass

        assert Recorder(CountingNull()).enabled is False

    def test_disabled_event_and_count_do_nothing(self):
        rec = Recorder()
        rec.event("x", a=1)
        rec.count("x")
        assert rec.counters == {}

    def test_disabled_span_is_shared_noop(self):
        rec = Recorder()
        # Must not allocate a fresh object per call (hot-path guarantee).
        assert rec.span("a") is rec.span("b")
        with rec.span("a"):
            pass
        assert rec.spans == {}

    def test_global_default_is_disabled(self):
        assert get_recorder().enabled is False


class TestEnabledRecorder:
    def test_event_reaches_sink(self):
        rec = Recorder.to_memory()
        rec.event("engine.step", t=1.5, queue=3)
        (record,) = rec.sink.records
        assert record == {
            "type": "event", "name": "engine.step", "t": 1.5, "queue": 3,
        }

    def test_counters_accumulate_without_sink_writes(self):
        rec = Recorder.to_memory()
        rec.count("a")
        rec.count("a", 4)
        rec.count("b", 2.5)
        assert rec.counters == {"a": 5, "b": 2.5}
        assert rec.sink.records == []

    def test_span_times_and_streams(self):
        rec = Recorder.to_memory()
        with rec.span("phase", algorithm="hcpa"):
            pass
        (record,) = rec.sink.records
        assert record["type"] == "span"
        assert record["name"] == "phase"
        assert record["algorithm"] == "hcpa"
        assert record["dur_s"] >= 0.0
        stats = rec.spans["phase"]
        assert stats.count == 1
        assert stats.total >= 0.0
        assert stats.mean == stats.total

    def test_span_records_even_on_exception(self):
        rec = Recorder.to_memory()
        with pytest.raises(RuntimeError):
            with rec.span("phase"):
                raise RuntimeError("boom")
        assert rec.spans["phase"].count == 1

    def test_metrics_rollup(self):
        rec = Recorder.to_memory()
        rec.count("z", 2)
        rec.count("a", 1)
        with rec.span("s"):
            pass
        metrics = rec.metrics()
        assert list(metrics["counters"]) == ["a", "z"]
        assert metrics["spans"]["s"]["count"] == 1
        assert set(metrics["spans"]["s"]) == {
            "count", "total_s", "mean_s", "min_s", "max_s",
        }

    def test_zero_count_span_serializes_min_as_null(self):
        # Regression: an untouched SpanStats carries min=inf, which
        # json.dumps renders as the non-standard literal `Infinity`.
        stats = SpanStats().to_dict()
        assert stats["min_s"] is None
        assert stats["count"] == 0 and stats["max_s"] == 0.0
        assert "Infinity" not in json.dumps(stats)
        counted = SpanStats()
        counted.add(0.5)
        assert counted.to_dict()["min_s"] == 0.5

    def test_absorb_skips_zero_count_span_aggregates(self):
        payload = Recorder.to_memory().export_state()
        payload["spans"]["empty"] = SpanStats().to_dict()
        parent = Recorder.to_memory()
        parent.absorb(payload)
        assert "empty" not in parent.spans


class TestGlobalRecorder:
    def test_recording_context_installs_and_restores(self):
        before = get_recorder()
        rec = Recorder.to_memory()
        with recording(rec):
            assert get_recorder() is rec
        assert get_recorder() is before

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(ValueError):
            with recording(Recorder.to_memory()):
                raise ValueError
        assert get_recorder() is before

    def test_set_recorder_none_resets_to_disabled(self):
        set_recorder(Recorder.to_memory())
        try:
            assert get_recorder().enabled
        finally:
            set_recorder(None)
        assert get_recorder().enabled is False


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = Recorder(JsonlSink(path))
        rec.event("a", i=1)
        rec.event("b", x=0.5)
        rec.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        Recorder(JsonlSink(path)).close()
        assert path.exists()

    def test_accepts_open_handle(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with path.open("w") as fh:
            sink = JsonlSink(fh)
            sink.write({"k": 1})
            sink.close()  # must not close a borrowed handle
            assert not fh.closed
        assert json.loads(path.read_text()) == {"k": 1}


class TestMemorySink:
    def test_clear(self):
        sink = MemorySink()
        sink.write({"a": 1})
        assert sink.records
        sink.clear()
        assert sink.records == []


class TestExportAbsorb:
    def test_roundtrip_merges_everything(self):
        worker = Recorder.to_memory()
        worker.event("w.event", x=1)
        worker.count("w.counter", 2)
        worker.timing("w.span", 0.5)
        worker.timing("w.span", 0.25)

        parent = Recorder.to_memory()
        parent.count("w.counter", 1)
        parent.timing("w.span", 1.0)
        parent.absorb(worker.export_state())

        assert parent.counters["w.counter"] == 3
        stats = parent.spans["w.span"]
        assert stats.count == 3
        assert stats.total == pytest.approx(1.75)
        assert stats.min == 0.25
        assert stats.max == 1.0
        assert {"type": "event", "name": "w.event", "x": 1} in (
            parent.sink.records
        )

    def test_absorb_order_controls_record_order(self):
        payloads = []
        for i in range(3):
            worker = Recorder.to_memory()
            worker.event("cell", idx=i)
            payloads.append(worker.export_state())
        parent = Recorder.to_memory()
        for payload in payloads:
            parent.absorb(payload)
        assert [r["idx"] for r in parent.sink.records] == [0, 1, 2]

    def test_disabled_recorder_ignores_absorb(self):
        worker = Recorder.to_memory()
        worker.count("c", 5)
        disabled = Recorder()
        disabled.absorb(worker.export_state())
        assert disabled.counters == {}

    def test_export_state_is_picklable(self):
        import pickle

        worker = Recorder.to_memory()
        worker.event("e", a="b")
        worker.count("c")
        worker.timing("s", 0.1)
        state = pickle.loads(pickle.dumps(worker.export_state()))
        parent = Recorder.to_memory()
        parent.absorb(state)
        assert parent.counters["c"] == 1
