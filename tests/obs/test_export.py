"""Tests for the trace exporters: Chrome trace-event JSON, OpenMetrics."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    export_file,
    openmetrics_lines,
    summarize_file,
    validate_chrome_trace,
    validate_openmetrics,
)
from repro.obs.recorder import Recorder, recording
from repro.obs.sinks import JsonlSink
from repro.obs.timeline import Timeline
from repro.obs.report import TraceReadError


def _timeline_records():
    tl = Timeline()
    with tl.context(variant="analytic", n=2000):
        tl.begin_run(dag="d", algorithm="hcpa", model="m")
        tl.task(0, (0, 1), 0.0, 2.0, 0.25)
        tl.xfer(0, 1, 2.0, 3.0, 0.1, 1e6)
        tl.task(1, (2,), 3.0, 5.0, 0.0)
        tl.end_run(engine="object", makespan=5.0, tasks=2, xfers=1)
    return tl.records


class TestChromeTrace:
    def test_events_and_validation(self):
        trace = chrome_trace(_timeline_records())
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        # task0 spans two hosts -> two slices; plus xfer and task1.
        assert len(slices) == 4
        t0 = [e for e in slices if e["name"] == "task0"]
        assert {e["tid"] for e in t0} == {0, 1}
        assert all(e["ts"] == 0.0 and e["dur"] == 2e6 for e in t0)
        (x,) = [e for e in slices if e["cat"] == "xfer"]
        assert x["tid"] == 1001  # lane for destination task 1
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 1
        assert "analytic" in metas[0]["args"]["name"]
        assert "[sim]" in metas[0]["args"]["name"]

    def test_validation_rejects_bad_traces(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "pid": 0,
                            "tid": 0,
                            "name": "t",
                            "ts": float("nan"),
                            "dur": 1.0,
                        }
                    ]
                }
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "M", "pid": 0, "tid": 0, "args": {}}]}
            )

    def test_export_file_chrome(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        tl = Timeline.to_file(path)
        for record in _timeline_records():
            tl.sink.write(record)
        tl.close()
        text = export_file(path, "chrome")
        obj = json.loads(text)
        validate_chrome_trace(obj)

    def test_export_file_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            export_file(tmp_path / "x.jsonl", "svg")


class TestOpenMetrics:
    def test_timeline_rollup(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        tl = Timeline.to_file(path)
        for record in _timeline_records():
            tl.sink.write(record)
        tl.close()
        lines = openmetrics_lines(path)
        assert lines[-1] == "# EOF"
        text = "\n".join(lines)
        assert 'repro_timeline_records_total{kind="task"} 2' in text
        assert 'algorithm="hcpa"' in text
        assert "repro_run_makespan_seconds" in text

    def test_trace_rollup_uses_manifest(self, tmp_path):
        from repro.obs.manifest import RunManifest, emit_manifest
        from repro.platform.personalities import bayreuth_cluster

        path = tmp_path / "trace.jsonl"
        recorder = Recorder(JsonlSink(path))
        with recording(recorder):
            recorder.count("sim.runs", 3)
            with recorder.span("sched.allocate"):
                pass
            manifest = RunManifest.collect(
                seed=0, cluster=bayreuth_cluster(4), recorder=recorder
            )
            emit_manifest(recorder, manifest)
        recorder.close()
        text = "\n".join(openmetrics_lines(path))
        assert 'repro_counter_total{name="sim.runs"} 3' in text
        assert 'repro_span_seconds_total{name="sched.allocate"}' in text
        assert text.endswith("# EOF")

    def test_trace_without_manifest_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "event", "name": "x"}\n')
        with pytest.raises(TraceReadError):
            openmetrics_lines(path)


class TestValidateOpenMetrics:
    """The hand-rolled exposition checker behind the CI smoke scrape."""

    def test_accepts_both_exporter_flavors(self, tmp_path):
        # Timeline rollup.
        path = tmp_path / "tl.jsonl"
        tl = Timeline.to_file(path)
        for record in _timeline_records():
            tl.sink.write(record)
        tl.close()
        validate_openmetrics("\n".join(openmetrics_lines(path)) + "\n")
        # Trace-manifest rollup.
        from repro.obs.manifest import RunManifest, emit_manifest

        trace = tmp_path / "trace.jsonl"
        recorder = Recorder(JsonlSink(trace))
        with recording(recorder):
            recorder.count("sim.runs", 3)
            with recorder.span("sched.allocate"):
                pass
            emit_manifest(
                recorder, RunManifest.collect(seed=0, recorder=recorder)
            )
        recorder.close()
        validate_openmetrics("\n".join(openmetrics_lines(trace)) + "\n")

    def test_accepts_minimal_exposition(self):
        validate_openmetrics(
            "# TYPE up gauge\n"
            'up{host="a",note="esc\\"aped"} 1\n'
            "# TYPE hits counter\n"
            "hits_total 4\n"
            "# EOF"
        )

    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            validate_openmetrics("# TYPE up gauge\nup 1\n")

    def test_rejects_content_after_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            validate_openmetrics("# TYPE up gauge\nup 1\n# EOF\nup 2\n# EOF")

    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            validate_openmetrics("lonely_metric 1\n# EOF")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_openmetrics(
                "# TYPE up gauge\n# TYPE up gauge\nup 1\n# EOF"
            )

    def test_rejects_bad_type_and_keyword(self):
        with pytest.raises(ValueError, match="invalid TYPE"):
            validate_openmetrics("# TYPE up sparkline\nup 1\n# EOF")
        with pytest.raises(ValueError, match="unknown comment keyword"):
            validate_openmetrics("# NOTE up gauge\n# EOF")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="label"):
            validate_openmetrics(
                '# TYPE up gauge\nup{host="unclosed} 1\n# EOF'
            )

    def test_rejects_non_finite_and_non_numeric_values(self):
        with pytest.raises(ValueError, match="not finite"):
            validate_openmetrics("# TYPE up gauge\nup nan\n# EOF")
        with pytest.raises(ValueError, match="not a number"):
            validate_openmetrics("# TYPE up gauge\nup high\n# EOF")

    def test_rejects_wrong_suffix_for_family_type(self):
        with pytest.raises(ValueError, match="suffix"):
            validate_openmetrics(
                "# TYPE hits counter\nhits_rate 1\n# EOF"
            )

    def test_error_carries_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            validate_openmetrics(
                "# TYPE up gauge\nup 1\nbogus metric line\n# EOF"
            )


class TestSummary:
    def test_timeline_summary(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        tl = Timeline.to_file(path)
        for record in _timeline_records():
            tl.sink.write(record)
        tl.close()
        text = summarize_file(path)
        assert "record kinds:" in text
        assert "runs:" in text
        assert "hcpa" in text and "object" in text

    def test_trace_summary_falls_back_to_types(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "event", "name": "x"}\n')
        text = summarize_file(path)
        assert "record types:" in text


class TestDegenerateInputs:
    """Empty and header-only files get specific messages, not silence."""

    @staticmethod
    def _header_only(tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text('{"kind": "meta", "schema": 1, "source": "repro"}\n')
        return path

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceReadError, match="empty"):
            summarize_file(path)
        for fmt in ("chrome", "openmetrics"):
            with pytest.raises(TraceReadError, match="empty"):
                export_file(path, fmt)

    def test_header_only_export_rejected(self, tmp_path):
        path = self._header_only(tmp_path)
        for fmt in ("chrome", "openmetrics"):
            with pytest.raises(TraceReadError, match="header"):
                export_file(path, fmt)

    def test_header_only_summary_notes_missing_runs(self, tmp_path):
        text = summarize_file(self._header_only(tmp_path))
        assert "no run records" in text

    def test_manifest_only_trace_still_exports_openmetrics(self, tmp_path):
        # A --trace-out file whose only record is the manifest is not
        # "empty": its metric rollup is the whole export.
        path = tmp_path / "trace.jsonl"
        rec = Recorder.to_memory()
        with recording(rec):
            with rec.span("sched.allocate"):
                pass
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.collect(seed=0, recorder=rec)
        record = dict(manifest.to_dict())
        record["type"] = "manifest"
        path.write_text(json.dumps(record) + "\n")
        text = export_file(path, "openmetrics")
        assert "repro_span_seconds_total" in text
