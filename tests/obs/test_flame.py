"""Round-trip properties of the flamegraph/Chrome profile exporters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flame import (
    PROFILE_PID,
    chrome_profile_events,
    chrome_profile_trace,
    collapsed_stacks,
    parse_collapsed,
    paths_from_chrome,
)
from repro.obs.prof import Profiler


def _profiler(paths: dict[tuple[str, ...], float]) -> Profiler:
    prof = Profiler()
    for path, seconds in paths.items():
        prof.spans[path] = [1, seconds, seconds, seconds]
    return prof


# Frame names: dotted identifiers, never containing the ';' separator.
_frame = st.text(
    alphabet="abcdefgh.xyz_0123456789", min_size=1, max_size=8
).filter(lambda s: s.strip())
_path = st.lists(_frame, min_size=1, max_size=4).map(tuple)
_paths = st.dictionaries(
    _path,
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=0,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(_paths)
def test_collapsed_round_trip(paths):
    prof = _profiler(paths)
    parsed = parse_collapsed(collapsed_stacks(prof))
    # Every explicit path survives with its self time (total minus
    # direct explicit children, clamped at zero).
    assert set(parsed) == set(paths)
    totals = {p: int(round(s * 1e6)) for p, s in paths.items()}
    for path, self_us in parsed.items():
        child_sum = sum(
            us for p, us in totals.items()
            if len(p) == len(path) + 1 and p[: len(path)] == path
        )
        assert self_us == max(totals[path] - child_sum, 0)


@settings(max_examples=60, deadline=None)
@given(_paths)
def test_chrome_profile_round_trip(paths):
    prof = _profiler(paths)
    events = chrome_profile_events(prof)
    recovered = paths_from_chrome(events)
    # All explicit paths come back with their call counts; implicit
    # parents (prefixes never recorded themselves) appear with count 0.
    for path in paths:
        assert recovered[path] == 1
    for path, count in recovered.items():
        if path not in paths:
            assert count == 0
            assert any(
                p[: len(path)] == path and len(p) > len(path) for p in paths
            )


@settings(max_examples=60, deadline=None)
@given(_paths)
def test_chrome_profile_nesting_is_strict(paths):
    """Children fit inside their parent slice even under clock jitter."""
    events = [
        e for e in chrome_profile_events(_profiler(paths))
        if e["ph"] == "X"
    ]
    spans = {
        tuple(e["args"]["path"].split(";")): (e["ts"], e["ts"] + e["dur"])
        for e in events
    }
    for path, (start, end) in spans.items():
        if len(path) == 1:
            continue
        p_start, p_end = spans[path[:-1]]
        assert p_start <= start and end <= p_end


def test_self_time_clamped_when_children_exceed_parent():
    prof = _profiler({("a",): 0.001, ("a", "b"): 0.005})
    parsed = parse_collapsed(collapsed_stacks(prof))
    assert parsed[("a",)] == 0  # clamped, not negative
    assert parsed[("a", "b")] == 5000


def test_implicit_parent_materialized_in_chrome_lane():
    prof = _profiler({("root", "mid", "leaf"): 0.002})
    events = chrome_profile_events(prof)
    names = [e["name"] for e in events if e["ph"] == "X"]
    assert names == ["root", "mid", "leaf"]
    # The orphan's implicit ancestors carry their child's duration.
    slices = {e["name"]: e["dur"] for e in events if e["ph"] == "X"}
    assert slices["root"] == slices["mid"] == slices["leaf"] == 2000


def test_parse_collapsed_rejects_malformed_lines():
    with pytest.raises(ValueError, match="line 1"):
        parse_collapsed("no-value-here")
    with pytest.raises(ValueError, match="not an integer"):
        parse_collapsed("a;b twelve")


def test_chrome_profile_trace_document_shape():
    prof = _profiler({("a",): 0.001})
    doc = chrome_profile_trace(prof)
    assert doc["displayTimeUnit"] == "ms"
    meta = doc["traceEvents"][0]
    assert meta["ph"] == "M" and meta["pid"] == PROFILE_PID
    # The wall lane composes with the simulated-time timeline export
    # (pid 1) without pid collisions.
    assert PROFILE_PID != 1


def test_empty_profiler_exports_cleanly():
    prof = Profiler()
    assert collapsed_stacks(prof) == ""
    assert parse_collapsed("") == {}
    events = chrome_profile_events(prof)
    assert [e["ph"] for e in events] == ["M"]
    assert paths_from_chrome(events) == {}
