"""Tests for the discrepancy explorer: decomposition, pairing, signs."""

import pytest

from repro.obs.diff import (
    COMPONENTS,
    decompose,
    diff_files,
    diff_timelines,
    render_diff,
    split_runs,
)
from repro.obs.timeline import Timeline, load_timeline


def _emit_run(
    tl,
    *,
    dag="d",
    algorithm="hcpa",
    role=None,
    chain=True,
    scale=1.0,
    startup=0.5,
):
    """One two-task run: task0 -> (xfer or host order) -> task1.

    With ``chain=True`` the tasks are linked by a redistribution taking
    ``1 * scale`` seconds; otherwise task1 queues behind task0 on the
    shared host.  All simulated times follow the engines' discipline:
    each element starts exactly when its gate finishes.
    """
    ctx = tl.context(role=role) if role else None
    if ctx:
        ctx.__enter__()
    tl.begin_run(dag=dag, algorithm=algorithm, model="m")
    t0_end = 2.0 * scale
    tl.task(0, (0,), 0.0, t0_end, 0.0)
    if chain:
        x_end = t0_end + 1.0 * scale
        tl.xfer(0, 1, t0_end, x_end, 0.1, 1e6)
        start1 = x_end
        hosts1 = (1,)
    else:
        start1 = t0_end
        hosts1 = (0,)
    makespan = start1 + 2.0 * scale
    tl.task(1, hosts1, start1, makespan, startup)
    tl.end_run(
        engine="object", makespan=makespan, tasks=2, xfers=int(chain)
    )
    if ctx:
        ctx.__exit__(None, None, None)
    return makespan


class TestDecompose:
    def test_chain_components_sum_exactly(self):
        tl = Timeline()
        makespan = _emit_run(tl, chain=True, startup=0.5)
        (run,) = split_runs(tl.records)
        comp = decompose(run)
        assert comp["exec"] == pytest.approx(3.5)
        assert comp["startup"] == pytest.approx(0.5)
        assert comp["redist"] == pytest.approx(1.0)
        assert comp["other"] == 0.0
        assert sum(comp.values()) == makespan  # exact, not approx

    def test_host_order_gate(self):
        tl = Timeline()
        makespan = _emit_run(tl, chain=False, startup=0.0)
        (run,) = split_runs(tl.records)
        comp = decompose(run)
        assert comp["exec"] == makespan
        assert comp["redist"] == 0.0
        assert sum(comp.values()) == makespan

    def test_gap_lands_in_other(self):
        tl = Timeline()
        tl.begin_run(dag="d", algorithm="hcpa", model="m")
        tl.task(0, (0,), 3.0, 5.0, 0.0)  # starts with no gate at t=3
        tl.end_run(engine="object", makespan=5.0, tasks=1, xfers=0)
        (run,) = split_runs(tl.records)
        comp = decompose(run)
        assert comp["other"] == 3.0
        assert sum(comp.values()) == 5.0

    def test_empty_run(self):
        tl = Timeline()
        tl.begin_run(dag="d", algorithm="hcpa", model="m")
        tl.end_run(engine="object", makespan=0.0, tasks=0, xfers=0)
        (run,) = split_runs(tl.records)
        assert decompose(run) == {name: 0.0 for name in COMPONENTS}


class TestSplitRuns:
    def test_metadata_and_membership(self):
        tl = Timeline()
        with tl.context(variant="analytic", n=2000):
            _emit_run(tl, dag="d1", algorithm="hcpa")
            _emit_run(tl, dag="d1", algorithm="mcpa", role="experiment")
        runs = split_runs(tl.records)
        assert len(runs) == 2
        assert runs[0].variant == "analytic" and runs[0].n == 2000
        assert runs[0].role == "sim" and runs[1].role == "experiment"
        assert set(runs[0].tasks) == {0, 1}
        assert set(runs[0].xfers) == {(0, 1)}
        # Scheduler records outside any run are ignored.
        tl.alloc(0, 2, 1.0, 1.0, 1)
        assert len(split_runs(tl.records)) == 2


class TestDiff:
    def _records(self, scale, *, hcpa_wins=True):
        tl = Timeline()
        with tl.context(variant="v", n=2000):
            _emit_run(tl, algorithm="hcpa", scale=scale)
            _emit_run(
                tl,
                algorithm="mcpa",
                scale=scale * (1.2 if hcpa_wins else 0.8),
            )
        return tl.records

    def test_components_sum_to_makespan_delta(self):
        a, b = self._records(1.0), self._records(1.5)
        diff = diff_timelines(a, b, role="sim")
        assert len(diff["pairs"]) == 2
        for pair in diff["pairs"]:
            assert sum(pair["components"].values()) == pytest.approx(
                pair["delta"], abs=1e-9
            )
            assert pair["delta"] > 0
        assert diff["unmatched_a"] == 0 and diff["unmatched_b"] == 0

    def test_wrong_sign_cells_flagged(self):
        a = self._records(1.0, hcpa_wins=True)
        b = self._records(1.0, hcpa_wins=False)
        diff = diff_timelines(a, b, role="sim")
        assert len(diff["wrong_sign"]) == 1
        cell = diff["wrong_sign"][0]
        assert cell["winner_a"] == "hcpa"
        assert cell["winner_b"] == "mcpa"
        assert cell["gap_a"] * cell["gap_b"] < 0

    def test_agreeing_signs_not_flagged(self):
        a, b = self._records(1.0), self._records(2.0)
        assert diff_timelines(a, b)["wrong_sign"] == []

    def test_movers_ranked_by_abs_delta(self):
        a, b = self._records(1.0), self._records(1.5)
        diff = diff_timelines(a, b, top=2)
        assert len(diff["movers"]) == 2
        deltas = [abs(m["delta"]) for m in diff["movers"]]
        assert deltas == sorted(deltas, reverse=True)

    def test_cross_variant_pairing_drops_variant(self):
        def records(variant):
            tl = Timeline()
            with tl.context(variant=variant, n=2000):
                _emit_run(tl, algorithm="hcpa")
            return tl.records

        diff = diff_timelines(records("analytic"), records("profile"))
        assert len(diff["pairs"]) == 1
        pair = diff["pairs"][0]
        assert pair["variant_a"] == "analytic"
        assert pair["variant_b"] == "profile"

    def test_role_filter_and_any(self):
        a = Timeline()
        _emit_run(a, role="experiment")
        b = Timeline()
        _emit_run(b, role="experiment")
        assert diff_timelines(a.records, b.records, role="sim")["pairs"] == []
        assert len(
            diff_timelines(a.records, b.records, role="experiment")["pairs"]
        ) == 1
        assert len(
            diff_timelines(a.records, b.records, role=None)["pairs"]
        ) == 1

    def test_render_and_diff_files(self, tmp_path):
        for name, hcpa_wins in (("a.jsonl", True), ("b.jsonl", False)):
            tl = Timeline.to_file(tmp_path / name)
            for record in self._records(1.0, hcpa_wins=hcpa_wins):
                tl.sink.write(record)
            tl.close()
        text = diff_files(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
        assert "WRONG-SIGN" in text
        assert "makespan delta" in text
        no_flip = render_diff(
            diff_timelines(self._records(1.0), self._records(1.0)),
            "a", "b",
        )
        assert "wrong-sign cells: none" in no_flip


class TestDegenerateInputs:
    """Empty and run-less timelines are rejected with specific messages."""

    def test_empty_file_rejected(self, tmp_path):
        from repro.obs.report import TraceReadError

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceReadError, match="empty"):
            diff_files(empty, empty)

    def test_header_only_rejected(self, tmp_path):
        from repro.obs.report import TraceReadError

        header = tmp_path / "header.jsonl"
        header.write_text('{"kind": "meta", "schema": 1, "source": "repro"}\n')
        ok = tmp_path / "ok.jsonl"
        tl = Timeline.to_file(ok)
        tl.begin_run(dag="d", algorithm="hcpa", model="m")
        tl.task(0, (0,), 0.0, 1.0, 0.0)
        tl.end_run(engine="object", makespan=1.0, tasks=1, xfers=0)
        tl.close()
        # The offending side is named whichever position it is in.
        for a, b in ((header, ok), (ok, header)):
            with pytest.raises(TraceReadError, match="no completed runs"):
                diff_files(a, b)
