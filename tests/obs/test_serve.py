"""The stdlib metrics endpoint behind ``repro serve-metrics``."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import validate_openmetrics
from repro.obs.live import SNAPSHOT_SCHEMA, LiveTelemetry
from repro.obs.serve import (
    MetricsServer,
    ProviderError,
    file_metrics_provider,
    file_state_provider,
)


@pytest.fixture()
def snapshot_path(tmp_path):
    """A finished live snapshot on disk, as ``--live-out`` leaves it."""
    path = tmp_path / "live.json"
    telemetry = LiveTelemetry(heartbeat_s=0.05, snapshot_path=path).start()
    telemetry.begin_study(2, 1)
    telemetry.cell_started(0, "analytic:mm/hcpa")
    telemetry.cell_finished(0, "analytic:mm/hcpa", 0.2)
    telemetry.cache_hit(1, "analytic:mm/mcpa")
    telemetry.close()
    return path


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


# ----------------------------------------------------------------------
# providers
# ----------------------------------------------------------------------
def test_metrics_provider_renders_live_snapshot(snapshot_path):
    text = file_metrics_provider(snapshot_path)()
    validate_openmetrics(text)
    assert "repro_live_up 1" in text
    assert 'repro_live_cells{state="done"} 2' in text


def test_metrics_provider_missing_file_is_provider_error(tmp_path):
    provider = file_metrics_provider(tmp_path / "absent.json")
    with pytest.raises(ProviderError, match="no snapshot yet"):
        provider()


def test_metrics_provider_falls_back_to_trace_rollup(tmp_path):
    # A non-live source — a --trace-out manifest — re-rolls through the
    # post-hoc exporter on every scrape.
    from repro.obs.manifest import RunManifest, emit_manifest
    from repro.obs.recorder import Recorder, recording
    from repro.obs.sinks import JsonlSink

    path = tmp_path / "trace.jsonl"
    rec = Recorder(JsonlSink(path))
    with recording(rec):
        rec.count("demo.counter", 3)
        with rec.span("demo.span"):
            pass
        emit_manifest(rec, RunManifest.collect(seed=0, recorder=rec))
    rec.close()
    text = file_metrics_provider(path)()
    validate_openmetrics(text)
    assert 'repro_counter_total{name="demo.counter"} 3' in text


def test_metrics_provider_unreadable_file_is_provider_error(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json at all\n")
    with pytest.raises(ProviderError):
        file_metrics_provider(path)()


def test_state_provider_round_trips_snapshot(snapshot_path):
    snap = file_state_provider(snapshot_path)()
    assert snap["schema"] == SNAPSHOT_SCHEMA
    assert snap["study"]["cache_hits"] == 1


def test_state_provider_rejects_non_live_source(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type": "event"}\n')
    with pytest.raises(ProviderError):
        file_state_provider(path)()


# ----------------------------------------------------------------------
# the HTTP server
# ----------------------------------------------------------------------
def test_server_serves_metrics_state_and_index(snapshot_path):
    server = MetricsServer(
        file_metrics_provider(snapshot_path),
        file_state_provider(snapshot_path),
    ).start()
    try:
        status, ctype, body = _get(server.metrics_url)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        validate_openmetrics(body.decode())

        status, ctype, body = _get(server.url + "/state")
        assert status == 200
        assert ctype.startswith("application/json")
        assert json.loads(body)["schema"] == SNAPSHOT_SCHEMA

        status, _, body = _get(server.url + "/")
        assert status == 200
        assert b"/metrics" in body
    finally:
        server.close()


def test_server_404_on_unknown_path(snapshot_path):
    server = MetricsServer(file_metrics_provider(snapshot_path)).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404
        # No state provider behind this server either.
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/state")
        assert err.value.code == 404
    finally:
        server.close()


def test_server_503_until_first_snapshot(tmp_path):
    path = tmp_path / "live.json"
    server = MetricsServer(
        file_metrics_provider(path), file_state_provider(path)
    ).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.metrics_url)
        assert err.value.code == 503
        # The provider re-reads per scrape: once the study writes its
        # first snapshot, the same server turns 200 without restarting.
        telemetry = LiveTelemetry(snapshot_path=path)
        telemetry.begin_study(1, 0)
        telemetry.close()
        status, _, body = _get(server.metrics_url)
        assert status == 200
        validate_openmetrics(body.decode())
    finally:
        server.close()


def test_server_binds_ephemeral_port():
    server = MetricsServer(lambda: "# EOF\n")
    assert server.port > 0
    assert str(server.port) in server.metrics_url
    server.close()
