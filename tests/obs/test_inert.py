"""Observability must be inert by default (the zero-overhead guarantee).

With the default null sink the instrumentation must (a) never call the
sink, (b) never build span objects on the hot path, and (c) leave every
simulated number bit-identical to an instrumented run — tracing observes
the computation, it never participates in it.
"""

from repro.dag.generator import generate_paper_dags
from repro.obs.recorder import Recorder, get_recorder, recording
from repro.obs.sinks import NullSink
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.experiments.runner import run_study
from repro.testbed.tgrid import TGridEmulator


class CountingNullSink(NullSink):
    """A null sink that notices if anything ever reaches it."""

    def __init__(self):
        self.writes = 0

    def write(self, record):
        self.writes += 1


def _small_study(recorder=None):
    emulator = TGridEmulator(bayreuth_cluster(8), seed=0)
    suite = build_analytical_suite(emulator.platform)
    dags = generate_paper_dags(seed=0)[:3]
    if recorder is None:
        return run_study(dags, [suite], emulator)
    with recording(recorder):
        return run_study(dags, [suite], emulator)


class TestNullSinkIsNeverCalled:
    def test_engine_and_study_never_touch_the_sink(self):
        sink = CountingNullSink()
        recorder = Recorder(sink)
        assert recorder.enabled is False  # NullSink subclass => disabled
        result = _small_study(recorder)
        assert len(result) == 6  # 3 dags x 2 algorithms
        assert sink.writes == 0
        # Guarded emission: not even in-memory state accumulates.
        assert recorder.counters == {}
        assert recorder.spans == {}

    def test_global_default_recorder_stays_clean(self):
        _small_study()
        rec = get_recorder()
        assert rec.enabled is False
        assert rec.counters == {}


class TestResultsAreIdenticalEitherWay:
    def test_traced_and_untraced_studies_agree_exactly(self):
        baseline = _small_study()
        traced = _small_study(Recorder.to_memory())
        assert len(baseline) == len(traced)
        for a, b in zip(baseline.records, traced.records):
            # Bit-identical, not approximately equal: the recorder must
            # not perturb RNG streams or float evaluation order.
            assert a.sim_makespan == b.sim_makespan
            assert a.exp_makespan == b.exp_makespan
            assert a.total_alloc == b.total_alloc
            assert a.dag_label == b.dag_label

    def test_traced_study_actually_recorded_something(self):
        recorder = Recorder.to_memory()
        _small_study(recorder)
        assert recorder.counters["engine.steps"] > 0
        assert recorder.counters["study.runs"] == 6
        names = {r.get("name") for r in recorder.sink.records}
        assert "study.record" in names

    def test_manifest_attached_in_both_modes(self):
        untraced = _small_study()
        traced = _small_study(Recorder.to_memory())
        assert untraced.manifest is not None
        assert untraced.manifest.metrics == {}  # disabled => no rollup
        assert traced.manifest is not None
        assert traced.manifest.metrics["counters"]["study.runs"] == 6
        assert untraced.manifest.simulators == ["analytic"]
        assert untraced.manifest.algorithms == ["hcpa", "mcpa"]
