"""Tests for the simulated-time Timeline: emission, context, merge."""

import json

import pytest

from repro.obs.recorder import Recorder
from repro.obs.report import TraceReadError
from repro.obs.sinks import MemorySink
from repro.obs.timeline import Timeline, load_timeline, timeline_lines


class TestEmission:
    def test_header_written_once_lazily(self):
        tl = Timeline()
        assert tl.records == []
        tl.share(0.0, "a", 1.0)
        tl.share(1.0, "a", 2.0)
        metas = [r for r in tl.records if r["kind"] == "meta"]
        assert len(metas) == 1
        assert metas[0] == {"kind": "meta", "schema": 1, "source": "repro"}
        assert tl.records[0]["kind"] == "meta"

    def test_typed_records_carry_their_fields(self):
        tl = Timeline()
        tl.alloc(3, 2, 10.0, 5.0, 1)
        tl.alloc_done("criterion", 7, 4.0, 5.0, 3)
        tl.task(1, (0, 1), 0.0, 2.5, 0.25)
        tl.xfer(1, 2, 2.5, 3.0, 0.1, 1e6)
        kinds = [r["kind"] for r in tl.records]
        assert kinds == ["meta", "alloc", "alloc_done", "task", "xfer"]
        task = tl.records[3]
        assert task["hosts"] == [0, 1]
        assert task["startup"] == 0.25
        assert tl.counts["task"] == 1

    def test_run_scope_tags_records(self):
        tl = Timeline()
        run_id = tl.begin_run(dag="d", algorithm="hcpa", model="analytic")
        tl.task(0, (0,), 0.0, 1.0, 0.0)
        tl.end_run(engine="object", makespan=1.0, tasks=1, xfers=0)
        assert run_id == 0
        task, run = tl.records[1], tl.records[2]
        assert task["run"] == 0 and task["role"] == "sim"
        assert task["dag"] == "d" and task["algorithm"] == "hcpa"
        assert run["kind"] == "run" and run["engine"] == "object"
        assert tl.run_count == 1
        assert tl.engines == {"object"}

    def test_context_overrides_role_default(self):
        tl = Timeline()
        with tl.context(role="experiment", variant="profile"):
            tl.begin_run(dag="d", algorithm="mcpa", model="m")
            tl.end_run(engine="array", makespan=0.0, tasks=0, xfers=0)
        run = tl.records[-1]
        assert run["role"] == "experiment"
        assert run["variant"] == "profile"

    def test_nested_runs_number_sequentially(self):
        tl = Timeline()
        assert tl.begin_run(dag="a") == 0
        tl.end_run(engine="object", makespan=0.0, tasks=0, xfers=0)
        assert tl.begin_run(dag="b") == 1
        tl.end_run(engine="object", makespan=0.0, tasks=0, xfers=0)
        assert [r["run"] for r in tl.records if r["kind"] == "run"] == [0, 1]

    def test_end_run_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Timeline().end_run(engine="object")

    def test_abort_run_pops_without_record(self):
        tl = Timeline()
        tl.begin_run(dag="d")
        tl.abort_run()
        assert all(r["kind"] != "run" for r in tl.records)
        tl.share(0.0, "a", 1.0)
        assert "run" not in tl.records[-1]


class TestMerge:
    def _worker_state(self, dag):
        tl = Timeline()
        tl.begin_run(dag=dag, algorithm="hcpa", model="m")
        tl.task(0, (0,), 0.0, 1.0, 0.0)
        tl.end_run(engine="object", makespan=1.0, tasks=1, xfers=0)
        return tl.export_state()

    def test_absorb_renumbers_runs_by_offset(self):
        parent = Timeline()
        parent.absorb(self._worker_state("a"))
        parent.absorb(self._worker_state("b"))
        runs = [r for r in parent.records if r["kind"] == "run"]
        assert [r["run"] for r in runs] == [0, 1]
        assert [r["dag"] for r in runs] == ["a", "b"]
        assert parent.run_count == 2
        # One merged header, worker headers dropped.
        assert sum(r["kind"] == "meta" for r in parent.records) == 1
        assert parent.counts["task"] == 2

    def test_absorb_matches_serial_emission(self):
        serial = Timeline()
        for dag in ("a", "b"):
            serial.begin_run(dag=dag, algorithm="hcpa", model="m")
            serial.task(0, (0,), 0.0, 1.0, 0.0)
            serial.end_run(engine="object", makespan=1.0, tasks=1, xfers=0)
        merged = Timeline()
        merged.absorb(self._worker_state("a"))
        merged.absorb(self._worker_state("b"))
        assert timeline_lines(merged.records) == timeline_lines(serial.records)

    def test_absorb_through_recorder(self):
        worker = Recorder(MemorySink(), timeline=Timeline())
        worker.timeline.begin_run(dag="a")
        worker.timeline.end_run(
            engine="object", makespan=0.0, tasks=0, xfers=0
        )
        parent = Recorder(MemorySink(), timeline=Timeline())
        parent.absorb(worker.export_state())
        assert parent.timeline.run_count == 1
        assert [r["kind"] for r in parent.timeline.records] == ["meta", "run"]

    def test_recorder_metrics_include_timeline_counters(self):
        rec = Recorder(MemorySink(), timeline=Timeline())
        rec.timeline.begin_run(dag="a")
        rec.timeline.task(0, (0,), 0.0, 1.0, 0.0)
        rec.timeline.end_run(engine="object", makespan=1.0, tasks=1, xfers=0)
        counters = rec.metrics()["counters"]
        assert counters["timeline.task"] == 1
        assert counters["timeline.run"] == 1
        assert counters["timeline.runs"] == 1

    def test_recorder_with_timeline_only_is_enabled(self):
        rec = Recorder(timeline=Timeline())
        assert rec.enabled is True
        assert rec.timeline is not None


class TestSerialization:
    def test_timeline_lines_mask_engine(self):
        tl = Timeline()
        tl.begin_run(dag="a")
        tl.end_run(engine="object", makespan=0.0, tasks=0, xfers=0)
        masked = timeline_lines(tl.records, mask_engine=True)
        assert all("engine" not in json.loads(line) for line in masked)
        unmasked = timeline_lines(tl.records)
        assert any('"engine":"object"' in line for line in unmasked)

    def test_to_file_roundtrip(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        tl = Timeline.to_file(path)
        tl.begin_run(dag="a", algorithm="hcpa", model="m")
        tl.task(0, (0, 1), 0.0, 2.0, 0.5)
        tl.end_run(engine="object", makespan=2.0, tasks=1, xfers=0)
        tl.close()
        records = load_timeline(path)
        assert [r["kind"] for r in records] == ["meta", "task", "run"]
        assert records[1]["hosts"] == [0, 1]

    def test_load_timeline_missing_file(self, tmp_path):
        with pytest.raises(TraceReadError):
            load_timeline(tmp_path / "absent.jsonl")

    def test_load_timeline_rejects_trace_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "event", "name": "x"}\n')
        with pytest.raises(TraceReadError):
            load_timeline(path)

    def test_load_timeline_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n')
        with pytest.raises(TraceReadError):
            load_timeline(path)
