"""Tests for run provenance (RunManifest)."""

import json

import repro
from repro.obs.manifest import RunManifest, emit_manifest, platform_info
from repro.obs.recorder import Recorder
from repro.platform.personalities import bayreuth_cluster


class TestPlatformInfo:
    def test_describes_cluster(self):
        info = platform_info(bayreuth_cluster(8))
        assert info["name"] == "bayreuth"
        assert info["num_nodes"] == 8
        assert info["heterogeneous"] is False
        json.dumps(info)  # must be JSON-able


class TestRunManifest:
    def test_collect_records_version_and_metrics(self):
        rec = Recorder.to_memory()
        rec.count("x", 3)
        manifest = RunManifest.collect(
            seed=7,
            cluster=bayreuth_cluster(4),
            simulators=["analytic"],
            algorithms=["hcpa", "mcpa"],
            command="study",
            num_records=12,
            recorder=rec,
        )
        assert manifest.seed == 7
        assert manifest.version == repro.__version__
        assert manifest.platform["num_nodes"] == 4
        assert manifest.metrics["counters"]["x"] == 3
        assert manifest.num_records == 12
        assert manifest.command == "study"
        assert manifest.created  # timestamped

    def test_dict_roundtrip(self):
        manifest = RunManifest.collect(seed=1, cluster=bayreuth_cluster(2))
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone == manifest

    def test_from_dict_ignores_unknown_keys(self):
        data = RunManifest(seed=3).to_dict()
        data["type"] = "manifest"  # as found in a JSONL trace record
        data["future_field"] = "whatever"
        assert RunManifest.from_dict(data).seed == 3

    def test_json_roundtrip(self):
        manifest = RunManifest.collect(seed=2, cluster=bayreuth_cluster(2))
        assert RunManifest.from_dict(json.loads(manifest.to_json())) == manifest

    def test_file_roundtrip(self, tmp_path):
        manifest = RunManifest(seed=9, simulators=["profile"])
        path = manifest.write(tmp_path / "manifest.json")
        assert RunManifest.read(path) == manifest


class TestEmitManifest:
    def test_appends_typed_record(self):
        rec = Recorder.to_memory()
        emit_manifest(rec, RunManifest(seed=5))
        (record,) = rec.sink.records
        assert record["type"] == "manifest"
        assert record["seed"] == 5

    def test_noop_when_disabled(self):
        rec = Recorder()
        emit_manifest(rec, RunManifest())
        # Disabled recorder has a NullSink; nothing observable happened.
        assert rec.counters == {} and rec.spans == {}
