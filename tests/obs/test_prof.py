"""Profiler span/probe accounting and the measured crossover table."""

from __future__ import annotations

import json

import pytest

from repro.obs.prof import PAIRS, CrossoverTable, Profiler, size_bucket
from repro.obs.recorder import Recorder
from repro.simgrid import arena


# ----------------------------------------------------------------------
# size_bucket
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "n, bucket",
    [(-3, 0), (0, 0), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8),
     (9, 16), (100, 128), (128, 128), (129, 256)],
)
def test_size_bucket(n, bucket):
    assert size_bucket(n) == bucket


# ----------------------------------------------------------------------
# Profiler core
# ----------------------------------------------------------------------
def test_push_pop_builds_path_tree():
    prof = Profiler()
    prof.push("outer")
    prof.push("inner")
    assert prof.current_path() == ("outer", "inner")
    prof.pop(0.25)
    prof.pop(1.0)
    assert prof.spans[("outer",)] == [1, 1.0, 1.0, 1.0]
    assert prof.spans[("outer", "inner")] == [1, 0.25, 0.25, 0.25]
    assert prof.current_path() == ()


def test_repeated_spans_accumulate():
    prof = Profiler()
    for seconds in (1.0, 3.0, 2.0):
        prof.push("step")
        prof.pop(seconds)
    assert prof.spans[("step",)] == [3, 6.0, 1.0, 3.0]


def test_leaf_attaches_under_current_path():
    prof = Profiler()
    prof.push("parent")
    prof.leaf("solve", 0.5)
    prof.leaf("solve", 0.25)
    prof.pop(1.0)
    assert prof.spans[("parent", "solve")] == [2, 0.75, 0.25, 0.5]


def test_probe_buckets_sizes():
    prof = Profiler()
    prof.probe("maxmin_flat", 3, 0.1)
    prof.probe("maxmin_flat", 4, 0.3)  # same bucket (4)
    prof.probe("maxmin_flat", 5, 0.2)  # bucket 8
    assert prof.kernels[("maxmin_flat", 4)] == [2, 0.4, 0.1, 0.3]
    assert prof.kernels[("maxmin_flat", 8)] == [1, 0.2, 0.2, 0.2]
    assert prof.kernel_table() == [
        ("maxmin_flat", 4, 2, 0.4, 0.2),
        ("maxmin_flat", 8, 1, 0.2, 0.2),
    ]


def test_export_absorb_round_trip_merges():
    a = Profiler()
    a.push("phase")
    a.pop(1.0)
    a.probe("scan_scalar", 4, 0.5)
    b = Profiler()
    b.push("phase")
    b.push("child")
    b.pop(0.5)
    b.pop(2.0)
    b.probe("scan_scalar", 4, 0.25)
    merged = Profiler()
    merged.absorb(a.export_state())
    merged.absorb(b.export_state())
    assert merged.spans[("phase",)] == [2, 3.0, 1.0, 2.0]
    assert merged.spans[("phase", "child")] == [1, 0.5, 0.5, 0.5]
    assert merged.kernels[("scan_scalar", 4)] == [2, 0.75, 0.25, 0.5]
    # Absorption order does not change the merged state.
    other = Profiler()
    other.absorb(b.export_state())
    other.absorb(a.export_state())
    assert other.export_state() == merged.export_state()


def test_structure_ignores_durations():
    fast, slow = Profiler(), Profiler()
    for prof, seconds in ((fast, 0.001), (slow, 123.0)):
        prof.push("a")
        prof.pop(seconds)
        prof.probe("alloc_grow", 7, seconds)
    assert fast.structure() == slow.structure()
    assert fast.structure()["spans"] == {"a": 1}
    assert fast.structure()["kernels"] == {"alloc_grow;8": 1}


def test_render_lists_spans_and_kernels():
    prof = Profiler()
    prof.push("study")
    prof.leaf("solve", 0.5)
    prof.pop(1.0)
    prof.probe("maxmin_flat", 12, 0.001)
    text = prof.render()
    assert "study" in text
    assert "solve" in text
    assert "maxmin_flat" in text
    # Empty profilers render placeholders, not empty tables.
    empty = Profiler().render()
    assert "no spans recorded" in empty
    assert "no kernel probes recorded" in empty


def test_recorder_span_feeds_profiler():
    prof = Profiler()
    rec = Recorder(profiler=prof)
    assert rec.enabled  # a profiler alone enables recording
    with rec.span("outer"):
        with rec.span("inner"):
            pass
        rec.timing("leafed", 0.125)
    assert ("outer",) in prof.spans
    assert ("outer", "inner") in prof.spans
    assert prof.spans[("outer", "leafed")][1] == 0.125


def test_recorder_export_state_carries_profile():
    prof = Profiler()
    rec = Recorder(profiler=prof)
    with rec.span("work"):
        pass
    state = rec.export_state()
    assert "work" in state["profile"]["spans"]
    parent = Recorder(profiler=Profiler())
    parent.absorb(state)
    assert ("work",) in parent.profiler.spans
    assert parent.metrics()["profile"]["spans"]["work"]["count"] == 1


def test_recorder_without_profiler_keeps_metrics_shape():
    rec = Recorder.to_memory()
    with rec.span("work"):
        pass
    assert "profile" not in rec.metrics()
    assert "profile" not in rec.export_state()


# ----------------------------------------------------------------------
# CrossoverTable
# ----------------------------------------------------------------------
def _table(pair="solver", rows=()):
    table = CrossoverTable()
    for size, scalar_s, vectorized_s in rows:
        table.add(pair, size, scalar_s=scalar_s, vectorized_s=vectorized_s)
    return table


def test_add_rejects_unknown_pair():
    with pytest.raises(ValueError, match="unknown kernel pair"):
        CrossoverTable().add("fft", 8, scalar_s=1.0)


def test_crossover_requires_stable_win():
    # Vectorized wins at 64 and above; the dip at 32 does not count.
    table = _table(rows=[
        (8, 1.0, 4.0),
        (16, 1.0, 2.0),
        (32, 1.0, 0.5),   # isolated win below the stable region
        (48, 1.0, 1.5),
        (64, 1.0, 0.9),
        (128, 1.0, 0.5),
    ])
    assert table.crossover("solver") == 64
    assert table.threshold("solver", default=7) == 48


def test_crossover_none_when_scalar_always_wins():
    table = _table(rows=[(8, 1.0, 2.0), (64, 1.0, 3.0), (512, 1.0, 4.0)])
    assert table.crossover("solver") is None
    # No crossover: the threshold covers the whole measured range.
    assert table.threshold("solver", default=7) == 512


def test_threshold_defaults_without_two_sided_rows():
    table = CrossoverTable()
    assert table.threshold("solver", default=123) == 123
    table.add("solver", 32, scalar_s=1.0)  # one-sided row only
    assert table.sizes("solver") == []
    assert table.threshold("solver", default=123) == 123


def test_threshold_zero_when_vectorized_always_wins():
    table = _table(rows=[(8, 2.0, 1.0), (64, 2.0, 1.0)])
    assert table.crossover("solver") == 8
    assert table.threshold("solver", default=7) == 0


def test_from_profile_maps_kernel_probes():
    prof = Profiler()
    prof.probe("maxmin_flat", 8, 0.2)
    prof.probe("maxmin_flat", 8, 0.4)
    prof.probe("maxmin_dense", 8, 0.9)
    prof.probe("scan_vector", 128, 0.1)
    table = CrossoverTable.from_profile(prof)
    row = table.samples["solver"][8]
    assert row["scalar_s"] == pytest.approx(0.3)  # mean of the probes
    assert row["vectorized_s"] == pytest.approx(0.9)
    # One-sided observed row: no crossover evidence from it.
    assert table.samples["step_scan"][128]["scalar_s"] is None
    assert table.sizes("step_scan") == []


def test_json_round_trip(tmp_path):
    table = _table(rows=[(8, 1.0, 2.0), (64, 2.0, 1.0)])
    path = table.save(tmp_path / "sub" / "table.json")
    loaded = CrossoverTable.load(path)
    assert loaded.to_json() == table.to_json()
    assert loaded.crossover("solver") == table.crossover("solver")


def test_load_errors_are_actionable(tmp_path):
    with pytest.raises(FileNotFoundError, match="repro profile"):
        CrossoverTable.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        CrossoverTable.load(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"schema": 99, "pairs": {}}))
    with pytest.raises(ValueError, match="schema"):
        CrossoverTable.load(wrong)


def test_render_prints_verdict_per_pair():
    table = _table(rows=[(8, 1.0, 2.0), (64, 1.0, 0.5)])
    text = table.render()
    assert "vectorized wins from ~64" in text
    assert "step_scan" in text  # unmeasured pair still listed
    assert "no measurements" in text


# ----------------------------------------------------------------------
# dispatch_thresholds (arena integration)
# ----------------------------------------------------------------------
def test_dispatch_thresholds_defaults(monkeypatch):
    monkeypatch.delenv(arena.DISPATCH_ENV_VAR, raising=False)
    assert arena.dispatch_thresholds() == (
        arena._SMALL_QUEUE, arena._SMALL_SOLVE
    )
    # Module-global monkeypatching (the existing fast-path tests' idiom)
    # still steers the dispatch.
    monkeypatch.setattr(arena, "_SMALL_QUEUE", 1)
    monkeypatch.setattr(arena, "_SMALL_SOLVE", 2)
    assert arena.dispatch_thresholds() == (1, 2)


def test_dispatch_thresholds_from_env_table(tmp_path, monkeypatch):
    table = CrossoverTable()
    for size, vec in ((16, 2.0), (32, 2.0), (64, 0.5), (128, 0.5)):
        table.add("step_scan", size, scalar_s=1.0, vectorized_s=vec)
        table.add("solver", size, scalar_s=1.0, vectorized_s=vec)
    path = table.save(tmp_path / "dispatch.json")
    monkeypatch.setenv(arena.DISPATCH_ENV_VAR, str(path))
    arena._DISPATCH_CACHE.clear()
    try:
        assert arena.dispatch_thresholds() == (32, 32)
    finally:
        arena._DISPATCH_CACHE.clear()
