"""Live study telemetry: folding, health checks, snapshots, rendering.

Everything here exercises :mod:`repro.obs.live` without a real study —
events are hand-folded at controlled timestamps so straggler/stall
logic and the EWMA are deterministic.  End-to-end coverage (telemetry
attached to actual study sweeps, bit-identity with it detached) lives
in ``tests/experiments/test_runner_chunked.py`` and the bench's
``assert_live_identity`` sweep.
"""

from __future__ import annotations

import io
import multiprocessing
import time

import pytest

from repro.obs.export import validate_openmetrics
from repro.obs.live import (
    SNAPSHOT_SCHEMA,
    LiveStudyState,
    LiveTelemetry,
    ProgressPrinter,
    WorkerEmitter,
    live_openmetrics_lines,
    load_snapshot,
    render_progress_line,
    render_top,
)


def _wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# ----------------------------------------------------------------------
# LiveStudyState: the fold
# ----------------------------------------------------------------------
class TestLiveStudyState:
    def test_begin_study_accumulates_totals(self):
        state = LiveStudyState()
        state.begin_study(10, 4)
        state.begin_study(5, 2)
        assert state.total == 15
        assert state.workers_expected == 4  # max, not sum
        assert state.phase == "running"

    def test_start_finish_cycle(self):
        state = LiveStudyState()
        state.begin_study(2, 1)
        state.fold(("start", 7, 100.0, 0, "analytic:mm/hcpa"))
        entry = state.workers[7]
        assert entry["cell"] == "analytic:mm/hcpa"
        assert entry["pos"] == 0
        state.fold(("finish", 7, 101.5, 0, "analytic:mm/hcpa", 1.5))
        assert state.done == 1
        assert state.workers[7]["cell"] is None
        assert state.workers[7]["done"] == 1
        assert list(state.durations) == [1.5]
        assert state.phase == "running"  # 1 of 2

    def test_cache_hit_counts_as_done(self):
        state = LiveStudyState()
        state.begin_study(1, 0)
        state.fold(("hit", 0, 100.0, 0, "analytic:mm/hcpa"))
        assert state.done == 1
        assert state.cache_hits == 1
        assert state.phase == "done"

    def test_chunk_claims_accumulate(self):
        state = LiveStudyState()
        state.fold(("chunk", 7, 100.0, 4))
        state.fold(("chunk", 8, 100.0, 4))
        assert state.chunks_claimed == 2

    def test_ewma_rate_from_finish_timestamps(self):
        state = LiveStudyState()
        state.begin_study(10, 1)
        # Finishes exactly 1 s apart: instantaneous rate is always
        # 1 cell/s, so the EWMA converges there with no jitter.
        for k in range(4):
            state.fold(("finish", 1, 100.0 + k, k, "c", 0.5))
        assert state.ewma_rate == pytest.approx(1.0)

    def test_median_duration_needs_min_samples(self):
        state = LiveStudyState(min_samples=3)
        for k, dur in enumerate((1.0, 9.0)):
            state.fold(("finish", 1, 100.0 + k, k, "c", dur))
        assert state.median_duration() is None
        state.fold(("finish", 1, 103.0, 2, "c", 2.0))
        assert state.median_duration() == pytest.approx(2.0)

    def test_straggler_flagged_once_per_cell(self):
        state = LiveStudyState(
            straggler_factor=4.0, min_samples=2, stall_after_s=1e9
        )
        state.begin_study(10, 2)
        for k in range(2):
            state.fold(("finish", 1, 100.0 + k, k, "fast", 1.0))
        state.fold(("start", 2, 101.0, 5, "slow-cell"))
        # Age 2 s < 4 x median(1.0): healthy.
        assert state.check_health(103.0) == []
        # Age 5 s > 4 s: straggler, raised exactly once.
        raised = state.check_health(106.0)
        assert [e["kind"] for e in raised] == ["straggler"]
        assert raised[0]["cell"] == "slow-cell"
        assert state.counters["runner.stragglers"] == 1
        assert state.check_health(200.0) == []  # not re-raised
        assert state.counters["runner.stragglers"] == 1

    def test_stall_flags_silent_pool_worker_only(self):
        state = LiveStudyState(stall_after_s=3.0)
        state.begin_study(10, 2)
        state.fold(("start", 7, 100.0, 0, "pool-cell"))
        state.fold(("start", 0, 100.0, 1, "parent-cell"))  # local
        raised = state.check_health(104.0)
        assert [e["kind"] for e in raised] == ["stall"]
        assert raised[0]["worker"] == 7
        assert state.counters["runner.stalls"] == 1
        # A heartbeat resets last_seen; no further stall.
        state.fold(("hb", 7, 105.0, 0, 5.0))
        state.workers[7]["stalled"] = False
        assert state.check_health(106.0) == []

    def test_snapshot_shape(self):
        state = LiveStudyState()
        state.begin_study(4, 2)
        state.fold(("start", 7, time.monotonic(), 0, "cell-a"))
        snap = state.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["phase"] == "running"
        assert snap["study"]["total"] == 4
        assert snap["study"]["in_flight"] == 1
        assert snap["workers"][0]["cell"] == "cell-a"
        assert snap["workers"][0]["age_s"] is not None


# ----------------------------------------------------------------------
# LiveTelemetry: lifecycle, queue path, snapshot file
# ----------------------------------------------------------------------
class TestLiveTelemetry:
    def test_parent_local_emission_without_start(self):
        # The parent-side emitters fold directly; no drain thread is
        # required for a serial study.
        telemetry = LiveTelemetry()
        telemetry.begin_study(2, 0)
        telemetry.cell_started(0, "a")
        telemetry.cell_finished(0, "a", 0.5)
        telemetry.cache_hit(1, "b")
        snap = telemetry.snapshot()
        assert snap["study"]["done"] == 2
        assert snap["study"]["cache_hits"] == 1
        assert snap["phase"] == "done"

    def test_queue_events_reach_the_fold(self):
        telemetry = LiveTelemetry(heartbeat_s=0.05).start()
        try:
            queue = telemetry.connect(multiprocessing.get_context())
            emitter = WorkerEmitter(queue, heartbeat_s=0.05)
            telemetry.begin_study(1, 1)
            emitter.chunk_claimed(1)
            emitter.cell_started(0, "queued-cell")
            emitter.cell_finished(0, "queued-cell")
            assert _wait_until(
                lambda: telemetry.snapshot()["study"]["done"] == 1
            )
            snap = telemetry.snapshot()
            assert snap["study"]["chunks_claimed"] == 1
            # The emitter's pid shows up as a (non-local) pool worker.
            workers = {w["worker"]: w for w in snap["workers"]}
            assert emitter.pid in workers
            assert not workers[emitter.pid]["local"]
            emitter.close()
        finally:
            telemetry.close()

    def test_close_is_idempotent_and_forces_done(self):
        telemetry = LiveTelemetry(heartbeat_s=0.05).start()
        telemetry.begin_study(5, 1)
        telemetry.close()
        telemetry.close()
        assert telemetry.snapshot()["phase"] == "done"

    def test_snapshot_file_round_trip(self, tmp_path):
        path = tmp_path / "live.json"
        telemetry = LiveTelemetry(
            heartbeat_s=0.05, snapshot_path=path
        ).start()
        telemetry.begin_study(1, 0)
        telemetry.cell_started(0, "a")
        telemetry.cell_finished(0, "a", 0.1)
        telemetry.close()
        snap = load_snapshot(path)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["phase"] == "done"
        assert snap["study"]["done"] == 1
        # No stray temp files from the atomic rewrite.
        assert list(tmp_path.iterdir()) == [path]

    def test_load_snapshot_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="not a live telemetry"):
            load_snapshot(path)

    def test_straggler_event_reaches_listeners(self):
        telemetry = LiveTelemetry(
            heartbeat_s=0.05, straggler_factor=0.1, min_samples=1
        ).start()
        seen: list[dict] = []
        telemetry.listeners.append(seen.append)
        try:
            telemetry.begin_study(2, 1)
            telemetry.cell_started(0, "fast")
            telemetry.cell_finished(0, "fast", 0.01)
            # In-flight cell immediately older than 0.1 x 0.01 s median.
            telemetry.cell_started(1, "slow")
            assert _wait_until(
                lambda: any(e["kind"] == "straggler" for e in seen)
            )
            snap = telemetry.snapshot()
            assert snap["counters"]["runner.stragglers"] == 1
            assert any(e["kind"] == "straggler" for e in snap["events"])
        finally:
            telemetry.close()


# ----------------------------------------------------------------------
# Snapshot consumers
# ----------------------------------------------------------------------
def _busy_snapshot() -> dict:
    state = LiveStudyState()
    state.begin_study(8, 2)
    for k in range(5):
        state.fold(("finish", 7, 100.0 + k, k, "done-cell", 1.0))
    state.fold(("hit", 0, 105.0, 5, "hit-cell"))
    state.fold(("start", 8, 106.0, 6, 'cell"with\\odd\nchars'))
    state.counters["runner.stragglers"] = 1
    return state.snapshot()


def test_live_openmetrics_lines_validate():
    snap = _busy_snapshot()
    text = "\n".join(live_openmetrics_lines(snap)) + "\n"
    validate_openmetrics(text)
    assert 'repro_live_cells{state="done"} 6' in text
    assert 'repro_live_cells{state="total"} 8' in text
    assert 'repro_live_worker_cells{worker="7"} 5' in text
    assert 'repro_counter_total{name="runner.stragglers"} 1' in text


def test_live_openmetrics_of_idle_state_validates():
    text = "\n".join(live_openmetrics_lines(LiveStudyState().snapshot()))
    validate_openmetrics(text + "\n")


def test_render_progress_line():
    line = render_progress_line(_busy_snapshot())
    assert "cells 6/8" in line
    assert "hits 1" in line
    assert "stragglers 1" in line


def test_render_top_lists_workers():
    top = render_top(_busy_snapshot())
    assert "worker" in top
    assert "done-cell" not in top  # finished cells leave the table
    assert "parent" in top  # the local cache-hit lane
    assert "in-flight cell" in top


def test_progress_printer_writes_final_line():
    telemetry = LiveTelemetry(heartbeat_s=0.05).start()
    stream = io.StringIO()
    printer = ProgressPrinter(
        telemetry, stream=stream, interval_s=0.05
    )
    try:
        telemetry.begin_study(1, 0)
        telemetry.cell_started(0, "a")
        telemetry.cell_finished(0, "a", 0.1)
    finally:
        printer.close()
        telemetry.close()
    out = stream.getvalue()
    assert "cells 1/1" in out
    assert "done" in out
