"""Tests for trace loading and report rendering."""

import json

import pytest

from repro.obs.manifest import RunManifest, emit_manifest
from repro.obs.recorder import Recorder
from repro.obs.report import (
    TraceReadError,
    load_trace,
    render_report,
    report_file,
)
from repro.obs.sinks import JsonlSink


def _write_trace(path, records, manifest=None):
    rec = Recorder(JsonlSink(path))
    for record in records:
        rec.sink.write(record)
    if manifest is not None:
        emit_manifest(rec, manifest)
    rec.close()


class TestLoadTrace:
    def test_splits_records_and_manifest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [{"type": "event", "name": "a"}, {"type": "span", "name": "s",
                                              "dur_s": 0.1}],
            RunManifest(seed=4),
        )
        records, manifest = load_trace(path)
        assert len(records) == 2
        assert manifest is not None and manifest.seed == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceReadError, match="not found"):
            load_trace(tmp_path / "nope.jsonl")

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(TraceReadError, match="bad.jsonl:2"):
            load_trace(path)

    def test_non_object_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TraceReadError, match="not an object"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"event","name":"a"}\n\n')
        records, manifest = load_trace(path)
        assert len(records) == 1 and manifest is None


class TestRenderReport:
    def _study_events(self):
        out = []
        for algorithm, sim_mk, exp_mk in [
            ("hcpa", 10.0, 12.0),
            ("hcpa", 20.0, 22.0),
            ("mcpa", 9.0, 12.0),
        ]:
            out.append(
                {
                    "type": "event",
                    "name": "study.record",
                    "dag": "d",
                    "algorithm": algorithm,
                    "simulator": "analytic",
                    "sim_makespan": sim_mk,
                    "exp_makespan": exp_mk,
                }
            )
        return out

    def test_contains_manifest_header_and_breakdown(self):
        manifest = RunManifest(
            seed=0,
            version="1.1.0",
            platform={"name": "bayreuth", "num_nodes": 32, "flops": 250e6},
            simulators=["analytic"],
            algorithms=["hcpa", "mcpa"],
            metrics={
                "counters": {"engine.steps": 100},
                "spans": {
                    "study.simulate": {
                        "count": 3, "total_s": 0.3, "mean_s": 0.1,
                        "min_s": 0.05, "max_s": 0.2,
                    }
                },
            },
        )
        text = render_report(self._study_events(), manifest)
        assert "repro 1.1.0" in text
        assert "bayreuth" in text
        assert "engine.steps" in text
        assert "study.simulate" in text
        assert "hcpa" in text and "mcpa" in text
        # hcpa mean simulated makespan (10+20)/2.
        assert "15.00" in text

    def test_works_without_manifest(self):
        text = render_report(self._study_events(), None)
        assert "no manifest" in text
        assert "study.record" in text  # event-frequency fallback
        assert "hcpa" in text

    def test_top_limits_counter_rows(self):
        manifest = RunManifest(
            metrics={"counters": {f"c{i}": i for i in range(30)}, "spans": {}}
        )
        text = render_report([], manifest, top=5)
        assert "top counters (of 30)" in text
        assert "c29" in text  # biggest survives the cut
        assert "c1\n" not in text

    @staticmethod
    def _span(count, total_s):
        return {
            "count": count, "total_s": total_s,
            "mean_s": total_s / count if count else 0.0,
            "min_s": 0.0, "max_s": total_s,
        }

    def test_throughput_section_renders_ratios(self):
        manifest = RunManifest(
            metrics={
                "counters": {"study.runs": 6},
                "spans": {
                    "study.grid": self._span(1, 3.0),
                    "study.dispatch": self._span(2, 1.5),
                },
            }
        )
        text = render_report([], manifest)
        assert "study throughput: 6 cells in 3.000 s = 2.0 cells/s" in text
        assert "pool dispatch: 1.500 s blocked on futures (50.0 %" in text

    def test_zero_cell_study_renders_dashes_not_zero_division(self):
        """Regression: an empty-grid sweep times a 0-cell, ~0 s grid.

        The throughput section must render with dashes instead of
        raising ZeroDivisionError (or formatting None).
        """
        manifest = RunManifest(
            metrics={
                "counters": {"study.runs": 0},
                "spans": {"study.grid": self._span(1, 0.0)},
            }
        )
        text = render_report([], manifest)
        assert "study throughput: 0 cells in 0.000 s = - cells/s" in text
        assert "pool dispatch: - blocked on futures (-" in text

    def test_all_cached_serial_replay_renders_dispatch_dash(self):
        """A warm serial replay has a grid but never touched the pool."""
        manifest = RunManifest(
            metrics={
                "counters": {"study.runs": 6},
                "spans": {"study.grid": self._span(1, 0.4)},
            }
        )
        text = render_report([], manifest)
        assert "15.0 cells/s" in text
        assert "pool dispatch: - blocked on futures" in text

    def test_no_grid_span_means_no_throughput_section(self):
        manifest = RunManifest(
            metrics={"counters": {"study.runs": 6}, "spans": {}}
        )
        assert "study throughput" not in render_report([], manifest)

    def test_report_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, self._study_events(), RunManifest(seed=1))
        text = report_file(path)
        assert "seed=1" in text
        assert "per-(algorithm, simulator) makespans:" in text


class TestReportFromRealRun:
    def test_engine_and_scheduler_signals_present(self, tmp_path):
        """A real traced simulation produces the documented event schema."""
        from repro.obs.recorder import recording
        from repro.dag.generator import DagParameters, generate_dag
        from repro.models.analytical import AnalyticalTaskModel
        from repro.platform.personalities import bayreuth_cluster
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag
        from repro.simgrid.simulator import ApplicationSimulator

        path = tmp_path / "run.jsonl"
        rec = Recorder(JsonlSink(path))
        with recording(rec):
            platform = bayreuth_cluster(8)
            graph = generate_dag(
                DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000,
                              seed=3)
            )
            model = AnalyticalTaskModel(platform)
            costs = SchedulingCosts(graph, platform, model)
            schedule = schedule_dag(graph, costs, "hcpa")
            ApplicationSimulator(platform, model).run(graph, schedule)
        rec.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        names = {r.get("name") for r in lines}
        assert "engine.step" in names
        assert "sched.alloc_grow" in names
        assert "sched.alloc_done" in names
        assert "sim.run" in names
        spans = {r["name"] for r in lines if r["type"] == "span"}
        assert {"sched.allocate", "sched.map"} <= spans
        assert rec.counters["engine.steps"] > 0
        assert rec.counters["engine.solver_calls"] > 0
