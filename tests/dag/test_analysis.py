"""Tests for graph analysis (levels, critical path, width, CCR)."""

import math

import pytest

from repro.dag.analysis import (
    bottom_levels,
    computation_communication_ratio,
    critical_path,
    critical_path_length,
    dag_width,
    precedence_levels,
    top_levels,
)
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATADD, MATMUL


@pytest.fixture
def weighted_diamond():
    """Diamond 0 -> {1, 2} -> 3 with known unit costs."""
    g = TaskGraph()
    for i in range(4):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=100))
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    costs = {0: 1.0, 1: 5.0, 2: 2.0, 3: 1.0}
    return g, costs.__getitem__


class TestLevels:
    def test_top_levels(self, weighted_diamond):
        g, cost = weighted_diamond
        tl = top_levels(g, cost)
        assert tl[0] == 0.0
        assert tl[1] == 1.0
        assert tl[2] == 1.0
        assert tl[3] == 6.0  # through the heavy branch

    def test_bottom_levels(self, weighted_diamond):
        g, cost = weighted_diamond
        bl = bottom_levels(g, cost)
        assert bl[3] == 1.0
        assert bl[1] == 6.0
        assert bl[2] == 3.0
        assert bl[0] == 7.0

    def test_with_edge_costs(self, weighted_diamond):
        g, cost = weighted_diamond
        edge = lambda u, v: 10.0  # noqa: E731
        bl = bottom_levels(g, cost, edge)
        assert bl[0] == 1.0 + 10.0 + 5.0 + 10.0 + 1.0

    def test_precedence_levels(self, weighted_diamond):
        g, _ = weighted_diamond
        lv = precedence_levels(g)
        assert lv == {0: 0, 1: 1, 2: 1, 3: 2}


class TestCriticalPath:
    def test_path_follows_heavy_branch(self, weighted_diamond):
        g, cost = weighted_diamond
        assert critical_path(g, cost) == [0, 1, 3]

    def test_length(self, weighted_diamond):
        g, cost = weighted_diamond
        assert critical_path_length(g, cost) == 7.0

    def test_empty_graph(self):
        g = TaskGraph()
        assert critical_path(g, lambda t: 1.0) == []
        assert critical_path_length(g, lambda t: 1.0) == 0.0

    def test_single_task(self):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATADD, n=10))
        assert critical_path(g, lambda t: 3.0) == [0]
        assert critical_path_length(g, lambda t: 3.0) == 3.0

    def test_deterministic_tie_break(self):
        g = TaskGraph()
        for i in range(2):
            g.add_task(Task(task_id=i, kernel=MATMUL, n=10))
        # Two equal-cost independent tasks: smallest id wins.
        assert critical_path(g, lambda t: 1.0) == [0]


class TestWidth:
    def test_diamond_width(self, weighted_diamond):
        g, _ = weighted_diamond
        assert dag_width(g) == 2

    def test_chain_width(self, chain_dag):
        assert dag_width(chain_dag) == 1

    def test_empty(self):
        assert dag_width(TaskGraph()) == 0


class TestCCR:
    def test_pure_addition_chain(self):
        g = TaskGraph()
        for i in range(2):
            g.add_task(Task(task_id=i, kernel=MATADD, n=100))
        g.add_edge(0, 1)
        ccr = computation_communication_ratio(g, flops=1e9, bandwidth=1e8)
        compute = 2 * MATADD.total_flops(100) / 1e9
        comm = 100 * 100 * 8 / 1e8
        assert ccr == pytest.approx(compute / comm)

    def test_no_edges_infinite(self):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=100))
        assert math.isinf(
            computation_communication_ratio(g, flops=1e9, bandwidth=1e8)
        )

    def test_multiplication_heavier_than_addition(self):
        def one_edge_graph(kernel):
            g = TaskGraph()
            g.add_task(Task(task_id=0, kernel=kernel, n=500))
            g.add_task(Task(task_id=1, kernel=kernel, n=500))
            g.add_edge(0, 1)
            return computation_communication_ratio(g, flops=1e9, bandwidth=1e8)

        assert one_edge_graph(MATMUL) > one_edge_graph(MATADD)

    def test_invalid_rates_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            computation_communication_ratio(g, flops=0, bandwidth=1)
