"""Tests for the daggen-style generator (extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.analysis import dag_width, precedence_levels
from repro.dag.daggen import DaggenParameters, generate_daggen


class TestParameters:
    def test_defaults_valid(self):
        DaggenParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 0},
            {"fat": 1.5},
            {"density": -0.1},
            {"regularity": 2.0},
            {"jump": 0},
            {"n": 0},
            {"add_ratio": 1.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DaggenParameters(**kwargs)

    def test_label_distinguishes_cells(self):
        a = DaggenParameters(fat=0.2).label()
        b = DaggenParameters(fat=0.8).label()
        assert a != b


class TestGenerate:
    def test_task_count(self):
        g = generate_daggen(DaggenParameters(num_tasks=25, seed=1))
        assert len(g) == 25

    def test_deterministic(self):
        p = DaggenParameters(seed=5)
        assert generate_daggen(p).to_dict() == generate_daggen(p).to_dict()

    def test_fat_controls_width(self):
        thin = generate_daggen(DaggenParameters(num_tasks=40, fat=0.1, seed=2))
        wide = generate_daggen(DaggenParameters(num_tasks=40, fat=1.0, seed=2))
        assert dag_width(wide) > dag_width(thin)

    def test_fat_zero_is_a_chain(self):
        g = generate_daggen(DaggenParameters(num_tasks=12, fat=0.0, seed=3))
        assert dag_width(g) == 1
        # A chain with density >= keeps one parent per task.
        assert g.num_edges >= 11

    def test_density_controls_edge_count(self):
        sparse = generate_daggen(
            DaggenParameters(num_tasks=30, fat=0.8, density=0.1, seed=4)
        )
        dense = generate_daggen(
            DaggenParameters(num_tasks=30, fat=0.8, density=0.9, seed=4)
        )
        assert dense.num_edges > sparse.num_edges

    def test_jump_allows_level_skips(self):
        g = generate_daggen(
            DaggenParameters(num_tasks=40, fat=0.6, jump=3, density=0.3, seed=6)
        )
        levels = precedence_levels(g)
        # jump > 1 permits (but does not force) skipping; the structure
        # must still be a valid DAG.
        g.validate()
        assert max(levels.values()) >= 2

    def test_every_non_entry_task_has_a_parent(self):
        g = generate_daggen(DaggenParameters(num_tasks=30, fat=0.7, seed=7))
        entry_level = [t for t, l in precedence_levels(g).items() if l == 0]
        for t in g.task_ids:
            if t not in entry_level:
                assert g.predecessors(t)

    def test_add_ratio_exact(self):
        g = generate_daggen(
            DaggenParameters(num_tasks=20, add_ratio=0.25, seed=8)
        )
        adds = sum(1 for t in g if t.kernel.name == "matadd")
        assert adds == 5

    @given(
        num_tasks=st.integers(min_value=1, max_value=60),
        fat=st.floats(min_value=0.0, max_value=1.0),
        density=st.floats(min_value=0.0, max_value=1.0),
        regularity=st.floats(min_value=0.0, max_value=1.0),
        jump=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_valid_dags(self, num_tasks, fat, density, regularity,
                               jump, seed):
        g = generate_daggen(
            DaggenParameters(
                num_tasks=num_tasks, fat=fat, density=density,
                regularity=regularity, jump=jump, seed=seed,
            )
        )
        g.validate()
        assert len(g) == num_tasks


class TestSchedulable:
    def test_daggen_workloads_run_end_to_end(self, platform, emulator):
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag

        g = generate_daggen(
            DaggenParameters(num_tasks=15, fat=0.6, density=0.4, seed=9)
        )
        costs = SchedulingCosts(g, platform, AnalyticalTaskModel(platform))
        sched = schedule_dag(g, costs, "mcpa")
        assert emulator.makespan(g, sched) > 0
