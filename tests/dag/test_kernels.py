"""Tests for the matmul/matadd kernel cost formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.kernels import (
    BYTES_PER_ELEMENT,
    KERNELS,
    MATADD,
    MATMUL,
    matrix_bytes,
)


class TestMatrixBytes:
    def test_paper_sizes(self):
        # Paper: ~30 MB for n=2000 and ~68 MB for n=3000.
        assert matrix_bytes(2000) == 2000 * 2000 * 8 == 32_000_000
        assert matrix_bytes(3000) == 72_000_000

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            matrix_bytes(0)


class TestMatmul:
    def test_flops_formula(self):
        # 2 n^3 / p flops per processor (paper, Section IV-1).
        assert MATMUL.flops_per_proc(2000, 1) == pytest.approx(2 * 2000**3)
        assert MATMUL.flops_per_proc(2000, 8) == pytest.approx(2 * 2000**3 / 8)

    def test_total_flops_independent_of_p(self):
        assert MATMUL.total_flops(1000) == pytest.approx(2 * 1000**3)

    def test_bytes_per_step(self):
        # n^2 / p elements per step.
        assert MATMUL.bytes_per_step(2000, 4) == pytest.approx(
            2000**2 / 4 * BYTES_PER_ELEMENT
        )

    def test_single_processor_no_communication(self):
        assert MATMUL.comm_steps(2000, 1) == 0
        assert np.all(MATMUL.comm_matrix(2000, 1) == 0)

    def test_comm_matrix_is_ring(self):
        B = MATMUL.comm_matrix(1000, 4)
        assert B.shape == (4, 4)
        for i in range(4):
            for j in range(4):
                expected = j == (i + 1) % 4
                assert (B[i, j] > 0) == expected

    def test_comm_matrix_total_volume(self):
        p, n = 4, 1000
        B = MATMUL.comm_matrix(n, p)
        per_step = n * n / p * BYTES_PER_ELEMENT
        assert B.sum() == pytest.approx((p - 1) * per_step * p)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=100, max_value=4000))
    @settings(max_examples=30, deadline=None)
    def test_work_conservation(self, p, n):
        # Total flops across processors is independent of p.
        assert p * MATMUL.flops_per_proc(n, p) == pytest.approx(MATMUL.total_flops(n))


class TestMatadd:
    def test_adjusted_flops(self):
        # (n/4) * n^2 / p after the paper's repetition adjustment.
        assert MATADD.flops_per_proc(2000, 1) == pytest.approx(500 * 2000**2)
        assert MATADD.flops_per_proc(2000, 10) == pytest.approx(500 * 2000**2 / 10)

    def test_no_communication(self):
        assert MATADD.comm_steps(2000, 8) == 0
        assert np.all(MATADD.comm_matrix(2000, 8) == 0)

    def test_factor_eight_versus_multiplication(self):
        # Paper: "there is still a factor 8 between the number of
        # floating point operations" after the adjustment.
        ratio = MATMUL.total_flops(2000) / MATADD.total_flops(2000)
        assert ratio == pytest.approx(8.0)
        ratio = MATMUL.total_flops(3000) / MATADD.total_flops(3000)
        assert ratio == pytest.approx(8.0)


class TestRegistry:
    def test_contains_both_kernels(self):
        assert set(KERNELS) == {"matmul", "matadd"}
        assert KERNELS["matmul"] is MATMUL
        assert KERNELS["matadd"] is MATADD

    def test_kernels_are_binary(self):
        assert MATMUL.arity == 2
        assert MATADD.arity == 2

    @pytest.mark.parametrize("kernel", [MATMUL, MATADD])
    def test_invalid_arguments_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.flops_per_proc(0, 1)
        with pytest.raises(ValueError):
            kernel.flops_per_proc(100, 0)
