"""Tests for workload (de)serialisation."""

import json

import pytest

from repro.dag.generator import generate_paper_dags
from repro.dag.io import dags_from_dict, dags_to_dict, load_dags, save_dags
from repro.util.errors import InvalidDAGError


class TestRoundTrip:
    def test_paper_set_roundtrips(self, tmp_path):
        graphs = [g for _p, g in generate_paper_dags(seed=0, sizes=(2000,))]
        path = save_dags(graphs, tmp_path / "workload.json")
        restored = load_dags(path)
        assert len(restored) == len(graphs)
        for a, b in zip(graphs, restored):
            assert a.to_dict() == b.to_dict()

    def test_file_is_plain_json(self, tmp_path):
        graphs = [g for _p, g in generate_paper_dags(seed=0, sizes=(2000,))][:2]
        path = save_dags(graphs, tmp_path / "w.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["dags"]) == 2

    def test_restored_graphs_are_usable(self, tmp_path, platform):
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag

        graphs = [g for _p, g in generate_paper_dags(seed=3, sizes=(2000,))][:1]
        restored = load_dags(save_dags(graphs, tmp_path / "w.json"))
        g = restored[0]
        costs = SchedulingCosts(g, platform, AnalyticalTaskModel(platform))
        schedule_dag(g, costs, "mcpa").validate(g, platform)


class TestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(InvalidDAGError):
            dags_from_dict({"format_version": 0, "dags": []})

    def test_corrupt_graph_rejected(self):
        payload = {
            "format_version": 1,
            "dags": [
                {
                    "name": "bad",
                    "tasks": [{"task_id": 0, "kernel": "matmul", "n": 10}],
                    "edges": [[0, 1]],  # dangling edge
                }
            ],
        }
        with pytest.raises(InvalidDAGError):
            dags_from_dict(payload)

    def test_empty_workload_ok(self):
        assert dags_from_dict(dags_to_dict([])) == []
