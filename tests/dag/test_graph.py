"""Tests for the TaskGraph structure and its invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATADD, MATMUL
from repro.util.errors import InvalidDAGError


def _mk(task_id, kernel=MATMUL, n=1000):
    return Task(task_id=task_id, kernel=kernel, n=n)


class TestTask:
    def test_label_defaults_to_kernel_and_id(self):
        assert _mk(3).label == "matmul#3"

    def test_output_bytes(self):
        assert _mk(5, n=2000).output_bytes == 32_000_000

    def test_invalid_task_rejected(self):
        with pytest.raises(InvalidDAGError):
            Task(task_id=-1, kernel=MATMUL, n=100)
        with pytest.raises(InvalidDAGError):
            Task(task_id=0, kernel=MATMUL, n=0)


class TestConstruction:
    def test_duplicate_id_rejected(self):
        g = TaskGraph()
        g.add_task(_mk(0))
        with pytest.raises(InvalidDAGError):
            g.add_task(_mk(0))

    def test_edge_endpoints_must_exist(self):
        g = TaskGraph()
        g.add_task(_mk(0))
        with pytest.raises(InvalidDAGError):
            g.add_edge(0, 1)
        with pytest.raises(InvalidDAGError):
            g.add_edge(1, 0)

    def test_self_edge_rejected(self):
        g = TaskGraph()
        g.add_task(_mk(0))
        with pytest.raises(InvalidDAGError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        g = TaskGraph()
        g.add_task(_mk(0))
        g.add_task(_mk(1))
        g.add_edge(0, 1)
        with pytest.raises(InvalidDAGError):
            g.add_edge(0, 1)

    def test_cycle_rejected_and_rolled_back(self):
        g = TaskGraph()
        for i in range(3):
            g.add_task(_mk(i))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        with pytest.raises(InvalidDAGError):
            g.add_edge(2, 0)
        # The failed edge must not linger.
        assert 0 not in g.successors(2)
        g.validate()  # still a valid DAG


class TestAccessors:
    def test_sources_and_sinks(self, diamond_dag):
        assert diamond_dag.sources() == [0]
        assert diamond_dag.sinks() == [3]

    def test_predecessors_successors(self, diamond_dag):
        assert set(diamond_dag.successors(0)) == {1, 2}
        assert set(diamond_dag.predecessors(3)) == {1, 2}

    def test_len_and_contains(self, diamond_dag):
        assert len(diamond_dag) == 4
        assert 2 in diamond_dag
        assert 9 not in diamond_dag

    def test_unknown_task_raises(self, diamond_dag):
        with pytest.raises(InvalidDAGError):
            diamond_dag.task(99)

    def test_edges_iteration(self, diamond_dag):
        assert set(diamond_dag.edges()) == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_num_edges(self, diamond_dag):
        assert diamond_dag.num_edges == 4


class TestTopologicalOrder:
    def test_respects_precedence(self, diamond_dag):
        order = diamond_dag.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for src, dst in diamond_dag.edges():
            assert pos[src] < pos[dst]

    def test_empty_graph(self):
        assert TaskGraph().topological_order() == []

    def test_deterministic(self, diamond_dag):
        assert diamond_dag.topological_order() == diamond_dag.topological_order()


class TestSerialisation:
    def test_roundtrip(self, diamond_dag):
        data = diamond_dag.to_dict()
        clone = TaskGraph.from_dict(data)
        assert clone.name == diamond_dag.name
        assert set(clone.task_ids) == set(diamond_dag.task_ids)
        assert set(clone.edges()) == set(diamond_dag.edges())
        for t in diamond_dag:
            c = clone.task(t.task_id)
            assert c.kernel.name == t.kernel.name
            assert c.n == t.n

    def test_unknown_kernel_rejected(self):
        with pytest.raises(InvalidDAGError):
            TaskGraph.from_dict(
                {"tasks": [{"task_id": 0, "kernel": "fft", "n": 10}], "edges": []}
            )

    def test_to_networkx(self, diamond_dag):
        g = diamond_dag.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        assert g.nodes[0]["kernel"] == "matmul"


@st.composite
def random_dags(draw):
    """Random DAGs built by only adding forward edges (always acyclic)."""
    size = draw(st.integers(min_value=1, max_value=12))
    g = TaskGraph(name="hyp")
    for i in range(size):
        kernel = MATMUL if draw(st.booleans()) else MATADD
        g.add_task(Task(task_id=i, kernel=kernel, n=100))
    for dst in range(1, size):
        preds = draw(
            st.sets(st.integers(min_value=0, max_value=dst - 1), max_size=3)
        )
        for src in preds:
            g.add_edge(src, dst)
    return g


class TestPropertyBased:
    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_forward_edge_graphs_always_validate(self, g):
        g.validate()
        order = g.topological_order()
        assert sorted(order) == sorted(g.task_ids)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_structure(self, g):
        clone = TaskGraph.from_dict(g.to_dict())
        assert set(clone.edges()) == set(g.edges())
        assert len(clone) == len(g)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_sources_have_no_predecessors(self, g):
        for s in g.sources():
            assert g.predecessors(s) == []
        for s in g.sinks():
            assert g.successors(s) == []
