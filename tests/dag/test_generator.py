"""Tests for the Table I random DAG generator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.analysis import precedence_levels
from repro.dag.generator import (
    PAPER_GRID,
    DagParameters,
    generate_dag,
    generate_paper_dags,
)


class TestDagParameters:
    def test_addition_count_matches_paper_example(self):
        # "a ratio of 0.2 for 10 tasks leads to 2 additions".
        p = DagParameters(add_ratio=0.2)
        assert p.num_additions == 2

    @pytest.mark.parametrize("ratio,expected", [(0.5, 5), (0.75, 8), (1.0, 10)])
    def test_table1_ratios(self, ratio, expected):
        assert DagParameters(add_ratio=ratio).num_additions == expected

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DagParameters(num_tasks=0)
        with pytest.raises(ValueError):
            DagParameters(add_ratio=1.5)
        with pytest.raises(ValueError):
            DagParameters(num_input_matrices=1)
        with pytest.raises(ValueError):
            DagParameters(n=0)

    def test_label_is_unique_per_cell(self):
        a = DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, sample=0)
        b = DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, sample=1)
        assert a.label() != b.label()


class TestGenerateDag:
    def test_task_count(self):
        g = generate_dag(DagParameters(num_tasks=10, seed=3))
        assert len(g) == 10

    def test_determinism(self):
        p = DagParameters(seed=11, sample=2)
        a = generate_dag(p)
        b = generate_dag(p)
        assert a.to_dict() == b.to_dict()

    def test_samples_differ(self):
        a = generate_dag(DagParameters(seed=11, sample=0))
        b = generate_dag(DagParameters(seed=11, sample=1))
        assert a.to_dict() != b.to_dict()

    def test_addition_count_exact(self):
        for ratio in (0.5, 0.75, 1.0):
            g = generate_dag(DagParameters(add_ratio=ratio, seed=5))
            additions = sum(1 for t in g if t.kernel.name == "matadd")
            assert additions == round(ratio * 10)

    def test_all_tasks_use_requested_size(self):
        g = generate_dag(DagParameters(n=3000, seed=1))
        assert all(t.n == 3000 for t in g)

    def test_sources_exist_and_are_bounded(self):
        # Tasks at any level may consume only original input matrices,
        # so the number of graph sources can exceed the entry-level
        # count; it is still bounded by the task count.
        for v in (2, 4, 8):
            for sample in range(5):
                g = generate_dag(
                    DagParameters(num_input_matrices=v, seed=2, sample=sample)
                )
                assert 1 <= len(g.sources()) <= 10

    def test_wider_inputs_allow_more_entry_parallelism(self):
        # With v = 8 up to log2(8) = 3 entry tasks may be drawn; verify
        # the generator actually uses that freedom across samples.
        counts = {
            len(
                generate_dag(
                    DagParameters(num_input_matrices=8, seed=2, sample=s)
                ).sources()
            )
            for s in range(12)
        }
        assert max(counts) >= 2

    def test_edges_point_forward_in_levels(self):
        g = generate_dag(DagParameters(seed=9))
        levels = precedence_levels(g)
        for src, dst in g.edges():
            assert levels[src] < levels[dst]

    def test_tasks_have_at_most_two_producers(self):
        # Tasks are binary: at most two input matrices, hence at most
        # two producing predecessors.
        for sample in range(4):
            g = generate_dag(DagParameters(seed=4, sample=sample))
            for t in g.task_ids:
                assert len(g.predecessors(t)) <= 2

    def test_validates(self):
        generate_dag(DagParameters(seed=13)).validate()

    @given(
        v=st.sampled_from((2, 4, 8)),
        ratio=st.sampled_from((0.5, 0.75, 1.0)),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_generator_never_produces_invalid_graphs(self, v, ratio, seed):
        g = generate_dag(
            DagParameters(num_input_matrices=v, add_ratio=ratio, seed=seed)
        )
        g.validate()
        assert len(g) == 10


class TestPaperSet:
    def test_total_is_54(self):
        dags = generate_paper_dags(seed=0)
        assert len(dags) == 54  # Table I: "total DAG instances 54"

    def test_27_per_size(self):
        dags = generate_paper_dags(seed=0, sizes=(2000,))
        assert len(dags) == 27

    def test_grid_cells_covered(self):
        dags = generate_paper_dags(seed=0)
        cells = {
            (p.num_input_matrices, p.add_ratio, p.n, p.sample) for p, _ in dags
        }
        assert len(cells) == 54
        widths = {c[0] for c in cells}
        assert widths == set(PAPER_GRID["num_input_matrices"])

    def test_labels_unique(self):
        dags = generate_paper_dags(seed=0)
        labels = [g.name for _, g in dags]
        assert len(set(labels)) == 54

    def test_reproducible(self):
        a = generate_paper_dags(seed=0)
        b = generate_paper_dags(seed=0)
        assert [g.to_dict() for _, g in a] == [g.to_dict() for _, g in b]
