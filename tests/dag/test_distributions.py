"""Tests for 1D block distributions and redistribution matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.distributions import (
    BlockDistribution,
    redistribution_matrix,
    redistribution_volume,
)
from repro.dag.kernels import BYTES_PER_ELEMENT, matrix_bytes


class TestBlockDistribution:
    def test_intervals_tile_the_matrix(self):
        d = BlockDistribution(10, 3)
        intervals = [d.interval(k) for k in range(3)]
        assert intervals[0][0] == 0
        assert intervals[-1][1] == 10
        for (a, b), (c, _d2) in zip(intervals, intervals[1:]):
            assert b == c

    def test_balanced_within_one_column(self):
        d = BlockDistribution(3000, 16)
        cols = [d.columns(k) for k in range(16)]
        assert max(cols) - min(cols) <= 1

    def test_naive_last_rank_gets_remainder(self):
        d = BlockDistribution(3000, 16, naive=True)
        assert d.columns(0) == 187
        assert d.columns(15) == 3000 - 15 * 187  # 195

    def test_naive_imbalance_exceeds_balanced(self):
        naive = BlockDistribution(3000, 16, naive=True).imbalance()
        balanced = BlockDistribution(3000, 16).imbalance()
        assert naive > balanced
        assert naive == pytest.approx(195 / 187.5)

    def test_bytes_owned(self):
        d = BlockDistribution(100, 4)
        assert d.bytes_owned(0) == 25 * 100 * BYTES_PER_ELEMENT

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            BlockDistribution(10, 2).interval(2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlockDistribution(0, 1)
        with pytest.raises(ValueError):
            BlockDistribution(10, 0)

    @given(
        n=st.integers(min_value=1, max_value=5000),
        p=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiling_property(self, n, p):
        d = BlockDistribution(n, p)
        total = sum(d.columns(k) for k in range(p))
        assert total == n


class TestRedistributionMatrix:
    def test_identity_when_distributions_match(self):
        M = redistribution_matrix(100, 4, 4)
        # Same split on both sides: only the diagonal carries data.
        off_diag = M - np.diag(np.diag(M))
        assert np.all(off_diag == 0)
        assert np.trace(M) == matrix_bytes(100)

    def test_total_volume_is_one_matrix(self):
        for p_src, p_dst in [(1, 4), (4, 1), (3, 5), (8, 2), (7, 7)]:
            assert redistribution_volume(120, p_src, p_dst) == matrix_bytes(120)

    def test_row_sums_match_source_ownership(self):
        n, p_src, p_dst = 100, 3, 5
        M = redistribution_matrix(n, p_src, p_dst)
        src = BlockDistribution(n, p_src)
        for i in range(p_src):
            assert M[i].sum() == pytest.approx(src.bytes_owned(i))

    def test_column_sums_match_destination_ownership(self):
        n, p_src, p_dst = 100, 5, 3
        M = redistribution_matrix(n, p_src, p_dst)
        dst = BlockDistribution(n, p_dst)
        for j in range(p_dst):
            assert M[:, j].sum() == pytest.approx(dst.bytes_owned(j))

    def test_one_to_many_scatter(self):
        n, p_dst = 100, 4
        M = redistribution_matrix(n, 1, p_dst)
        assert M.shape == (1, p_dst)
        assert np.all(M[0] == matrix_bytes(n) / p_dst)

    def test_many_to_one_gather(self):
        n, p_src = 100, 4
        M = redistribution_matrix(n, p_src, 1)
        assert M.shape == (p_src, 1)
        assert M.sum() == matrix_bytes(n)

    def test_locality_no_spurious_messages(self):
        # With nested splits (p_dst a multiple of p_src), every source
        # rank only talks to its own sub-ranks.
        n, p_src, p_dst = 64, 2, 4
        M = redistribution_matrix(n, p_src, p_dst)
        assert M[0, 2] == 0 and M[0, 3] == 0
        assert M[1, 0] == 0 and M[1, 1] == 0

    @given(
        n=st.integers(min_value=1, max_value=2000),
        p_src=st.integers(min_value=1, max_value=32),
        p_dst=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_property(self, n, p_src, p_dst):
        M = redistribution_matrix(n, p_src, p_dst)
        assert M.shape == (p_src, p_dst)
        assert M.sum() == pytest.approx(matrix_bytes(n))
        assert np.all(M >= 0)

    @given(
        n=st.integers(min_value=2, max_value=1000),
        p=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_row_column_marginals_property(self, n, p):
        q = max(1, p // 2)
        M = redistribution_matrix(n, p, q)
        src = BlockDistribution(n, p)
        dst = BlockDistribution(n, q)
        for i in range(p):
            assert M[i].sum() == pytest.approx(src.bytes_owned(i))
        for j in range(q):
            assert M[:, j].sum() == pytest.approx(dst.bytes_owned(j))
