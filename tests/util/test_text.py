"""Tests for the plain-text rendering helpers."""

import pytest

from repro.util.text import format_signed_bars, format_table, hbar


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        # All data lines align on the second column start.
        col = lines[2].index("1.500")
        assert lines[3][col - 1] != " " or "22.250" in lines[3]

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in out
        assert "3.14159" not in out

    def test_non_float_cells_pass_through(self):
        out = format_table(["a", "b"], [[True, "txt"]])
        assert "True" in out and "txt" in out


class TestHbar:
    def test_full_scale(self):
        assert hbar(10, 10, width=8) == "#" * 8

    def test_half_scale(self):
        assert hbar(5, 10, width=8) == "#" * 4

    def test_clamps_above_max(self):
        assert hbar(50, 10, width=8) == "#" * 8

    def test_rejects_bad_vmax(self):
        with pytest.raises(ValueError):
            hbar(1, 0)


class TestSignedBars:
    def test_renders_both_series(self):
        out = format_signed_bars(["d1"], [-0.2], [0.3])
        assert "sim" in out and "exp" in out
        assert "-0.200" in out and "+0.300" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_signed_bars(["a"], [1.0], [1.0, 2.0])
