"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    box_stats,
    mean_absolute_percentage_error,
    relative_error,
    sign_agreement,
)


class TestRelativeError:
    def test_exact_prediction(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_under_and_over_prediction_symmetric(self):
        assert relative_error(5.0, 10.0) == pytest.approx(0.5)
        assert relative_error(15.0, 10.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_actual(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestMape:
    def test_simple(self):
        assert mean_absolute_percentage_error([9, 11], [10, 10]) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_nonpositive_actual_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [0.0])


class TestSignAgreement:
    def test_full_agreement(self):
        assert sign_agreement([1, -2, 3], [4, -5, 6]) == 1.0

    def test_full_disagreement(self):
        assert sign_agreement([1, -2], [-1, 2]) == 0.0

    def test_partial(self):
        assert sign_agreement([1, 1, -1, -1], [1, -1, -1, 1]) == pytest.approx(0.5)

    def test_zero_counts_as_agreeing(self):
        # A tie predicts nothing and is not a wrong prediction.
        assert sign_agreement([0.0, 1.0], [5.0, 2.0]) == 1.0

    def test_tolerance(self):
        assert sign_agreement([0.001, 1.0], [-1.0, 1.0], tol=0.01) == 1.0
        assert sign_agreement([0.001, 1.0], [-1.0, 1.0], tol=0.0) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sign_agreement([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sign_agreement([1.0], [1.0, 2.0])


class TestBoxStats:
    def test_five_numbers_on_known_data(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        b = box_stats(data)
        assert b.minimum == 1.0
        assert b.median == 3.0
        assert b.maximum == 5.0
        assert b.mean == 3.0
        assert b.n == 5

    def test_whiskers_exclude_outlier(self):
        data = [1.0, 2.0, 3.0, 4.0, 100.0]
        b = box_stats(data)
        assert b.whisker_high < 100.0
        assert 100.0 in b.outliers(data)

    def test_single_point(self):
        b = box_stats([7.0])
        assert b.minimum == b.median == b.maximum == 7.0
        assert b.iqr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ordering_invariants(self, data):
        b = box_stats(data)
        assert b.minimum <= b.whisker_low <= b.q1 + 1e-9
        assert b.q1 <= b.median <= b.q3
        assert b.q3 - 1e-9 <= b.whisker_high <= b.maximum
        # np.mean can round a hair past the extremes (1 ulp).
        span = max(abs(b.minimum), abs(b.maximum), 1e-300)
        assert b.minimum - 1e-9 * span <= b.mean <= b.maximum + 1e-9 * span

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_percentiles(self, data):
        b = box_stats(data)
        q1, med, q3 = np.percentile(data, [25, 50, 75])
        assert b.q1 == pytest.approx(q1)
        assert b.median == pytest.approx(med)
        assert b.q3 == pytest.approx(q3)
