"""Tests for the deterministic RNG utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_no_label_concatenation_ambiguity(self):
        # ("ab",) must differ from ("a", "b").
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "x")

    def test_result_fits_64_bits(self):
        assert 0 <= derive_seed(123456789, "z") < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_derivation_is_stable_under_repetition(self, seed, label):
        assert derive_seed(seed, label) == derive_seed(seed, label)


class TestSpawnRng:
    def test_same_stream_same_draws(self):
        a = spawn_rng(5, "x").uniform(size=10)
        b = spawn_rng(5, "x").uniform(size=10)
        assert np.array_equal(a, b)

    def test_different_streams_diverge(self):
        a = spawn_rng(5, "x").uniform(size=10)
        b = spawn_rng(5, "y").uniform(size=10)
        assert not np.array_equal(a, b)


class TestRngStream:
    def test_child_path_tracking(self):
        s = RngStream(0).child("testbed").child("jvm", 4)
        assert s.path == ("testbed", "jvm", 4)

    def test_child_determinism(self):
        a = RngStream(9).child("k").generator().integers(0, 1 << 30, size=5)
        b = RngStream(9).child("k").generator().integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_sibling_independence(self):
        root = RngStream(9)
        a = root.child("a").generator().uniform(size=8)
        b = root.child("b").generator().uniform(size=8)
        assert not np.array_equal(a, b)

    def test_nested_vs_flat_derivation_differ(self):
        root = RngStream(3)
        nested = root.child("a").child("b")
        flat = root.child("a", "b")
        # Both are valid streams, but they are distinct derivations.
        assert nested.seed != root.seed
        assert flat.seed != root.seed
