"""Tests for the exception hierarchy."""

import pytest

from repro.util.errors import (
    CalibrationError,
    InvalidDAGError,
    InvalidScheduleError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [InvalidDAGError, InvalidScheduleError, SimulationError,
         CalibrationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catchable_at_api_boundary(self):
        """A caller can catch every intentional library error with one
        except clause."""
        from repro.dag.graph import TaskGraph

        try:
            TaskGraph().task(42)
        except ReproError as err:
            assert "42" in str(err)
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")

    def test_distinct_types(self):
        assert not issubclass(InvalidDAGError, SimulationError)
        assert not issubclass(CalibrationError, InvalidScheduleError)
