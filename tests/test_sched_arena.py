"""Scheduler backends must be bit-identical.

The flat-array allocation core (:mod:`repro.scheduling.arena`) is a
performance twin of the object allocation loop: same allocations, same
observability events and counters, same timeline bytes, same profiler
structure — under every internal kernel-dispatch choice.  These tests
force the array core's scalar/vectorized dispatch all four ways and
compare the backends exactly, on the paper's DAGs and on
Hypothesis-generated ones, then check the study-level plumbing: the
``sched`` switch, parallel-worker determinism, and warm-cache replay
across backends (the backend is deliberately absent from cache keys).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.result_cache import ResultCache
from repro.dag.generator import DagParameters, generate_dag, generate_paper_dags
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.experiments.runner import run_study
from repro.obs import MemorySink, Profiler
from repro.obs.prof import CrossoverTable
from repro.obs.recorder import Recorder, recording
from repro.obs.timeline import Timeline, timeline_lines
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling import SchedulingCosts, allocate_batch, schedule_dag
from repro.scheduling import arena
from repro.scheduling.arena import (
    ARRAY_ALLOCATORS,
    GraphLayout,
    graph_layout,
    resolve_sched,
    sched_dispatch_thresholds,
)
from repro.scheduling.cpa import cpa_allocate
from repro.scheduling.hcpa import hcpa_allocate
from repro.scheduling.mcpa import mcpa_allocate
from repro.simgrid.arena import DISPATCH_ENV_VAR
from repro.testbed.tgrid import TGridEmulator

OBJECT_ALLOCATORS = {
    "cpa": cpa_allocate,
    "hcpa": hcpa_allocate,
    "mcpa": mcpa_allocate,
}

#: (_SMALL_DP, _SMALL_GROW) overrides covering every kernel pairing:
#: all-scalar, all-incremental/vectorized, and both mixed quadrants.
FORCED_DISPATCH = (
    (10**9, 10**9),
    (-1, -1),
    (10**9, -1),
    (-1, 10**9),
)

_PLATFORM = bayreuth_cluster(8)
_SUITE = build_analytical_suite(_PLATFORM)
_DAGS = generate_paper_dags(seed=0)[:3]


def _costs(graph, platform=_PLATFORM, suite=_SUITE):
    return SchedulingCosts(
        graph,
        platform,
        suite.task_model,
        startup_model=suite.startup_model,
        redistribution_model=suite.redistribution_model,
    )


def _force_dispatch(monkeypatch, dp, grow):
    monkeypatch.delenv(DISPATCH_ENV_VAR, raising=False)
    monkeypatch.setattr(arena, "_SMALL_DP", dp)
    monkeypatch.setattr(arena, "_SMALL_GROW", grow)


def _observed_run(allocator, graph, costs):
    """Allocate under full observability; return every comparable facet."""
    sink = MemorySink()
    rec = Recorder(sink, timeline=Timeline(), profiler=Profiler())
    with recording(rec):
        alloc = allocator(graph, costs)
    return (
        alloc,
        [r for r in sink.records if r.get("type") == "event"],
        dict(rec.counters),
        timeline_lines(rec.timeline.records),
        rec.profiler.structure(),
    )


# ----------------------------------------------------------------------
# bit-identity: paper DAGs, all algorithms, all forced dispatches
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("dp,grow", FORCED_DISPATCH)
    @pytest.mark.parametrize("algorithm", sorted(ARRAY_ALLOCATORS))
    def test_paper_dags_match_on_every_facet(
        self, monkeypatch, algorithm, dp, grow
    ):
        _force_dispatch(monkeypatch, dp, grow)
        facets = ("allocations", "events", "counters", "timeline", "profile")
        for _params, graph in _DAGS:
            obj = _observed_run(
                OBJECT_ALLOCATORS[algorithm], graph, _costs(graph)
            )
            arr = _observed_run(
                ARRAY_ALLOCATORS[algorithm], graph, _costs(graph)
            )
            for facet, x, y in zip(facets, obj, arr):
                assert x == y, (
                    f"{facet} diverged on {graph.name} ({algorithm}, "
                    f"dispatch dp={dp} grow={grow})"
                )
            # Real work happened: counters saw the allocation loop.
            assert obj[2].get("sched.alloc_grow_steps", 0) >= 0
            assert obj[0]  # non-empty allocation

    def test_hcpa_counters_include_cap_hits(self, monkeypatch):
        _force_dispatch(monkeypatch, -1, -1)
        graph = _DAGS[0][1]
        obj = _observed_run(hcpa_allocate, graph, _costs(graph))
        arr = _observed_run(
            ARRAY_ALLOCATORS["hcpa"], graph, _costs(graph)
        )
        assert obj[2] == arr[2]
        assert "sched.hcpa.cap_hits" in obj[2]

    def test_hcpa_array_rejects_beta_below_one(self):
        graph = _DAGS[0][1]
        with pytest.raises(ValueError, match="beta"):
            arena.hcpa_allocate_array(graph, _costs(graph), beta=0.5)


# ----------------------------------------------------------------------
# bit-identity: Hypothesis-generated DAGs
# ----------------------------------------------------------------------
@st.composite
def sched_cases(draw):
    params = DagParameters(
        num_input_matrices=draw(st.sampled_from((2, 4, 8))),
        add_ratio=draw(st.sampled_from((0.5, 0.75, 1.0))),
        n=draw(st.sampled_from((2000, 3000))),
        sample=draw(st.integers(min_value=0, max_value=3)),
        seed=draw(st.integers(min_value=0, max_value=300)),
    )
    graph = generate_dag(params)
    algorithm = draw(st.sampled_from(sorted(ARRAY_ALLOCATORS)))
    forced = draw(st.sampled_from(FORCED_DISPATCH))
    return graph, algorithm, forced


class TestHypothesisIdentity:
    @given(sched_cases())
    @settings(max_examples=30, deadline=None)
    def test_random_dags_match(self, case):
        graph, algorithm, (dp, grow) = case
        saved = (arena._SMALL_DP, arena._SMALL_GROW)
        import os

        saved_table = os.environ.pop(DISPATCH_ENV_VAR, None)
        arena._SMALL_DP, arena._SMALL_GROW = dp, grow
        try:
            obj = _observed_run(
                OBJECT_ALLOCATORS[algorithm], graph, _costs(graph)
            )
            arr = _observed_run(
                ARRAY_ALLOCATORS[algorithm], graph, _costs(graph)
            )
        finally:
            arena._SMALL_DP, arena._SMALL_GROW = saved
            if saved_table is not None:
                os.environ[DISPATCH_ENV_VAR] = saved_table
        assert obj == arr


# ----------------------------------------------------------------------
# the sched switch end to end
# ----------------------------------------------------------------------
class TestSchedSwitch:
    def test_schedule_dag_matches_across_backends(self):
        for _params, graph in _DAGS:
            for algorithm in sorted(ARRAY_ALLOCATORS):
                obj = schedule_dag(
                    graph, _costs(graph), algorithm, sched="object"
                )
                arr = schedule_dag(
                    graph, _costs(graph), algorithm, sched="array"
                )
                assert arr.placements == obj.placements
                assert arr.order == obj.order
                assert arr.makespan_estimate == obj.makespan_estimate
                assert arr.algorithm == obj.algorithm

    def test_resolve_sched_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="bogus"):
            resolve_sched("bogus")

    def test_resolve_sched_honors_env(self, monkeypatch):
        monkeypatch.setenv(arena.SCHED_ENV_VAR, "array")
        assert resolve_sched() == "array"
        assert resolve_sched("object") == "object"  # explicit wins
        monkeypatch.delenv(arena.SCHED_ENV_VAR)
        assert resolve_sched() == "object"

    def test_study_records_match_across_backends(self):
        emulator = TGridEmulator(_PLATFORM, seed=0)
        obj = run_study(_DAGS, [_SUITE], emulator, sched="object")
        arr = run_study(_DAGS, [_SUITE], emulator, sched="array")
        assert arr.records == obj.records

    def test_parallel_array_study_equals_serial_object_study(self):
        emulator = TGridEmulator(_PLATFORM, seed=0)
        serial = run_study(
            _DAGS, [_SUITE], emulator, sched="object", workers=1
        )
        parallel = run_study(
            _DAGS, [_SUITE], emulator, sched="array", workers=2
        )
        assert parallel.records == serial.records

    def test_warm_cache_replays_across_sched_backends(self, tmp_path):
        # The backend is deliberately absent from cache keys: a cache
        # populated by one backend serves the other verbatim.
        emulator = TGridEmulator(_PLATFORM, seed=0)
        cache = ResultCache(tmp_path / "cache")
        cold = run_study(
            _DAGS, [_SUITE], emulator, cache=cache, sched="object"
        )
        rec = Recorder.to_memory()
        with recording(rec):
            warm = run_study(
                _DAGS, [_SUITE], emulator, cache=cache, sched="array"
            )
        assert warm.records == cold.records
        counters = rec.metrics()["counters"]
        assert counters["cache.hits"] > 0
        assert counters.get("cache.misses", 0) == 0


# ----------------------------------------------------------------------
# batch API
# ----------------------------------------------------------------------
class TestAllocateBatch:
    def test_batch_matches_individual_allocations(self):
        graphs = [graph for _params, graph in _DAGS]
        for algorithm in sorted(ARRAY_ALLOCATORS):
            batch = allocate_batch(
                graphs, [_costs(g) for g in graphs], algorithm=algorithm
            )
            individual = [
                ARRAY_ALLOCATORS[algorithm](g, _costs(g)) for g in graphs
            ]
            assert batch == individual

    def test_batch_validates_lengths_and_algorithm(self):
        graphs = [graph for _params, graph in _DAGS]
        with pytest.raises(ValueError, match="graphs"):
            allocate_batch(graphs, [_costs(graphs[0])])
        with pytest.raises(ValueError, match="unknown array algorithm"):
            allocate_batch(
                graphs, [_costs(g) for g in graphs], algorithm="mheft"
            )


# ----------------------------------------------------------------------
# layout lowering and caches
# ----------------------------------------------------------------------
class TestLayout:
    def test_layout_is_memoised_and_invalidated_structurally(self):
        g = TaskGraph(name="layout-staleness")
        for tid in range(3):
            g.add_task(Task(task_id=tid, kernel=MATMUL, n=2000))
        g.add_edge(0, 1)
        first = graph_layout(g)
        assert graph_layout(g) is first  # memo hit
        g.add_edge(1, 2)  # structural change -> stale layout
        second = graph_layout(g)
        assert second is not first
        assert second.num_edges == g.num_edges == 2

    def test_from_structure_matches_graph_lowering(self):
        g = TaskGraph(name="layout-twin")
        for tid in range(4):
            g.add_task(Task(task_id=tid, kernel=MATMUL, n=2000))
        for src, dst in ((0, 1), (0, 2), (1, 3), (2, 3)):
            g.add_edge(src, dst)
        from_graph = GraphLayout(g)
        from_succ = GraphLayout.from_structure([[1, 2], [3], [3], []])
        assert from_succ.succ == from_graph.succ
        assert from_succ.levels == from_graph.levels
        assert from_succ.sources == from_graph.sources
        assert from_succ.rev_order == from_graph.rev_order

    def test_dispatch_thresholds_default_and_table(self, tmp_path, monkeypatch):
        monkeypatch.delenv(DISPATCH_ENV_VAR, raising=False)
        monkeypatch.setattr(arena, "_SMALL_DP", 7)
        monkeypatch.setattr(arena, "_SMALL_GROW", 3)
        assert sched_dispatch_thresholds() == (7, 3)
        table = CrossoverTable()
        for size, vec in ((16, 2.0), (32, 2.0), (64, 0.5), (128, 0.5)):
            table.add("critical_path_dp", size, scalar_s=1.0, vectorized_s=vec)
            table.add("alloc_grow", size, scalar_s=1.0, vectorized_s=vec)
        path = table.save(tmp_path / "dispatch.json")
        monkeypatch.setenv(DISPATCH_ENV_VAR, str(path))
        arena._SCHED_DISPATCH_CACHE.clear()
        try:
            assert sched_dispatch_thresholds() == (32, 32)
            # Second read is served from the (path, mtime) cache.
            assert len(arena._SCHED_DISPATCH_CACHE) == 1
            assert sched_dispatch_thresholds() == (32, 32)
            assert len(arena._SCHED_DISPATCH_CACHE) == 1
        finally:
            arena._SCHED_DISPATCH_CACHE.clear()
