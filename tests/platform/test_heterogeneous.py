"""Tests for heterogeneous platform support (paper extension)."""

import pytest

from repro.platform.cluster import ClusterPlatform
from repro.platform.personalities import heterogeneous_cluster


class TestHeterogeneousPlatform:
    def test_homogeneous_by_default(self, platform):
        assert platform.is_homogeneous
        assert platform.node_speed(5) == 1.0
        assert platform.aggregate_speed == 32.0

    def test_per_node_speeds(self):
        plat = heterogeneous_cluster((1.0, 0.5, 2.0))
        assert not plat.is_homogeneous
        assert plat.node_speed(1) == 0.5
        assert plat.node_flops(2) == pytest.approx(2.0 * plat.flops)
        assert plat.aggregate_speed == pytest.approx(3.5)

    def test_uniform_speeds_count_as_homogeneous(self):
        plat = heterogeneous_cluster((1.0, 1.0, 1.0))
        assert plat.is_homogeneous

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterPlatform(num_nodes=2, node_speeds=(1.0,))
        with pytest.raises(ValueError):
            ClusterPlatform(num_nodes=2, node_speeds=(1.0, 0.0))

    def test_speed_lookup_bounds_checked(self):
        plat = heterogeneous_cluster((1.0, 0.5))
        with pytest.raises(ValueError):
            plat.node_speed(2)


class TestHeterogeneousSimulation:
    @pytest.fixture
    def het_platform(self):
        # Two fast nodes, two half-speed nodes; fast network so compute
        # dominates.
        return ClusterPlatform(
            num_nodes=4,
            flops=1e9,
            link_bandwidth=1e12,
            backbone_bandwidth=1e12,
            link_latency=0.0,
            node_speeds=(1.0, 1.0, 0.5, 0.5),
        )

    def test_analytical_task_slows_on_slow_node(self, het_platform):
        from repro.dag.graph import Task, TaskGraph
        from repro.dag.kernels import MATADD
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.schedule import Placement, Schedule
        from repro.simgrid.simulator import ApplicationSimulator

        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATADD, n=2000))
        model = AnalyticalTaskModel(het_platform)
        sim = ApplicationSimulator(het_platform, model)

        def run_on(host):
            sched = Schedule(
                {0: Placement(task_id=0, hosts=(host,))}, [0], algorithm="t"
            )
            return sim.run(g, sched).makespan

        assert run_on(2) == pytest.approx(2.0 * run_on(0))

    def test_coupled_task_bound_by_slowest_member(self, het_platform):
        from repro.dag.graph import Task, TaskGraph
        from repro.dag.kernels import MATADD
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.schedule import Placement, Schedule
        from repro.simgrid.simulator import ApplicationSimulator

        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATADD, n=2000))
        model = AnalyticalTaskModel(het_platform)
        sim = ApplicationSimulator(het_platform, model)
        fast_pair = Schedule(
            {0: Placement(task_id=0, hosts=(0, 1))}, [0], algorithm="t"
        )
        mixed_pair = Schedule(
            {0: Placement(task_id=0, hosts=(0, 2))}, [0], algorithm="t"
        )
        t_fast = sim.run(g, fast_pair).makespan
        t_mixed = sim.run(g, mixed_pair).makespan
        # The equal 1D split leaves the slow node with half-speed work:
        # the whole task takes twice as long despite one fast member.
        assert t_mixed == pytest.approx(2.0 * t_fast)

    def test_mapping_prefers_fast_hosts(self, het_platform):
        from repro.dag.graph import Task, TaskGraph
        from repro.dag.kernels import MATMUL
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.mapping import map_allocations

        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=2000))
        costs = SchedulingCosts(g, het_platform, AnalyticalTaskModel(het_platform))
        sched = map_allocations(g, costs, {0: 2})
        assert set(sched.hosts(0)) == {0, 1}

    def test_mapping_estimates_account_for_slow_nodes(self, het_platform):
        from repro.dag.graph import Task, TaskGraph
        from repro.dag.kernels import MATMUL
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.mapping import map_allocations

        g = TaskGraph()
        for i in range(2):
            g.add_task(Task(task_id=i, kernel=MATMUL, n=2000))
        costs = SchedulingCosts(g, het_platform, AnalyticalTaskModel(het_platform))
        sched = map_allocations(g, costs, {0: 2, 1: 2})
        # One task lands on the fast pair, the other on the slow pair;
        # the slow task's estimated duration must be ~2x longer.
        durations = {
            t: sched.placements[t].est_finish - sched.placements[t].est_start
            for t in (0, 1)
        }
        slow_task = max(durations, key=durations.get)
        fast_task = min(durations, key=durations.get)
        assert durations[slow_task] == pytest.approx(
            2.0 * durations[fast_task], rel=0.01
        )

    def test_estimates_match_simulation_on_het_platform(self, het_platform):
        from repro.dag.generator import DagParameters, generate_dag
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag
        from repro.simgrid.simulator import ApplicationSimulator

        graph = generate_dag(
            DagParameters(num_input_matrices=2, add_ratio=1.0, n=2000, seed=3)
        )
        model = AnalyticalTaskModel(het_platform)
        costs = SchedulingCosts(graph, het_platform, model)
        sched = schedule_dag(graph, costs, "hcpa")
        trace = ApplicationSimulator(het_platform, model).run(graph, sched)
        # The scheduler's Gantt estimate and the simulated makespan agree
        # closely (same cost model, same execution discipline).
        assert trace.makespan == pytest.approx(sched.makespan_estimate, rel=0.2)


class TestHeterogeneousStudy:
    def test_testbed_executes_het_schedules(self):
        from repro.dag.generator import DagParameters, generate_dag
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag
        from repro.testbed.tgrid import TGridEmulator

        plat = heterogeneous_cluster((1.0,) * 16 + (0.5,) * 16)
        emu = TGridEmulator(plat, seed=7)
        graph = generate_dag(
            DagParameters(num_input_matrices=4, add_ratio=0.5, n=2000, seed=1)
        )
        costs = SchedulingCosts(graph, plat, AnalyticalTaskModel(plat))
        sched = schedule_dag(graph, costs, "mcpa")
        makespan_het = emu.makespan(graph, sched)
        assert makespan_het > 0

    def test_slower_half_makes_makespans_longer(self):
        from repro.dag.generator import DagParameters, generate_dag
        from repro.models.analytical import AnalyticalTaskModel
        from repro.platform.personalities import bayreuth_cluster
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag
        from repro.testbed.tgrid import TGridEmulator

        graph = generate_dag(
            DagParameters(num_input_matrices=4, add_ratio=0.5, n=2000, seed=1)
        )
        results = {}
        for label, plat in (
            ("homogeneous", bayreuth_cluster()),
            ("degraded", heterogeneous_cluster((1.0,) * 8 + (0.4,) * 24,
                                               name="bayreuth")),
        ):
            costs = SchedulingCosts(graph, plat, AnalyticalTaskModel(plat))
            sched = schedule_dag(graph, costs, "mcpa")
            results[label] = TGridEmulator(plat, seed=7).makespan(graph, sched)
        assert results["degraded"] > results["homogeneous"]
