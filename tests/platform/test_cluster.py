"""Tests for the cluster platform model."""

import pytest

from repro.platform.cluster import ClusterPlatform
from repro.platform.personalities import (
    BAYREUTH_FLOPS,
    CRAY_XT4_FLOPS,
    bayreuth_cluster,
    cray_xt4,
)


class TestClusterPlatform:
    def test_defaults_match_paper(self):
        plat = bayreuth_cluster()
        assert plat.num_nodes == 32
        assert plat.flops == BAYREUTH_FLOPS == 250e6
        assert plat.link_bandwidth == pytest.approx(1.25e8)  # 1 Gb/s
        assert plat.link_latency == pytest.approx(100e-6)

    def test_processor_range(self):
        plat = ClusterPlatform(num_nodes=4)
        assert list(plat.processors) == [0, 1, 2, 3]

    def test_route_latency_intra_node_is_free(self):
        plat = bayreuth_cluster()
        assert plat.route_latency(3, 3) == 0.0

    def test_route_latency_crosses_two_links(self):
        plat = bayreuth_cluster()
        assert plat.route_latency(0, 1) == pytest.approx(2 * 100e-6)

    def test_effective_bandwidth_bottleneck(self):
        plat = ClusterPlatform(
            num_nodes=2, link_bandwidth=10.0, backbone_bandwidth=4.0
        )
        assert plat.effective_bandwidth(0, 1) == 4.0

    def test_intra_node_bandwidth_infinite(self):
        plat = bayreuth_cluster()
        assert plat.effective_bandwidth(2, 2) == float("inf")

    def test_out_of_range_processor_rejected(self):
        plat = ClusterPlatform(num_nodes=2)
        with pytest.raises(ValueError):
            plat.route_latency(0, 2)
        with pytest.raises(ValueError):
            plat.effective_bandwidth(-1, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"num_nodes": 4, "flops": 0.0},
            {"num_nodes": 4, "link_bandwidth": -1.0},
            {"num_nodes": 4, "link_latency": -1e-6},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterPlatform(**kwargs)


class TestPersonalities:
    def test_cray_speed(self):
        assert cray_xt4().flops == CRAY_XT4_FLOPS == pytest.approx(4165.3e6)

    def test_custom_size(self):
        assert bayreuth_cluster(8).num_nodes == 8

    def test_names(self):
        assert bayreuth_cluster().name == "bayreuth"
        assert cray_xt4().name == "cray_xt4"
