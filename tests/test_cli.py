"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.simulator == "analytic"
        assert args.n == 2000
        assert args.seed == 0

    def test_unknown_figure_rejected_at_runtime(self, capsys):
        rc = main(["figures", "--only", "fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().err


class TestDagCommand:
    def test_table_output(self, capsys):
        assert main(["dag", "--width", "2", "--ratio", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "10 tasks" in out
        assert "matmul" in out or "matadd" in out

    def test_json_output_roundtrips(self, capsys):
        assert main(["dag", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 10
        from repro.dag.graph import TaskGraph

        TaskGraph.from_dict(payload).validate()

    def test_seed_changes_dag(self, capsys):
        main(["--seed", "1", "dag", "--json"])
        a = capsys.readouterr().out
        main(["--seed", "2", "dag", "--json"])
        b = capsys.readouterr().out
        assert a != b


class TestSimulateCommand:
    def test_analytic_simulation(self, capsys):
        rc = main(["simulate", "--algorithm", "cpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated makespan" in out
        assert "experimental makespan" in out

    def test_gantt_flag(self, capsys):
        rc = main(["simulate", "--gantt"])
        assert rc == 0
        assert "Gantt chart" in capsys.readouterr().out

    def test_trace_json_flag(self, capsys):
        rc = main(["simulate", "--trace-json"])
        assert rc == 0
        out = capsys.readouterr().out
        # The JSON document starts at the first line that is exactly "{"
        # (the allocations line also contains braces, but inline).
        start = out.index("\n{") + 1
        payload = json.loads(out[start:])
        assert payload["makespan"] > 0


class TestStudyCommand:
    def test_analytic_study(self, capsys):
        rc = main(["study", "--simulator", "analytic", "--n", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrong comparisons" in out


class TestFiguresCommand:
    def test_single_figure_to_directory(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig3", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig3.txt").exists()
        assert "startup overhead" in capsys.readouterr().out

    def test_comparison_figure_writes_both_sizes(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig1", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1_2000.txt").exists()
        assert (tmp_path / "fig1_3000.txt").exists()


class TestProfileCommand:
    def test_startup_table(self, capsys):
        rc = main(["profile", "--what", "startup", "--trials", "3"])
        assert rc == 0
        assert "startup overhead" in capsys.readouterr().out

    def test_redistribution_table(self, capsys):
        rc = main(["profile", "--what", "redistribution", "--trials", "1"])
        assert rc == 0
        assert "redistribution overhead" in capsys.readouterr().out


class TestVarianceCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(["variance", "--runs", "3", "--dags", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noise-dominated" in out
        assert "stability" in out


class TestAttributionCommand:
    def test_decomposition_printed(self, capsys):
        rc = main(["attribution", "--algorithm", "hcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel time" in out
        assert "startup overhead" in out
        assert "redistribution" in out
        assert "residual" in out
