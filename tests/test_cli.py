"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.simulator == "analytic"
        assert args.n == 2000
        assert args.seed == 0

    def test_unknown_figure_rejected_at_runtime(self, capsys):
        rc = main(["figures", "--only", "fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().err


class TestDagCommand:
    def test_table_output(self, capsys):
        assert main(["dag", "--width", "2", "--ratio", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "10 tasks" in out
        assert "matmul" in out or "matadd" in out

    def test_json_output_roundtrips(self, capsys):
        assert main(["dag", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 10
        from repro.dag.graph import TaskGraph

        TaskGraph.from_dict(payload).validate()

    def test_seed_changes_dag(self, capsys):
        main(["--seed", "1", "dag", "--json"])
        a = capsys.readouterr().out
        main(["--seed", "2", "dag", "--json"])
        b = capsys.readouterr().out
        assert a != b


class TestSimulateCommand:
    def test_analytic_simulation(self, capsys):
        rc = main(["simulate", "--algorithm", "cpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated makespan" in out
        assert "experimental makespan" in out

    def test_gantt_flag(self, capsys):
        rc = main(["simulate", "--gantt"])
        assert rc == 0
        assert "Gantt chart" in capsys.readouterr().out

    def test_trace_json_flag(self, capsys):
        rc = main(["simulate", "--trace-json"])
        assert rc == 0
        out = capsys.readouterr().out
        # The JSON document starts at the first line that is exactly "{"
        # (the allocations line also contains braces, but inline).
        start = out.index("\n{") + 1
        payload = json.loads(out[start:])
        assert payload["makespan"] > 0


class TestStudyCommand:
    def test_analytic_study(self, capsys):
        rc = main(["study", "--simulator", "analytic", "--n", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrong comparisons" in out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestObservabilityFlags:
    def test_study_trace_out_emits_jsonl_and_manifest(self, capsys, tmp_path):
        """Acceptance: study --trace-out emits a valid JSONL event stream
        plus manifest, and report summarises it."""
        trace = tmp_path / "t.jsonl"
        rc = main(["--trace-out", str(trace), "study",
                   "--simulator", "analytic"])
        assert rc == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        records = [json.loads(l) for l in lines]  # every line is JSON
        assert all(isinstance(r, dict) for r in records)
        manifest = records[-1]
        assert manifest["type"] == "manifest"
        assert manifest["command"] == "study"
        assert manifest["platform"]["num_nodes"] == 32
        counters = manifest["metrics"]["counters"]
        assert counters["engine.steps"] > 0
        assert counters["study.runs"] == 108  # 54 dags x 2 algorithms
        names = {r.get("name") for r in records}
        assert "study.record" in names
        assert "engine.step" in names

        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        # Engine step counts, scheduler phase timings, per-(algorithm,
        # simulator) makespans — the three headline sections.
        assert "engine.steps" in out
        assert "sched.allocate" in out and "sched.map" in out
        assert "per-(algorithm, simulator) makespans:" in out
        assert "hcpa" in out and "mcpa" in out

    def test_trace_out_does_not_change_results(self, capsys, tmp_path):
        main(["simulate", "--algorithm", "hcpa"])
        plain = capsys.readouterr().out
        main(["--trace-out", str(tmp_path / "t.jsonl"), "simulate",
              "--algorithm", "hcpa"])
        traced = capsys.readouterr().out
        assert plain == traced

    def test_global_recorder_reset_after_command(self, tmp_path, capsys):
        from repro.obs import get_recorder

        main(["--trace-out", str(tmp_path / "t.jsonl"), "dag"])
        capsys.readouterr()
        assert get_recorder().enabled is False

    def test_metrics_flag_prints_rollup(self, capsys):
        rc = main(["--metrics", "simulate", "--algorithm", "mcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "===== metrics =====" in out
        assert "engine.steps" in out
        assert "sched.allocate" in out


class TestTimelineCommands:
    def _timeline(self, tmp_path, name, seed="0"):
        path = tmp_path / name
        rc = main(["--seed", seed, "--timeline-out", str(path),
                   "simulate", "--algorithm", "hcpa"])
        assert rc == 0
        return path

    def test_timeline_out_writes_jsonl(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        capsys.readouterr()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records[0] == {"kind": "meta", "schema": 1, "source": "repro"}
        kinds = {r["kind"] for r in records}
        assert {"alloc", "share", "task", "run"} <= kinds
        roles = {r["role"] for r in records if r["kind"] == "run"}
        assert roles == {"sim", "experiment"}

    def test_timeline_out_does_not_change_results(self, capsys, tmp_path):
        main(["simulate", "--algorithm", "hcpa"])
        plain = capsys.readouterr().out
        self._timeline(tmp_path, "tl.jsonl")
        traced = capsys.readouterr().out
        assert plain == traced

    def test_trace_export_chrome(self, capsys, tmp_path):
        from repro.obs.export import validate_chrome_trace

        path = self._timeline(tmp_path, "tl.jsonl")
        out_path = tmp_path / "tl.chrome.json"
        rc = main(["trace", "export", str(path), "--format", "chrome",
                   "--out", str(out_path)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        validate_chrome_trace(trace)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_export_openmetrics(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        rc = main(["trace", "export", str(path), "--format", "openmetrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_timeline_records_total" in out
        assert out.rstrip().endswith("# EOF")

    def test_trace_summary(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        rc = main(["trace", "summary", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "record kinds:" in out
        assert "hcpa" in out

    def test_trace_export_missing_file_errors_cleanly(self, capsys, tmp_path):
        rc = main(["trace", "export", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert capsys.readouterr().err

    def test_diff_command(self, capsys, tmp_path):
        a = self._timeline(tmp_path, "a.jsonl", seed="0")
        b = self._timeline(tmp_path, "b.jsonl", seed="1")
        rc = main(["diff", str(a), str(b)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan delta" in out
        assert "exec" in out and "redist" in out

    def test_diff_rejects_non_timeline_input(self, capsys, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"type": "event", "name": "x"}\n')
        rc = main(["diff", str(bad), str(bad)])
        assert rc == 2
        assert capsys.readouterr().err


class TestReportCommand:
    def test_missing_trace_errors_cleanly(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_trace_errors_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        rc = main(["report", str(bad)])
        assert rc == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestFiguresCommand:
    def test_single_figure_to_directory(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig3", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig3.txt").exists()
        assert "startup overhead" in capsys.readouterr().out

    def test_comparison_figure_writes_both_sizes(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig1", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1_2000.txt").exists()
        assert (tmp_path / "fig1_3000.txt").exists()


class TestProfileCommand:
    def test_startup_table(self, capsys):
        rc = main(["profile", "--what", "startup", "--trials", "3"])
        assert rc == 0
        assert "startup overhead" in capsys.readouterr().out

    def test_redistribution_table(self, capsys):
        rc = main(["profile", "--what", "redistribution", "--trials", "1"])
        assert rc == 0
        assert "redistribution overhead" in capsys.readouterr().out


class TestVarianceCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(["variance", "--runs", "3", "--dags", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noise-dominated" in out
        assert "stability" in out


class TestAttributionCommand:
    def test_decomposition_printed(self, capsys):
        rc = main(["attribution", "--algorithm", "hcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel time" in out
        assert "startup overhead" in out
        assert "redistribution" in out
        assert "residual" in out
