"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.simulator == "analytic"
        assert args.n == 2000
        assert args.seed == 0

    def test_unknown_figure_rejected_at_runtime(self, capsys):
        rc = main(["figures", "--only", "fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().err


class TestDagCommand:
    def test_table_output(self, capsys):
        assert main(["dag", "--width", "2", "--ratio", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "10 tasks" in out
        assert "matmul" in out or "matadd" in out

    def test_json_output_roundtrips(self, capsys):
        assert main(["dag", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 10
        from repro.dag.graph import TaskGraph

        TaskGraph.from_dict(payload).validate()

    def test_seed_changes_dag(self, capsys):
        main(["--seed", "1", "dag", "--json"])
        a = capsys.readouterr().out
        main(["--seed", "2", "dag", "--json"])
        b = capsys.readouterr().out
        assert a != b


class TestSimulateCommand:
    def test_analytic_simulation(self, capsys):
        rc = main(["simulate", "--algorithm", "cpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated makespan" in out
        assert "experimental makespan" in out

    def test_gantt_flag(self, capsys):
        rc = main(["simulate", "--gantt"])
        assert rc == 0
        assert "Gantt chart" in capsys.readouterr().out

    def test_trace_json_flag(self, capsys):
        rc = main(["simulate", "--trace-json"])
        assert rc == 0
        out = capsys.readouterr().out
        # The JSON document starts at the first line that is exactly "{"
        # (the allocations line also contains braces, but inline).
        start = out.index("\n{") + 1
        payload = json.loads(out[start:])
        assert payload["makespan"] > 0


class TestStudyCommand:
    def test_analytic_study(self, capsys):
        rc = main(["study", "--simulator", "analytic", "--n", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrong comparisons" in out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestObservabilityFlags:
    def test_study_trace_out_emits_jsonl_and_manifest(self, capsys, tmp_path):
        """Acceptance: study --trace-out emits a valid JSONL event stream
        plus manifest, and report summarises it."""
        trace = tmp_path / "t.jsonl"
        rc = main(["--trace-out", str(trace), "study",
                   "--simulator", "analytic"])
        assert rc == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        records = [json.loads(l) for l in lines]  # every line is JSON
        assert all(isinstance(r, dict) for r in records)
        manifest = records[-1]
        assert manifest["type"] == "manifest"
        assert manifest["command"] == "study"
        assert manifest["platform"]["num_nodes"] == 32
        counters = manifest["metrics"]["counters"]
        assert counters["engine.steps"] > 0
        assert counters["study.runs"] == 108  # 54 dags x 2 algorithms
        names = {r.get("name") for r in records}
        assert "study.record" in names
        assert "engine.step" in names

        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        # Engine step counts, scheduler phase timings, per-(algorithm,
        # simulator) makespans — the three headline sections.
        assert "engine.steps" in out
        assert "sched.allocate" in out and "sched.map" in out
        assert "per-(algorithm, simulator) makespans:" in out
        assert "hcpa" in out and "mcpa" in out

    def test_trace_out_does_not_change_results(self, capsys, tmp_path):
        main(["simulate", "--algorithm", "hcpa"])
        plain = capsys.readouterr().out
        main(["--trace-out", str(tmp_path / "t.jsonl"), "simulate",
              "--algorithm", "hcpa"])
        traced = capsys.readouterr().out
        assert plain == traced

    def test_global_recorder_reset_after_command(self, tmp_path, capsys):
        from repro.obs import get_recorder

        main(["--trace-out", str(tmp_path / "t.jsonl"), "dag"])
        capsys.readouterr()
        assert get_recorder().enabled is False

    def test_metrics_flag_prints_rollup(self, capsys):
        rc = main(["--metrics", "simulate", "--algorithm", "mcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "===== metrics =====" in out
        assert "engine.steps" in out
        assert "sched.allocate" in out


class TestTimelineCommands:
    def _timeline(self, tmp_path, name, seed="0"):
        path = tmp_path / name
        rc = main(["--seed", seed, "--timeline-out", str(path),
                   "simulate", "--algorithm", "hcpa"])
        assert rc == 0
        return path

    def test_timeline_out_writes_jsonl(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        capsys.readouterr()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records[0] == {"kind": "meta", "schema": 1, "source": "repro"}
        kinds = {r["kind"] for r in records}
        assert {"alloc", "share", "task", "run"} <= kinds
        roles = {r["role"] for r in records if r["kind"] == "run"}
        assert roles == {"sim", "experiment"}

    def test_timeline_out_does_not_change_results(self, capsys, tmp_path):
        main(["simulate", "--algorithm", "hcpa"])
        plain = capsys.readouterr().out
        self._timeline(tmp_path, "tl.jsonl")
        traced = capsys.readouterr().out
        assert plain == traced

    def test_trace_export_chrome(self, capsys, tmp_path):
        from repro.obs.export import validate_chrome_trace

        path = self._timeline(tmp_path, "tl.jsonl")
        out_path = tmp_path / "tl.chrome.json"
        rc = main(["trace", "export", str(path), "--format", "chrome",
                   "--out", str(out_path)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        validate_chrome_trace(trace)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_export_openmetrics(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        rc = main(["trace", "export", str(path), "--format", "openmetrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_timeline_records_total" in out
        assert out.rstrip().endswith("# EOF")

    def test_trace_summary(self, capsys, tmp_path):
        path = self._timeline(tmp_path, "tl.jsonl")
        rc = main(["trace", "summary", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "record kinds:" in out
        assert "hcpa" in out

    def test_trace_export_missing_file_errors_cleanly(self, capsys, tmp_path):
        rc = main(["trace", "export", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert capsys.readouterr().err

    def test_diff_command(self, capsys, tmp_path):
        a = self._timeline(tmp_path, "a.jsonl", seed="0")
        b = self._timeline(tmp_path, "b.jsonl", seed="1")
        rc = main(["diff", str(a), str(b)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan delta" in out
        assert "exec" in out and "redist" in out

    def test_diff_rejects_non_timeline_input(self, capsys, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"type": "event", "name": "x"}\n')
        rc = main(["diff", str(bad), str(bad)])
        assert rc == 2
        assert capsys.readouterr().err

    def test_empty_file_errors_cleanly_everywhere(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        for argv in (
            ["trace", "summary", str(empty)],
            ["trace", "export", str(empty), "--format", "chrome"],
            ["trace", "export", str(empty), "--format", "openmetrics"],
            ["diff", str(empty), str(empty)],
        ):
            assert main(argv) == 2
            captured = capsys.readouterr()
            assert "empty" in captured.err
            assert "Traceback" not in captured.err

    def test_header_only_timeline_errors_cleanly(self, capsys, tmp_path):
        header = tmp_path / "header.jsonl"
        header.write_text('{"kind": "meta", "schema": 1, "source": "repro"}\n')
        for argv in (
            ["trace", "export", str(header), "--format", "chrome"],
            ["trace", "export", str(header), "--format", "openmetrics"],
        ):
            assert main(argv) == 2
            assert "header" in capsys.readouterr().err
        assert main(["diff", str(header), str(header)]) == 2
        assert "no completed runs" in capsys.readouterr().err
        # The summary still renders (the kind table is honest) but says
        # explicitly that no runs completed.
        assert main(["trace", "summary", str(header)]) == 0
        assert "no run records" in capsys.readouterr().out


class TestReportCommand:
    def test_missing_trace_errors_cleanly(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_trace_errors_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        rc = main(["report", str(bad)])
        assert rc == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_json_report_with_profile(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(["--trace-out", str(trace), "--profile",
                   "simulate", "--algorithm", "hcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wall-clock profile" in out  # --profile prints the tree
        rc = main(["report", str(trace), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["manifest"]["seed"] == 0
        assert doc["counters"]
        assert doc["spans"]
        # The profiler rollup rode along in the manifest metrics.
        assert doc["profile"]["spans"]
        assert doc["profile"]["kernels"]

    def test_json_report_without_profile_is_null(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["--trace-out", str(trace), "dag"]) == 0
        capsys.readouterr()
        assert main(["report", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["profile"] is None


class TestFiguresCommand:
    def test_single_figure_to_directory(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig3", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig3.txt").exists()
        assert "startup overhead" in capsys.readouterr().out

    def test_comparison_figure_writes_both_sizes(self, capsys, tmp_path):
        rc = main(["figures", "--only", "fig1", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1_2000.txt").exists()
        assert (tmp_path / "fig1_3000.txt").exists()


class TestProfileCommand:
    def test_startup_table(self, capsys):
        rc = main(["profile", "--what", "startup", "--trials", "3"])
        assert rc == 0
        assert "startup overhead" in capsys.readouterr().out

    def test_redistribution_table(self, capsys):
        rc = main(["profile", "--what", "redistribution", "--trials", "1"])
        assert rc == 0
        assert "redistribution overhead" in capsys.readouterr().out

    def test_wall_profile(self, capsys, tmp_path, monkeypatch):
        from repro.obs.flame import parse_collapsed
        from repro.obs.prof import CrossoverTable

        # The controlled calibration sweep takes tens of seconds; a
        # canned table keeps this a CLI-wiring test (the sweep itself
        # is exercised by the bench payload's crossovers section).
        canned = CrossoverTable()
        canned.add("solver", 8, scalar_s=1e-6, vectorized_s=2e-6)
        canned.add("step_scan", 32, scalar_s=2e-6, vectorized_s=3e-6)
        canned.add("step_scan", 64, scalar_s=2e-6, vectorized_s=1e-6)
        monkeypatch.setattr(
            CrossoverTable, "measure", classmethod(lambda cls, **kw: canned)
        )
        flame = tmp_path / "profile.folded"
        chrome = tmp_path / "profile.chrome.json"
        table = tmp_path / "dispatch.json"
        rc = main(["profile", "--what", "wall", "--dags", "1",
                   "--flame", str(flame), "--chrome", str(chrome),
                   "--save-table", str(table)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "kernel cost table" in out
        assert "vectorized wins from ~64 actions" in out
        assert "REPRO_DISPATCH_TABLE" in out
        stacks = parse_collapsed(flame.read_text())
        assert any(path[0] == "study.execute" for path in stacks)
        doc = json.loads(chrome.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        loaded = CrossoverTable.load(table)
        assert loaded.crossover("step_scan") == 64


class TestBenchCommand:
    """CLI wiring of the history-backed regression check.

    The real pipeline bench takes minutes, so these tests stub
    ``run_pipeline_bench`` with a canned payload; the measurement
    itself is covered by ``benchmarks/bench_pipeline.py`` (tier 2) and
    the rolling-baseline math by ``tests/experiments/test_bench_history``.
    """

    @staticmethod
    def _stub(monkeypatch, factor=1.0):
        import repro.experiments.bench as bench_mod

        payload = {
            "created": "2026-08-07T00:00:00+0000",
            "version": "0.0.0-test",
            "config": {
                "num_dags": 2, "engine": "object", "sched": "object",
                "repeat": 1,
            },
            "counters": {},
            "crossovers": {
                "solver": {"unit": "entries", "crossover": None,
                           "threshold": 512},
                "step_scan": {"unit": "actions", "crossover": 64,
                              "threshold": 32},
            },
            "stages": {
                name: {"seconds": factor * base, "units": 4,
                       "seconds_per_unit": factor * base / 4}
                for name, base in (("scheduling", 1.0), ("simulation", 0.5))
            },
        }
        monkeypatch.setattr(
            bench_mod, "run_pipeline_bench",
            lambda num_dags, repeat=1, engine=None, sched=None: payload,
        )

    def test_check_seeds_then_passes_then_catches_slowdown(
        self, capsys, tmp_path, monkeypatch
    ):
        hist = tmp_path / "hist.jsonl"
        self._stub(monkeypatch)
        assert main(["bench", "--check", "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "no compatible entries" in out
        assert "appended bench entry" in out
        assert "crossover" in out
        assert main(["bench", "--check", "--history", str(hist)]) == 0
        assert "PASS" in capsys.readouterr().out
        # A synthetic 2x slowdown must fail the gate with exit code 1.
        self._stub(monkeypatch, factor=2.0)
        assert main(["bench", "--check", "--history", str(hist)]) == 1
        out = capsys.readouterr().out
        assert "scheduling" in out and "simulation" in out
        assert len(hist.read_text().splitlines()) == 3

    def test_no_history_skips_append(self, capsys, tmp_path, monkeypatch):
        hist = tmp_path / "hist.jsonl"
        self._stub(monkeypatch)
        assert main(["bench", "--no-history", "--history", str(hist)]) == 0
        assert "appended" not in capsys.readouterr().out
        assert not hist.exists()


class TestVarianceCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(["variance", "--runs", "3", "--dags", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noise-dominated" in out
        assert "stability" in out


class TestAttributionCommand:
    def test_decomposition_printed(self, capsys):
        rc = main(["attribution", "--algorithm", "hcpa"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel time" in out
        assert "startup overhead" in out
        assert "redistribution" in out
        assert "residual" in out
