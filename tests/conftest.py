"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dag.generator import DagParameters, generate_dag
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATADD, MATMUL
from repro.experiments.context import StudyContext
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="session")
def platform():
    """The paper's 32-node Bayreuth cluster."""
    return bayreuth_cluster()


@pytest.fixture(scope="session")
def emulator(platform):
    """A seeded testbed emulator shared across tests."""
    return TGridEmulator(platform, seed=7)


@pytest.fixture(scope="session")
def study_context():
    """A fully-wired study context (expensive pieces are lazy/cached)."""
    return StudyContext(seed=0)


@pytest.fixture
def small_dag():
    """A deterministic random DAG from the Table I grid."""
    params = DagParameters(
        num_input_matrices=4, add_ratio=0.5, n=2000, sample=0, seed=1
    )
    return generate_dag(params)


@pytest.fixture
def diamond_dag():
    """A hand-built diamond: 0 -> {1, 2} -> 3."""
    g = TaskGraph(name="diamond")
    g.add_task(Task(task_id=0, kernel=MATMUL, n=2000))
    g.add_task(Task(task_id=1, kernel=MATADD, n=2000))
    g.add_task(Task(task_id=2, kernel=MATMUL, n=2000))
    g.add_task(Task(task_id=3, kernel=MATADD, n=2000))
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


@pytest.fixture
def chain_dag():
    """A three-task chain of multiplications."""
    g = TaskGraph(name="chain")
    for i in range(3):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=2000))
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    return g


@pytest.fixture
def analytical_costs(small_dag, platform):
    """Analytical scheduling costs for the small DAG."""
    return SchedulingCosts(small_dag, platform, AnalyticalTaskModel(platform))
