"""Tests for the brute-force profiler."""

import numpy as np
import pytest

from repro.profiling.profiler import (
    profile_kernels,
    profile_redistribution,
    profile_startup,
)


class TestProfileKernels:
    def test_full_sweep_coverage(self, emulator):
        profile = profile_kernels(
            emulator, kernels=("matmul",), sizes=(2000,), procs=range(1, 5),
            trials=2,
        )
        assert len(profile) == 4
        assert ("matmul", 2000, 3) in profile.means

    def test_means_are_trial_averages(self, emulator):
        profile = profile_kernels(
            emulator, kernels=("matadd",), sizes=(3000,), procs=[2], trials=4
        )
        key = ("matadd", 3000, 2)
        assert profile.means[key] == pytest.approx(
            float(np.mean(profile.samples[key]))
        )
        assert len(profile.samples[key]) == 4

    def test_default_procs_cover_whole_cluster(self, emulator):
        profile = profile_kernels(
            emulator, kernels=("matmul",), sizes=(2000,), trials=1
        )
        assert len(profile) == emulator.platform.num_nodes

    def test_mean_accessor(self, emulator):
        profile = profile_kernels(
            emulator, kernels=("matmul",), sizes=(2000,), procs=[1], trials=1
        )
        assert profile.mean("matmul", 2000, 1) > 0


class TestProfileStartup:
    def test_coverage_and_positivity(self, emulator):
        table = profile_startup(emulator, procs=range(1, 9), trials=5)
        assert set(table) == set(range(1, 9))
        assert all(v > 0 for v in table.values())

    def test_averaging_reduces_variance(self, emulator):
        few = profile_startup(emulator, procs=[4], trials=2)[4]
        many = profile_startup(emulator, procs=[4], trials=200)[4]
        truth = emulator.jvm.mean_overhead(4)
        assert abs(many - truth) <= abs(few - truth) + 0.05


class TestProfileRedistribution:
    def test_grid_coverage(self, emulator):
        grid = profile_redistribution(
            emulator, src_procs=[1, 2], dst_procs=[1, 2, 3], trials=2
        )
        assert set(grid) == {(a, b) for a in (1, 2) for b in (1, 2, 3)}

    def test_values_positive(self, emulator):
        grid = profile_redistribution(
            emulator, src_procs=[4], dst_procs=[8], trials=3
        )
        assert grid[(4, 8)] > 0
