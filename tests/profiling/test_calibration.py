"""Tests for the calibration pipeline (measurements -> model suites)."""

import numpy as np
import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATADD, MATMUL
from repro.models.base import ModelKind
from repro.profiling.calibration import (
    build_analytical_suite,
    build_empirical_suite,
    build_profile_suite,
)
from repro.profiling.sparse import PAPER_PLAN


@pytest.fixture(scope="module")
def profile_suite(emulator):
    return build_profile_suite(emulator, kernel_trials=2, startup_trials=5,
                               redistribution_trials=2)


@pytest.fixture(scope="module")
def empirical_suite(emulator):
    return build_empirical_suite(emulator, kernel_trials=2, startup_trials=5,
                                 redistribution_trials=2)


class TestAnalyticalSuite:
    def test_shape(self, platform):
        suite = build_analytical_suite(platform)
        assert suite.name == "analytic"
        assert suite.task_model.kind is ModelKind.ANALYTICAL
        assert suite.startup_model.startup(8) == 0.0
        assert suite.redistribution_model.overhead(4, 8) == 0.0


class TestProfileSuite:
    def test_covers_every_allocation(self, profile_suite, platform):
        model = profile_suite.task_model
        for kernel in ("matmul", "matadd"):
            for n in (2000, 3000):
                assert model.covers(kernel, n, platform.num_nodes)

    def test_durations_match_emulator_means(self, profile_suite, emulator):
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        predicted = profile_suite.task_model.duration(task, 8)
        truth = emulator.kernels.mean_time("matmul", 2000, 8)
        assert predicted == pytest.approx(truth, rel=0.1)

    def test_startup_table_covers_cluster(self, profile_suite, platform):
        for p in range(1, platform.num_nodes + 1):
            assert profile_suite.startup_model.startup(p) > 0

    def test_redistribution_keyed_by_destination(self, profile_suite):
        model = profile_suite.redistribution_model
        assert model.overhead(1, 8) == model.overhead(32, 8)
        # Larger destination counts cost more on average.
        assert model.overhead(1, 32) > model.overhead(1, 1)


class TestEmpiricalSuite:
    def test_piecewise_structure(self, empirical_suite):
        mm = empirical_suite.task_model.curve("matmul", 3000)
        assert mm.high is not None
        assert mm.split == PAPER_PLAN.split
        ma = empirical_suite.task_model.curve("matadd", 3000)
        assert ma.high is None

    def test_predicts_sampled_points_well(self, empirical_suite, emulator):
        # At the sample points themselves the fit must be close to the
        # measurements (fluctuation-level tolerance).
        task = Task(task_id=0, kernel=MATADD, n=2000)
        for p in (2, 15, 31):
            predicted = empirical_suite.task_model.duration(task, p)
            truth = emulator.kernels.mean_time("matadd", 2000, p)
            assert predicted == pytest.approx(truth, rel=0.35)

    def test_startup_fit_near_ground_truth_trend(self, empirical_suite):
        from repro.testbed.jvm import STARTUP_INTERCEPT, STARTUP_SLOPE

        fit = empirical_suite.startup_model.fit
        assert fit.a == pytest.approx(STARTUP_SLOPE, abs=0.02)
        assert fit.b == pytest.approx(STARTUP_INTERCEPT, abs=0.25)

    def test_redistribution_fit_near_table2(self, empirical_suite):
        from repro.testbed.subnet import REDIST_INTERCEPT, REDIST_SLOPE

        fit = empirical_suite.redistribution_model.fit
        assert fit.a == pytest.approx(REDIST_SLOPE, rel=0.5)
        assert fit.b == pytest.approx(REDIST_INTERCEPT, rel=0.5)

    def test_durations_positive_over_whole_range(self, empirical_suite, platform):
        for kernel, n in ((MATMUL, 2000), (MATMUL, 3000), (MATADD, 2000)):
            task = Task(task_id=0, kernel=kernel, n=n)
            for p in range(1, platform.num_nodes + 1):
                assert empirical_suite.task_model.duration(task, p) > 0
