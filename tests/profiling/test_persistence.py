"""Tests for calibration persistence (save/load suites as JSON)."""

import json

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATADD, MATMUL
from repro.profiling.calibration import (
    build_analytical_suite,
    build_empirical_suite,
    build_profile_suite,
    build_size_aware_suite,
)
from repro.profiling.persistence import (
    load_suite,
    save_suite,
    suite_from_dict,
    suite_to_dict,
)
from repro.util.errors import CalibrationError


def _probe_tasks():
    return [
        (Task(task_id=0, kernel=MATMUL, n=2000), 4),
        (Task(task_id=1, kernel=MATMUL, n=3000), 17),
        (Task(task_id=2, kernel=MATADD, n=2000), 9),
    ]


def assert_suites_equivalent(a, b):
    for task, p in _probe_tasks():
        assert a.task_model.duration(task, p) == pytest.approx(
            b.task_model.duration(task, p)
        )
    for p in (1, 8, 32):
        assert a.startup_model.startup(p) == pytest.approx(
            b.startup_model.startup(p)
        )
        assert a.redistribution_model.overhead(4, p) == pytest.approx(
            b.redistribution_model.overhead(4, p)
        )


class TestRoundTrips:
    def test_profile_suite(self, emulator, tmp_path):
        suite = build_profile_suite(emulator, kernel_trials=1,
                                    startup_trials=2, redistribution_trials=1)
        path = save_suite(suite, tmp_path / "profile.json")
        clone = load_suite(path)
        assert clone.name == suite.name
        assert_suites_equivalent(suite, clone)

    def test_empirical_suite(self, emulator, tmp_path):
        suite = build_empirical_suite(emulator, kernel_trials=1,
                                      startup_trials=2,
                                      redistribution_trials=1)
        clone = load_suite(save_suite(suite, tmp_path / "emp.json"))
        assert_suites_equivalent(suite, clone)

    def test_size_aware_suite(self, emulator, tmp_path):
        suite = build_size_aware_suite(emulator, kernel_trials=1,
                                       startup_trials=2,
                                       redistribution_trials=1)
        clone = load_suite(save_suite(suite, tmp_path / "sa.json"))
        # Probe at an unmeasured size too.
        task = Task(task_id=0, kernel=MATMUL, n=2500)
        assert clone.task_model.duration(task, 4) == pytest.approx(
            suite.task_model.duration(task, 4)
        )
        assert_suites_equivalent(suite, clone)

    def test_file_is_plain_json(self, emulator, tmp_path):
        suite = build_empirical_suite(emulator, kernel_trials=1,
                                      startup_trials=2,
                                      redistribution_trials=1)
        path = save_suite(suite, tmp_path / "emp.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["task_model"]["type"] == "empirical"


class TestValidation:
    def test_analytical_suite_refused(self, platform):
        suite = build_analytical_suite(platform)
        with pytest.raises(CalibrationError):
            suite_to_dict(suite)

    def test_unknown_version_refused(self):
        with pytest.raises(CalibrationError):
            suite_from_dict({"format_version": 99})

    def test_unknown_model_type_refused(self):
        with pytest.raises(CalibrationError):
            suite_from_dict(
                {
                    "format_version": 1,
                    "name": "x",
                    "task_model": {"type": "neural"},
                    "startup_model": {"type": "zero"},
                    "redistribution_model": {"type": "zero"},
                }
            )
