"""Tests for the sparse sampling plans."""

import pytest

from repro.profiling.sparse import (
    NAIVE_POWER_OF_TWO_PLAN,
    PAPER_PLAN,
    SamplingPlan,
)


class TestPaperPlan:
    def test_matches_table2_points(self):
        assert PAPER_PLAN.matmul_low == (2, 4, 7, 15)
        assert PAPER_PLAN.matmul_high == (15, 24, 31)
        assert PAPER_PLAN.matadd == (2, 4, 7, 15, 24, 31)
        assert PAPER_PLAN.overheads == (1, 16, 32)

    def test_avoids_the_outlier_points(self):
        # The paper replaced 8 and 16 by 7 and 15.
        assert 8 not in PAPER_PLAN.matmul_low
        assert 16 not in PAPER_PLAN.matmul_low

    def test_six_measurements_claim(self):
        # "This regressive model is based on only 6 measurements as
        # opposed to 32" — distinct matmul sample points.
        assert PAPER_PLAN.total_measurements == 6


class TestNaivePlan:
    def test_contains_the_outlier_points(self):
        assert 8 in NAIVE_POWER_OF_TWO_PLAN.matmul_low
        assert 16 in NAIVE_POWER_OF_TWO_PLAN.matmul_low


class TestValidation:
    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            SamplingPlan(matmul_low=(4,))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SamplingPlan(matadd=(2, 2, 4))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            SamplingPlan(overheads=(0, 16))
