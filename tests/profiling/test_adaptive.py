"""Tests for the adaptive outlier-aware calibration (paper extension)."""

import pytest

from repro.platform.personalities import bayreuth_cluster
from repro.profiling.adaptive import adaptive_kernel_model, neighbour_point
from repro.testbed.tgrid import TGridEmulator


class TestNeighbourPoint:
    def test_prefers_smaller_neighbour(self):
        assert neighbour_point(8, {8}, max_p=32) == 7
        assert neighbour_point(16, {16}, max_p=32) == 15

    def test_skips_taken_points(self):
        assert neighbour_point(8, {7, 8}, max_p=32) == 9
        assert neighbour_point(8, {7, 8, 9}, max_p=32) == 6

    def test_respects_bounds(self):
        assert neighbour_point(1, {1}, max_p=32) == 2
        assert neighbour_point(32, {31, 32}, max_p=32) == 30

    def test_exhausted_range_returns_none(self):
        assert neighbour_point(2, {1, 2, 3}, max_p=3) is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            neighbour_point(0, set(), max_p=32)


class TestAdaptiveKernelModel:
    @pytest.fixture(scope="class")
    def result(self, emulator):
        return adaptive_kernel_model(emulator, "matmul", 3000)

    def test_confirms_the_strong_outlier(self, result):
        # The x1.6 outlier at p = 16 must be confirmed and replaced.
        assert 16 in result.flagged
        assert result.replacements[16] == 15

    def test_no_false_positives_among_clean_points(self, result):
        assert all(p in (8, 16) for p in result.flagged)

    def test_fit_tracks_the_clean_curve(self, result, emulator):
        errs = []
        for p in range(2, 16):
            if p == 8:
                continue
            truth = emulator.kernels.mean_time("matmul", 3000, p)
            errs.append(abs(result.model(p) - truth) / truth)
        # Within the testbed's own fluctuation envelope.
        assert sum(errs) / len(errs) < 0.5

    def test_budget_far_below_full_profile(self, result, emulator):
        assert result.measurements_used < emulator.platform.num_nodes // 2

    def test_sample_bookkeeping_consistent(self, result):
        for flagged in result.flagged:
            assert flagged not in result.low_samples
            assert result.replacements[flagged] in result.low_samples

    def test_clean_environment_flags_nothing(self, platform):
        clean = TGridEmulator(platform, seed=3, with_outliers=False,
                              with_noise=False)
        result = adaptive_kernel_model(clean, "matadd", 2000)
        assert result.flagged == []
        # matadd follows a/p + b exactly (modulo fluctuation): the fit
        # must be close at unsampled points.
        truth = clean.kernels.mean_time("matadd", 2000, 12)
        assert result.model(12) == pytest.approx(truth, rel=0.4)

    def test_deterministic(self, emulator):
        a = adaptive_kernel_model(emulator, "matmul", 3000)
        b = adaptive_kernel_model(emulator, "matmul", 3000)
        assert a.flagged == b.flagged
        assert a.low_samples == b.low_samples
