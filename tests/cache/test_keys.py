"""Canonical cache keys: stability and sensitivity properties.

The cache is only correct if the key hash is *stable* under
representation details (dict insertion order, float formatting) and
*sensitive* to every semantically meaningful change (a DAG edge, an
allocation, a fitted model coefficient).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.keys import (
    CacheKeyError,
    canonical_bytes,
    canonical_hash,
    costs_fingerprint,
    dag_fingerprint,
    emulator_fingerprint,
    schedule_fingerprint,
    suite_fingerprint,
)
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATADD, MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.models.profiles import ProfileTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.testbed.tgrid import TGridEmulator

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
_plain_data = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def _reorder(obj):
    """Same value, different container insertion order."""
    if isinstance(obj, dict):
        return {k: _reorder(obj[k]) for k in reversed(list(obj))}
    if isinstance(obj, list):
        return [_reorder(v) for v in obj]
    return obj


class TestStability:
    @given(obj=_plain_data)
    @settings(max_examples=100, deadline=None)
    def test_dict_insertion_order_never_matters(self, obj):
        assert canonical_bytes(_reorder(obj)) == canonical_bytes(obj)

    @given(
        x=st.floats(allow_nan=False, allow_infinity=False),
        fmt=st.sampled_from(["{!r}", "{:.17e}", "{:+.20g}"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_float_formatting_never_matters(self, x, fmt):
        # Any textual rendering that parses back to the same IEEE-754
        # value must hash identically.
        reparsed = float(fmt.format(x))
        assert reparsed == x
        assert canonical_hash(reparsed) == canonical_hash(x)

    @given(
        x=st.floats(
            allow_nan=False, allow_infinity=False, max_value=1e300
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_adjacent_floats_differ(self, x):
        neighbour = np.nextafter(x, np.inf)
        assert canonical_hash(float(neighbour)) != canonical_hash(x)

    def test_numpy_scalars_hash_like_python_scalars(self):
        assert canonical_hash(np.float64(1.5)) == canonical_hash(1.5)
        assert canonical_hash(np.int64(7)) == canonical_hash(7)
        assert canonical_hash(np.array([1.0, 2.0])) == canonical_hash(
            np.array([1.0, 2.0])
        )


class TestSensitivity:
    def test_types_never_collide(self):
        hashes = {canonical_hash(v) for v in (1, 1.0, "1", True, b"1", None)}
        assert len(hashes) == 6

    def test_structure_never_collides_by_concatenation(self):
        assert canonical_hash(["ab"]) != canonical_hash(["a", "b"])
        assert canonical_hash([["a"], "b"]) != canonical_hash(["a", ["b"]])
        assert canonical_hash({"a": "b"}) != canonical_hash(["a", "b"])

    @given(obj=_plain_data, other=_plain_data)
    @settings(max_examples=50, deadline=None)
    def test_unequal_values_hash_differently(self, obj, other):
        if obj != other:
            assert canonical_hash(obj) != canonical_hash(other)


def _diamond(extra_edge=False, n=2000):
    g = TaskGraph(name="diamond")
    g.add_task(Task(task_id=0, kernel=MATMUL, n=n))
    g.add_task(Task(task_id=1, kernel=MATADD, n=n))
    g.add_task(Task(task_id=2, kernel=MATMUL, n=n))
    g.add_task(Task(task_id=3, kernel=MATADD, n=n))
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    if extra_edge:
        g.add_edge(0, 3)
    return g


class TestDomainFingerprints:
    def test_dag_fingerprint_changes_with_an_edge(self):
        base = canonical_hash(dag_fingerprint(_diamond()))
        assert canonical_hash(dag_fingerprint(_diamond())) == base
        assert canonical_hash(dag_fingerprint(_diamond(extra_edge=True))) != base

    def test_dag_fingerprint_changes_with_task_size(self):
        assert canonical_hash(dag_fingerprint(_diamond(n=2000))) != canonical_hash(
            dag_fingerprint(_diamond(n=3000))
        )

    def test_dag_fingerprint_ignores_derived_topo_cache(self):
        warm, cold = _diamond(), _diamond()
        warm.topological_order()  # populate the memoised order
        assert canonical_hash(dag_fingerprint(warm)) == canonical_hash(
            dag_fingerprint(cold)
        )

    def test_schedule_fingerprint_changes_with_allocation(self):
        platform = bayreuth_cluster(8)
        graph = _diamond()
        costs = SchedulingCosts(
            graph, platform, AnalyticalTaskModel(platform)
        )
        by_alg = {
            alg: canonical_hash(
                schedule_fingerprint(schedule_dag(graph, costs, alg))
            )
            for alg in ("seq", "maxpar")
        }
        # seq allocates every node to each task in turn; maxpar splits
        # the cluster — different placements, different fingerprints.
        assert by_alg["seq"] != by_alg["maxpar"]

    def test_suite_fingerprint_changes_with_platform(self):
        a = suite_fingerprint(build_analytical_suite(bayreuth_cluster(32)))
        b = suite_fingerprint(build_analytical_suite(bayreuth_cluster(16)))
        assert canonical_hash(a) != canonical_hash(b)

    def test_suite_fingerprint_changes_with_one_table_entry(self):
        table = {("matmul", 2000, 4): 1.25, ("matadd", 2000, 4): 0.5}
        bumped = dict(table)
        bumped[("matmul", 2000, 4)] += 1e-9
        assert canonical_hash(ProfileTaskModel(table)) != canonical_hash(
            ProfileTaskModel(bumped)
        )

    def test_costs_fingerprint_ignores_memo_tables(self):
        platform = bayreuth_cluster(8)
        graph = _diamond()
        costs = SchedulingCosts(
            graph, platform, AnalyticalTaskModel(platform)
        )
        before = canonical_hash(costs_fingerprint(costs))
        schedule_dag(graph, costs, "hcpa")  # populates internal memos
        assert canonical_hash(costs_fingerprint(costs)) == before

    def test_emulator_fingerprint_tracks_seed_and_noise(self):
        platform = bayreuth_cluster(8)
        base = canonical_hash(
            emulator_fingerprint(TGridEmulator(platform, seed=0))
        )
        assert (
            canonical_hash(
                emulator_fingerprint(TGridEmulator(platform, seed=1))
            )
            != base
        )
        assert (
            canonical_hash(
                emulator_fingerprint(
                    TGridEmulator(platform, seed=0, with_noise=False)
                )
            )
            != base
        )


class TestRefusals:
    def test_unencodable_object_is_refused(self):
        with pytest.raises(CacheKeyError, match="cannot canonically encode"):
            canonical_hash(object())

    def test_rng_is_refused(self):
        with pytest.raises(CacheKeyError):
            canonical_hash({"rng": np.random.default_rng(0)})

    def test_cycles_are_refused(self):
        loop: list = []
        loop.append(loop)
        with pytest.raises(CacheKeyError, match="cyclic"):
            canonical_hash(loop)
