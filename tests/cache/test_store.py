"""CacheStore resilience: corruption, version skew, atomicity, maintenance.

A damaged cache must never crash a study or serve wrong data — every
bad entry is detected, logged through the Recorder, deleted, and the
value transparently recomputed.
"""

from __future__ import annotations

import pickle
import shutil

import pytest

from repro.cache.result_cache import ResultCache
from repro.cache.schema import CACHE_SCHEMA_VERSION
from repro.cache.store import CacheEntryStatus, CacheStore
from repro.obs.recorder import Recorder, recording


@pytest.fixture
def root(tmp_path):
    return tmp_path / "cache"


def _entry_file(store: CacheStore, namespace: str, key_hash: str):
    return store._entry_path(namespace, key_hash)


KEY = "ab" + "0" * 62  # hash-shaped: fans out into the "ab" subdirectory


class TestRoundTrip:
    def test_put_get(self, root):
        store = CacheStore(root)
        store.put("schedule", KEY, {"makespan": 12.5})
        assert store.get("schedule", KEY) == (True, {"makespan": 12.5})

    def test_cached_none_is_a_hit(self, root):
        store = CacheStore(root)
        store.put("schedule", KEY, None)
        assert store.get("schedule", KEY) == (True, None)

    def test_miss(self, root):
        assert CacheStore(root).get("schedule", KEY) == (False, None)

    def test_lru_skips_disk(self, root):
        store = CacheStore(root)
        store.put("schedule", KEY, "value")
        shutil.rmtree(root)  # rip the disk out from under the store
        assert store.get("schedule", KEY) == (True, "value")

    def test_lru_can_be_disabled(self, root):
        store = CacheStore(root, lru_entries=0)
        store.put("schedule", KEY, "value")
        shutil.rmtree(root)
        assert store.get("schedule", KEY) == (False, None)


class TestCorruptionAndSkew:
    def _assert_discarded(self, root, status, mutate):
        """Write an entry, damage it with ``mutate``, then re-read."""
        writer = CacheStore(root)
        writer.put("schedule", KEY, "good value")
        mutate(_entry_file(writer, "schedule", KEY))

        recorder = Recorder.to_memory()
        reader = CacheStore(root)  # fresh store: no LRU shortcut
        with recording(recorder):
            found, value = reader.get("schedule", KEY)
        assert (found, value) == (False, None)
        # ... detected and counted ...
        counters = recorder.metrics()["counters"]
        assert counters[f"cache.discarded.{status}"] == 1
        # ... logged through the Recorder ...
        events = [
            r for r in recorder.sink.records if r.get("name") == "cache.discard"
        ]
        assert len(events) == 1 and events[0]["reason"] == status
        # ... and deleted, so the next read is a clean miss.
        assert not _entry_file(reader, "schedule", KEY).exists()

    def test_truncated_entry_is_discarded(self, root):
        self._assert_discarded(
            root,
            CacheEntryStatus.CORRUPT,
            lambda path: path.write_bytes(path.read_bytes()[: 10]),
        )

    def test_garbage_entry_is_discarded(self, root):
        self._assert_discarded(
            root,
            CacheEntryStatus.CORRUPT,
            lambda path: path.write_bytes(b"not a pickle at all"),
        )

    def test_non_envelope_pickle_is_discarded(self, root):
        self._assert_discarded(
            root,
            CacheEntryStatus.CORRUPT,
            lambda path: path.write_bytes(pickle.dumps([1, 2, 3])),
        )

    def test_stale_schema_entry_is_discarded(self, root):
        def rewrite_with_old_schema(path):
            envelope = pickle.loads(path.read_bytes())
            envelope["schema"] = "repro-cache-0"
            path.write_bytes(pickle.dumps(envelope))

        self._assert_discarded(
            root, CacheEntryStatus.STALE, rewrite_with_old_schema
        )

    def test_misplaced_entry_is_discarded(self, root):
        def misfile(path):
            # A valid envelope for a *different* key under this name:
            # renamed or hash-collided files can never be trusted.
            envelope = pickle.loads(path.read_bytes())
            envelope["key"] = "cd" + "1" * 62
            path.write_bytes(pickle.dumps(envelope))

        self._assert_discarded(root, CacheEntryStatus.CORRUPT, misfile)

    def test_damaged_entry_is_transparently_recomputed(self, root):
        cache = ResultCache(root)
        key = {"dag": "diamond", "algorithm": "hcpa"}
        assert cache.get_or_compute("schedule", key, lambda: 41) == 41
        _entry_file(cache.store, "schedule", cache.key_hash(key)).write_bytes(
            b"\x00 bit rot \x00"
        )

        recorder = Recorder.to_memory()
        fresh = ResultCache(root)
        with recording(recorder):
            value = fresh.get_or_compute("schedule", key, lambda: 42)
        assert value == 42  # recomputed, never crashed
        counters = recorder.metrics()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.discarded.corrupt"] == 1
        # The recomputed value was re-persisted.
        assert ResultCache(root).get_or_compute(
            "schedule", key, lambda: 43
        ) == 42


class TestMaintenance:
    def _populate(self, root):
        store = CacheStore(root)
        store.put("schedule", KEY, "a")
        store.put("simulation", KEY, "b")
        old = CacheStore(root, schema="repro-cache-0")
        old.put("schedule", "cd" + "1" * 62, "stale")
        bad = _entry_file(store, "simulation", "ef" + "2" * 62)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"garbage")
        return store

    def test_info_tallies_by_status_and_namespace(self, root):
        info = self._populate(root).info()
        assert info.schema == CACHE_SCHEMA_VERSION
        assert info.entries == 2
        assert info.stale_entries == 1
        assert info.corrupt_entries == 1
        assert info.bytes > 0
        assert info.namespaces["schedule"]["entries"] == 1
        assert info.namespaces["simulation"]["entries"] == 1
        assert set(info.to_dict()) >= {"root", "entries", "namespaces"}

    def test_prune_removes_only_bad_entries(self, root):
        store = self._populate(root)
        assert store.prune() == 2
        info = store.info()
        assert info.entries == 2
        assert info.stale_entries == 0 and info.corrupt_entries == 0

    def test_clear_removes_everything(self, root):
        store = self._populate(root)
        assert store.clear() == 4
        assert not root.exists()
        assert store.info().entries == 0

    def test_lru_entries_must_be_non_negative(self, root):
        with pytest.raises(ValueError, match="lru_entries"):
            CacheStore(root, lru_entries=-1)
