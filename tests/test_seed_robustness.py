"""Seed robustness: the qualitative findings survive a different world.

The headline numbers of EXPERIMENTS.md are quoted at seed 0.  This test
re-runs the core study in an entirely different random world (different
DAG population, different fluctuation pattern, different noise) and
asserts the paper's *conclusions* — not the exact counts — still hold.
Slowish (~10 s), but it is the single most important robustness check
of the reproduction.
"""

import pytest

from repro.experiments.comparison import compare_algorithms, simulation_errors
from repro.experiments.context import StudyContext


@pytest.fixture(scope="module")
def other_world():
    return StudyContext(seed=20260704)


class TestSeedRobustness:
    def test_analytic_simulator_still_unreliable(self, other_world):
        study = other_world.study("analytic")
        wrong = sum(
            compare_algorithms(study, simulator="analytic", n=n).num_wrong
            for n in (2000, 3000)
        )
        # Paper total: 23/54.  Any materially unreliable rate suffices.
        assert wrong >= 10

    def test_profile_simulator_still_reliable(self, other_world):
        study = other_world.study("profile")
        wrong = sum(
            compare_algorithms(study, simulator="profile", n=n).num_wrong
            for n in (2000, 3000)
        )
        assert wrong <= 6

    def test_error_ordering_preserved(self, other_world):
        study = other_world.study("analytic", "profile")
        for alg in ("hcpa", "mcpa"):
            analytic = simulation_errors(
                study, simulator="analytic", algorithm=alg
            ).median
            profile = simulation_errors(
                study, simulator="profile", algorithm=alg
            ).median
            assert analytic > 5 * profile
            assert profile < 10.0
