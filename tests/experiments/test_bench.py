"""Tests for the pipeline benchmark core and baseline comparison."""

from __future__ import annotations

import pytest

from repro.experiments.bench import (
    StageComparison,
    cache_speedup,
    compare_to_baseline,
    default_baseline_path,
    render_comparison,
    run_pipeline_bench,
)


def _payload(**stage_seconds):
    return {
        "stages": {
            name: {"seconds": s, "units": 1, "seconds_per_unit": s}
            for name, s in stage_seconds.items()
        }
    }


class TestComparison:
    def test_within_threshold_passes(self):
        comps = compare_to_baseline(
            _payload(scheduling=0.11), _payload(scheduling=0.10),
            threshold=0.25,
        )
        assert len(comps) == 1
        assert not comps[0].regressed
        assert comps[0].ratio == pytest.approx(1.1)

    def test_beyond_threshold_regresses(self):
        comps = compare_to_baseline(
            _payload(scheduling=0.20), _payload(scheduling=0.10),
            threshold=0.25,
        )
        assert comps[0].regressed
        assert "FAIL" in render_comparison(comps)

    def test_speedup_is_not_a_regression(self):
        comps = compare_to_baseline(
            _payload(scheduling=0.04), _payload(scheduling=0.10),
        )
        assert not comps[0].regressed
        assert "PASS" in render_comparison(comps)

    def test_new_stage_is_skipped(self):
        comps = compare_to_baseline(
            _payload(scheduling=0.1, brand_new=9.9),
            _payload(scheduling=0.1),
        )
        assert [c.stage for c in comps] == ["scheduling"]

    def test_config_mismatch_is_rejected(self):
        current = _payload(scheduling=0.1)
        current["config"] = {"num_dags": 2}
        baseline = _payload(scheduling=0.1)
        baseline["config"] = {"num_dags": 12}
        with pytest.raises(ValueError, match="num_dags"):
            compare_to_baseline(current, baseline)

    def test_zero_baseline_does_not_divide(self):
        c = StageComparison(
            stage="s", baseline_s=0.0, current_s=1.0, threshold=0.25
        )
        assert c.ratio == 1.0
        assert not c.regressed


class TestBenchRun:
    def test_small_bench_produces_all_stages(self):
        payload = run_pipeline_bench(num_dags=2)
        assert set(payload["stages"]) == {
            "dag_generation",
            "scheduling",
            "scheduling_array",
            "simulation",
            "testbed_execution",
            "study_cold",
            "study_cold_array",
            "study_cold_sched_array",
            "study_throughput_w1",
            "study_throughput_w2",
            "study_throughput_w4",
            "study_throughput_w4_percell",
            "cached_rerun",
            "obs_overhead_off",
            "obs_overhead_on",
            "obs_live_overhead_off",
            "obs_live_overhead_on",
            "solver_dense_scalar",
            "solver_dense_vectorized",
            "solver_sparse_scalar",
            "solver_sparse_vectorized",
        }
        assert payload["config"]["repeat"] == 1
        assert payload["counters"]["engine.steps"] > 0

    def test_payload_stamps_host_metadata(self):
        from repro.experiments.bench import host_metadata

        payload = run_pipeline_bench(num_dags=1)
        assert payload["host"] == host_metadata()
        assert payload["host"]["cpus"] >= 1
        assert payload["host"]["platform"]
        assert payload["host"]["python"].count(".") == 2

    def test_study_throughput_helpers(self):
        from repro.experiments.bench import (
            study_cells_per_sec,
            study_throughput_speedup,
        )

        payload = run_pipeline_bench(num_dags=2)
        for stage in (
            "study_throughput_w1",
            "study_throughput_w2",
            "study_throughput_w4",
            "study_throughput_w4_percell",
        ):
            info = payload["stages"][stage]
            assert info["units"] == payload["stages"]["study_cold"]["units"]
            assert study_cells_per_sec(payload, stage) > 0
        assert study_throughput_speedup(payload) > 0
        assert study_throughput_speedup({"stages": {}}) is None
        assert study_cells_per_sec({"stages": {}}) is None

    def test_chunk_identity_sweep(self):
        from repro.experiments.bench import assert_chunk_identity

        assert assert_chunk_identity(num_dags=2) == 5

    def test_stages_record_their_engine_backend(self):
        payload = run_pipeline_bench(num_dags=2, engine="array")
        assert payload["config"]["engine"] == "array"
        for name in (
            "simulation", "testbed_execution", "study_cold", "cached_rerun",
            "study_throughput_w4", "study_throughput_w4_percell",
        ):
            assert payload["stages"][name]["engine"] == "array"
        assert payload["stages"]["study_cold_array"]["engine"] == "array"
        # Pure-python stages have no engine to report.
        assert "engine" not in payload["stages"]["scheduling"]

    def test_stages_record_their_sched_backend(self):
        payload = run_pipeline_bench(num_dags=2, sched="array")
        assert payload["config"]["sched"] == "array"
        for name in (
            "study_cold", "cached_rerun", "obs_overhead_off",
            "study_throughput_w4", "study_throughput_w4_percell",
        ):
            assert payload["stages"][name]["sched"] == "array"
        # The allocation-phase pair pins its backends regardless.
        assert payload["stages"]["scheduling"]["sched"] == "object"
        assert payload["stages"]["scheduling_array"]["sched"] == "array"
        assert payload["stages"]["study_cold_sched_array"]["sched"] == "array"
        # Stages with no allocation phase have no backend to report.
        assert "sched" not in payload["stages"]["dag_generation"]
        assert "sched" not in payload["stages"]["solver_dense_scalar"]

    def test_sched_speedup_reads_the_scheduling_pair(self):
        from repro.experiments.bench import sched_speedup

        payload = run_pipeline_bench(num_dags=2)
        ratio = sched_speedup(payload)
        assert ratio is not None and ratio > 0
        assert sched_speedup({"stages": {}}) is None

    def test_cache_speedup_reads_the_cold_warm_pair(self):
        payload = run_pipeline_bench(num_dags=2)
        speedup = cache_speedup(payload)
        assert speedup is not None and speedup > 0
        assert cache_speedup({"stages": {}}) is None
        # The warm re-run replayed every cell from the cache.
        assert payload["counters"]["cache.hits"] > 0

    def test_repeat_keeps_the_minimum(self):
        one = run_pipeline_bench(num_dags=2, repeat=1)
        best = run_pipeline_bench(num_dags=2, repeat=2)
        assert best["config"]["repeat"] == 2
        for stage in one["stages"]:
            assert best["stages"][stage]["seconds"] >= 0.0

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            run_pipeline_bench(num_dags=1, repeat=0)

    def test_default_baseline_points_at_repo_root(self):
        path = default_baseline_path()
        assert path.name == "BENCH_pipeline.json"
        assert path.exists()
