"""Tests for the overhead-sensitivity sweep (extension)."""

import pytest

from repro.experiments.sensitivity import (
    SensitivityPoint,
    SensitivitySweep,
    overhead_sensitivity,
)


class TestDataClasses:
    def test_wrong_fraction(self):
        p = SensitivityPoint(scale=1.0, num_wrong=9, num_dags=27,
                             mean_error_pct=50.0)
        assert p.wrong_fraction == pytest.approx(1 / 3)

    def test_monotonicity_helper(self):
        sweep = SensitivitySweep(parameter="x")
        sweep.points = [
            SensitivityPoint(1.0, 1, 10, 20.0),
            SensitivityPoint(0.5, 1, 10, 10.0),
            SensitivityPoint(2.0, 1, 10, 30.0),
        ]
        assert sweep.errors_increase_with_scale()
        sweep.points.append(SensitivityPoint(4.0, 1, 10, 5.0))
        assert not sweep.errors_increase_with_scale()

    def test_point_lookup(self):
        sweep = SensitivitySweep(parameter="x")
        sweep.points = [SensitivityPoint(1.0, 0, 1, 0.0)]
        assert sweep.point(1.0).scale == 1.0
        with pytest.raises(KeyError):
            sweep.point(9.0)


class TestOverheadSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self, study_context):
        dags = [d for d in study_context.dags if d[0].sample == 0]
        return overhead_sensitivity(
            study_context.platform,
            dags,
            scales=(0.25, 1.0, 4.0),
            seed=study_context.seed,
        )

    def test_three_points(self, sweep):
        assert len(sweep.points) == 3

    def test_analytic_error_tracks_overheads(self, sweep):
        # The analytical simulator never models the overheads, so
        # scaling them up must inflate its error.
        assert sweep.errors_increase_with_scale()
        assert sweep.point(4.0).mean_error_pct > sweep.point(0.25).mean_error_pct

    def test_validation(self, study_context):
        with pytest.raises(ValueError):
            overhead_sensitivity(
                study_context.platform, study_context.dags, scales=()
            )
        with pytest.raises(ValueError):
            overhead_sensitivity(
                study_context.platform, [], scales=(1.0,)
            )
