"""Profile *structure* is a pure function of the workload.

Wall-clock durations jitter run to run, but which spans nested under
which, how many times each fired, and which kernels ran at which size
buckets must be byte-identical across worker counts (deterministic
merge in submission order) and — for the span tree — across engine
backends (the engines are observationally equivalent above the kernel
layer).
"""

from __future__ import annotations

import pytest

from repro.dag.generator import generate_paper_dags
from repro.experiments.runner import run_study
from repro.obs.prof import Profiler
from repro.obs.recorder import Recorder, recording
from repro.obs.sinks import MemorySink
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return dags, suite, emulator


def _profiled_study(study_inputs, *, workers=1, engine=None):
    dags, suite, emulator = study_inputs
    prof = Profiler()
    with recording(Recorder(MemorySink(), profiler=prof)):
        run_study(dags, [suite], emulator, workers=workers, engine=engine)
    return prof


def test_structure_identical_across_worker_counts(study_inputs):
    serial = _profiled_study(study_inputs, workers=1)
    parallel = _profiled_study(study_inputs, workers=2)
    assert serial.structure() == parallel.structure()
    # Not vacuous: the study actually produced spans and kernel probes.
    assert serial.structure()["spans"]
    assert serial.structure()["kernels"]


def test_span_structure_identical_across_engines(study_inputs):
    obj = _profiled_study(study_inputs, engine="object")
    arr = _profiled_study(study_inputs, engine="array")
    # The span tree (which phases ran, how often) matches exactly; the
    # kernel probes legitimately differ (each backend runs its own
    # solver/scan kernels), so only the span half is compared.
    assert obj.structure()["spans"] == arr.structure()["spans"]
    assert obj.structure()["kernels"] != arr.structure()["kernels"]


def test_worker_profiles_reach_the_parent_recorder(study_inputs):
    """With workers > 1 the probes come from subprocesses via absorb."""
    prof = _profiled_study(study_inputs, workers=2, engine="array")
    kernels = {kernel for kernel, _bucket in prof.kernels}
    # The array engine's dispatch kernels fired inside pool workers and
    # were merged back into the parent's profiler.
    assert "scan_scalar" in kernels or "scan_vector" in kernels
