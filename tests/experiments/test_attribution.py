"""Tests for the gap-attribution diagnostic (Section V-C, computed)."""

import pytest

from repro.experiments.attribution import GapAttribution, attribute_gap
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag


class TestGapAttribution:
    def test_bookkeeping(self):
        att = GapAttribution(
            dag_label="x",
            base_makespan=10.0,
            exp_makespan=30.0,
            contributions={"kernel time": 12.0, "startup overhead": 6.0},
        )
        assert att.explained == pytest.approx(18.0)
        assert att.residual == pytest.approx(2.0)
        assert att.dominant_culprit == "kernel time"
        fr = att.fractions()
        assert fr["kernel time"] == pytest.approx(0.6)

    def test_zero_gap_fractions(self):
        att = GapAttribution("x", 10.0, 10.0, {"kernel time": 0.0})
        assert att.fractions() == {"kernel time": 0.0}


class TestAttributeGap:
    @pytest.fixture(scope="class")
    def attribution(self, study_context):
        ctx = study_context
        params, graph = next(
            d for d in ctx.dags if d[0].n == 2000 and d[0].sample == 0
        )
        suite = ctx.analytic_suite
        costs = SchedulingCosts(
            graph,
            ctx.platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        schedule = schedule_dag(graph, costs, "mcpa")
        return attribute_gap(
            graph, schedule, suite, ctx.profile_suite, ctx.emulator
        )

    def test_gap_is_positive_and_large(self, attribution):
        # The analytic simulator grossly underestimates reality.
        assert attribution.exp_makespan > 1.5 * attribution.base_makespan

    def test_culprits_cover_most_of_the_gap(self, attribution):
        gap = attribution.exp_makespan - attribution.base_makespan
        assert attribution.explained == pytest.approx(gap, rel=0.25)
        assert abs(attribution.residual) < 0.25 * gap

    def test_kernel_time_is_a_dominant_culprit(self, attribution):
        # Section V-C: "simulated execution times are often grossly
        # underestimated" is culprit (a); it must carry a large share.
        assert attribution.contributions["kernel time"] > 0
        assert attribution.fractions()["kernel time"] > 0.4

    def test_all_three_culprits_contribute(self, attribution):
        # Startup and redistribution overheads are real, positive costs.
        assert attribution.contributions["startup overhead"] > 0
        assert attribution.contributions["redistribution"] > 0
