"""Tests for the comparison metrics."""

import pytest

from repro.experiments.comparison import (
    AlgorithmComparison,
    DagComparison,
    compare_algorithms,
    simulation_errors,
)
from repro.experiments.runner import RunRecord, StudyResult


def record(dag, alg, sim, exp, simulator="analytic", n=2000):
    return RunRecord(
        dag_label=dag,
        n=n,
        algorithm=alg,
        simulator=simulator,
        sim_makespan=sim,
        exp_makespan=exp,
        total_alloc=10,
    )


@pytest.fixture
def synthetic_study():
    study = StudyResult()
    # DAG A: sim says HCPA better, experiment agrees.
    study.records += [
        record("A", "hcpa", sim=9.0, exp=18.0),
        record("A", "mcpa", sim=10.0, exp=20.0),
        # DAG B: sim says HCPA better, experiment disagrees (flip).
        record("B", "hcpa", sim=9.0, exp=25.0),
        record("B", "mcpa", sim=10.0, exp=20.0),
    ]
    return study


class TestDagComparison:
    def test_flip_detection(self):
        assert DagComparison("x", 2000, rel_sim=-0.1, rel_exp=0.2).sign_flipped
        assert not DagComparison("x", 2000, rel_sim=0.1, rel_exp=0.2).sign_flipped

    def test_exact_tie_is_not_a_flip(self):
        assert not DagComparison("x", 2000, rel_sim=0.0, rel_exp=0.5).sign_flipped
        assert not DagComparison("x", 2000, rel_sim=-0.5, rel_exp=0.0).sign_flipped


class TestCompareAlgorithms:
    def test_relative_makespans(self, synthetic_study):
        cmp = compare_algorithms(synthetic_study, simulator="analytic", n=2000)
        byd = {d.dag_label: d for d in cmp.dags}
        assert byd["A"].rel_sim == pytest.approx(-0.1)
        assert byd["A"].rel_exp == pytest.approx(-0.1)
        assert byd["B"].rel_sim == pytest.approx(-0.1)
        assert byd["B"].rel_exp == pytest.approx(0.25)

    def test_flip_count(self, synthetic_study):
        cmp = compare_algorithms(synthetic_study, simulator="analytic", n=2000)
        assert cmp.num_dags == 2
        assert cmp.num_wrong == 1
        assert cmp.wrong_fraction == pytest.approx(0.5)

    def test_sorted_by_sim(self, synthetic_study):
        cmp = compare_algorithms(synthetic_study, simulator="analytic", n=2000)
        rels = [d.rel_sim for d in cmp.sorted_by_sim()]
        assert rels == sorted(rels)

    def test_experimental_wins(self, synthetic_study):
        cmp = compare_algorithms(synthetic_study, simulator="analytic", n=2000)
        assert cmp.challenger_experimental_wins == 1  # only DAG A

    def test_missing_simulator_rejected(self, synthetic_study):
        with pytest.raises(ValueError):
            compare_algorithms(synthetic_study, simulator="profile", n=2000)


class TestSimulationErrors:
    def test_box_over_errors(self, synthetic_study):
        box = simulation_errors(
            synthetic_study, simulator="analytic", algorithm="hcpa"
        )
        # errors: |9-18|/18 = 50% and |9-25|/25 = 64%.
        assert box.n == 2
        assert box.minimum == pytest.approx(50.0)
        assert box.maximum == pytest.approx(64.0)

    def test_empty_selection_rejected(self, synthetic_study):
        with pytest.raises(ValueError):
            simulation_errors(
                synthetic_study, simulator="analytic", algorithm="cpa"
            )
