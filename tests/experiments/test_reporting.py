"""Tests for the text reporting of figures."""

import pytest

from repro.experiments import figures, reporting
from repro.experiments.comparison import AlgorithmComparison, DagComparison


@pytest.fixture
def comparison():
    cmp = AlgorithmComparison(
        simulator="analytic", n=2000, baseline="mcpa", challenger="hcpa"
    )
    cmp.dags = [
        DagComparison("dag-a", 2000, rel_sim=-0.2, rel_exp=0.1),
        DagComparison("dag-b", 2000, rel_sim=0.3, rel_exp=0.2),
    ]
    return cmp


class TestRenderComparison:
    def test_contains_counts_and_bars(self, comparison):
        out = reporting.render_comparison(comparison, paper_wrong=16)
        assert "wrong comparisons: 1 / 2" in out
        assert "[paper: 16 / 27]" in out
        assert "dag-a" in out and "dag-b" in out
        assert "sim" in out and "exp" in out

    def test_sorted_by_simulated_value(self, comparison):
        out = reporting.render_comparison(comparison)
        assert out.index("dag-a") < out.index("dag-b")


class TestFigureRenderers:
    def test_table1(self, study_context):
        out = reporting.render_table1(figures.table1(study_context))
        assert "total DAG instances    54" in out
        assert "v2_r0.5_n2000_s0" in out

    def test_figure3(self, study_context):
        out = reporting.render_figure3(figures.figure3(study_context, trials=3))
        assert "startup overhead" in out
        assert "p= 1" in out and "p=32" in out

    def test_figure4(self, study_context):
        out = reporting.render_figure4(figures.figure4(study_context, trials=1))
        assert "ms per dst proc" in out

    def test_figure6(self, study_context):
        out = reporting.render_figure6(figures.figure6(study_context))
        assert "naive" in out and "final" in out
        assert "outlier" in out

    def test_figure8(self, study_context):
        out = reporting.render_figure8(figures.figure8(study_context))
        assert "analytic" in out and "profile" in out and "empirical" in out
        assert "median" in out

    def test_table2(self, study_context):
        out = reporting.render_table2(figures.table2(study_context))
        assert "task startup" in out
        assert "paper (a, b)" in out
