"""The chunked study executor must be indistinguishable from the serial loop.

The plan-then-execute pipeline (see :mod:`repro.experiments.runner`)
may regroup the grid into arbitrary chunks, pre-lower layouts in the
parent, satisfy cached cells before dispatch and ship one compact
observability payload per chunk — but none of that is allowed to show:
records, counters, events, timeline lines and profiler structure must
equal the serial loop's bit for bit at every (workers, chunk, backend)
combination.
"""

from __future__ import annotations

import pytest

from repro.cache import ResultCache
from repro.dag.generator import generate_paper_dags
from repro.experiments import runner as runner_mod
from repro.experiments.runner import CHUNK_ENV_VAR, resolve_chunk, run_study
from repro.obs.prof import Profiler
from repro.obs.recorder import Recorder, recording
from repro.obs.sinks import MemorySink
from repro.obs.timeline import Timeline, timeline_lines
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return dags, suite, emulator


def _observed_study(study_inputs, *, workers, chunk=None, cache=None,
                    engine=None, sched=None, telemetry=None):
    """One fully-observed study; returns its comparable facets."""
    dags, suite, emulator = study_inputs
    sink = MemorySink()
    rec = Recorder(sink, timeline=Timeline(), profiler=Profiler())
    with recording(rec):
        result = run_study(
            dags, [suite], emulator, workers=workers, chunk=chunk,
            cache=cache, engine=engine, sched=sched, telemetry=telemetry,
        )
    # The clamp counter legitimately differs across hosts (it fires
    # whenever the requested pool exceeds the core count).
    counters = {
        k: v
        for k, v in rec.metrics()["counters"].items()
        if k != "runner.workers_clamped"
    }
    return {
        "records": result.records,
        "events": [r for r in sink.records if r.get("type") == "event"],
        "counters": counters,
        "span_counts": {
            name: agg["count"]
            for name, agg in rec.metrics()["spans"].items()
        },
        "timeline": timeline_lines(rec.timeline.records),
        "profile": rec.profiler.structure(),
    }


@pytest.mark.parametrize("backends", [
    {"engine": None, "sched": None},
    {"engine": "array", "sched": "array"},
], ids=["object", "array"])
def test_chunked_matches_serial_on_every_facet(study_inputs, backends):
    serial = _observed_study(study_inputs, workers=1, **backends)
    assert serial["records"]  # the study actually ran
    for workers, chunk in [(2, 1), (2, 4), (4, 1), (4, 4), (4, 10**9)]:
        chunked = _observed_study(
            study_inputs, workers=workers, chunk=chunk, **backends
        )
        for facet in ("records", "events", "counters", "span_counts",
                      "timeline", "profile"):
            assert chunked[facet] == serial[facet], (
                f"{facet} diverged at workers={workers}, chunk={chunk}"
            )


def test_chunked_cold_and_warm_cache_match_serial(study_inputs, tmp_path):
    serial_cold = _observed_study(
        study_inputs, workers=1, cache=ResultCache(tmp_path / "serial")
    )
    serial_warm = _observed_study(
        study_inputs, workers=1, cache=ResultCache(tmp_path / "serial")
    )
    cold = _observed_study(
        study_inputs, workers=4, chunk=2,
        cache=ResultCache(tmp_path / "chunked"),
    )
    warm = _observed_study(
        study_inputs, workers=4, chunk=2,
        cache=ResultCache(tmp_path / "chunked"),
    )
    for label, a, b in (("cold", serial_cold, cold),
                        ("warm", serial_warm, warm)):
        for facet in ("records", "events", "counters", "span_counts",
                      "timeline", "profile"):
            assert a[facet] == b[facet], f"{facet} diverged on {label} run"
    # The warm runs replayed every cell from the cache.
    assert warm["counters"]["cache.hits"] > 0
    assert warm["counters"].get("cache.misses", 0) == 0


def test_warm_study_never_touches_the_pool(study_inputs, tmp_path,
                                           monkeypatch):
    dags, suite, emulator = study_inputs
    cache = ResultCache(tmp_path / "cache")
    cold = run_study(dags, [suite], emulator, workers=2, cache=cache)

    def _no_pool(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("warm study constructed a process pool")

    monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", _no_pool)
    warm = run_study(dags, [suite], emulator, workers=2, cache=cache)
    assert warm.records == cold.records


def test_empty_grid_parallel(study_inputs):
    _dags, suite, emulator = study_inputs
    result = run_study([], [suite], emulator, workers=4, chunk=4)
    assert result.records == []
    assert result.manifest is not None


def test_single_cell_parallel(study_inputs):
    dags, suite, emulator = study_inputs
    serial = run_study(
        dags[:1], [suite], emulator, algorithms=("hcpa",), workers=1
    )
    chunked = run_study(
        dags[:1], [suite], emulator, algorithms=("hcpa",), workers=4,
        chunk=4,
    )
    assert len(serial.records) == 1
    assert chunked.records == serial.records


def test_workers_clamped_to_cpu_count(study_inputs, monkeypatch):
    dags, suite, emulator = study_inputs
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 1)
    rec = Recorder.to_memory()
    with recording(rec):
        clamped = run_study(dags[:1], [suite], emulator, workers=8)
    assert rec.counters["runner.workers_clamped"] == 1
    serial = run_study(dags[:1], [suite], emulator, workers=1)
    assert clamped.records == serial.records


def test_workers_within_cpu_count_not_clamped(study_inputs, monkeypatch):
    dags, suite, emulator = study_inputs
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 64)
    rec = Recorder.to_memory()
    with recording(rec):
        run_study(dags[:1], [suite], emulator, workers=2)
    assert "runner.workers_clamped" not in rec.counters


class TestAbsorbEmptyWorkerExport:
    """A chunk whose cells all hit the cache ships an empty export.

    The planner satisfies cached cells in the parent, so a worker can
    legitimately return a payload with no records, no counters, no
    spans and a zero-run timeline slice.  Absorbing it must be a
    no-op — and must not disturb the run numbering of later slices.
    """

    @staticmethod
    def _empty_export():
        worker = Recorder(
            MemorySink(), timeline=Timeline(), profiler=Profiler()
        )
        return worker.export_state()

    def test_recorder_absorb_empty_export_is_noop(self):
        rec = Recorder(MemorySink(), timeline=Timeline(), profiler=Profiler())
        with recording(rec):
            rec.count("runner.cells", 2)
            with rec.span("study.cell"):
                pass
        before = (
            list(rec.sink.records),
            dict(rec.counters),
            rec.metrics()["spans"],
            timeline_lines(rec.timeline.records),
            rec.profiler.structure(),
        )
        rec.absorb(self._empty_export())
        after = (
            list(rec.sink.records),
            dict(rec.counters),
            rec.metrics()["spans"],
            timeline_lines(rec.timeline.records),
            rec.profiler.structure(),
        )
        assert after == before

    def test_timeline_absorb_empty_slice_keeps_run_numbering(self):
        parent = Timeline()
        parent.begin_run(dag="d0", algorithm="hcpa", model="m")
        parent.end_run(engine="object", makespan=1.0, tasks=0, xfers=0)

        # An all-cache-hit chunk: zero runs, no records.
        parent.absorb(Timeline().export_state())
        assert parent._run_seq == 1

        # The next real worker slice still lands at run 1, exactly as
        # if the empty slice had never been absorbed.
        worker = Timeline()
        worker.begin_run(dag="d1", algorithm="mcpa", model="m")
        worker.end_run(engine="object", makespan=2.0, tasks=0, xfers=0)
        parent.absorb(worker.export_state())
        runs = [
            r["run"] for r in parent.records if r.get("kind") == "run"
        ]
        assert runs == [0, 1]

    def test_recorder_absorb_empty_then_full_export(self):
        rec = Recorder(MemorySink(), timeline=Timeline())
        with recording(rec):
            rec.absorb(self._empty_export())
            worker = Recorder(MemorySink(), timeline=Timeline())
            worker.count("runner.cells", 1)
            worker.timeline.begin_run(dag="d", algorithm="hcpa", model="m")
            worker.timeline.end_run(
                engine="object", makespan=1.0, tasks=0, xfers=0
            )
            rec.absorb(worker.export_state())
        assert rec.counters["runner.cells"] == 1
        runs = [r["run"] for r in rec.timeline.records if r.get("kind") == "run"]
        assert runs == [0]


def test_live_telemetry_does_not_perturb_study(study_inputs):
    """Bit-identity with the live bus attached, serial and pooled.

    The telemetry channel is strictly observational; every comparable
    facet must equal the detached run's — and the bus itself must have
    seen every cell (6 cells: 3 dags x 2 algorithms).
    """
    from repro.obs.live import LiveTelemetry

    detached = {
        workers: _observed_study(study_inputs, workers=workers)
        for workers in (1, 2)
    }
    for workers in (1, 2):
        telemetry = LiveTelemetry(heartbeat_s=0.1).start()
        try:
            attached = _observed_study(
                study_inputs, workers=workers, telemetry=telemetry
            )
        finally:
            telemetry.close()
        for facet in ("records", "events", "counters", "span_counts",
                      "timeline", "profile"):
            assert attached[facet] == detached[workers][facet], (
                f"{facet} diverged with telemetry at workers={workers}"
            )
        snap = telemetry.snapshot()
        assert snap["study"]["total"] == 6
        assert snap["study"]["done"] == 6
        assert snap["phase"] == "done"


def test_live_telemetry_counts_cache_hits(study_inputs, tmp_path):
    from repro.obs.live import LiveTelemetry

    dags, suite, emulator = study_inputs
    cache = ResultCache(tmp_path / "cache")
    run_study(dags, [suite], emulator, cache=cache)  # populate
    telemetry = LiveTelemetry(heartbeat_s=0.1).start()
    try:
        warm = run_study(
            dags, [suite], emulator, workers=2, cache=cache,
            telemetry=telemetry,
        )
    finally:
        telemetry.close()
    assert warm.records
    snap = telemetry.snapshot()
    assert snap["study"]["done"] == 6
    assert snap["study"]["cache_hits"] == 6


class TestResolveChunk:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "7")
        assert resolve_chunk(3) == 3
        assert resolve_chunk(0) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "5")
        assert resolve_chunk(None) == 5

    def test_unset_or_blank_env_means_auto(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
        assert resolve_chunk() == 0
        monkeypatch.setenv(CHUNK_ENV_VAR, "  ")
        assert resolve_chunk() == 0

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "lots")
        with pytest.raises(ValueError, match="REPRO_CHUNK"):
            resolve_chunk()

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="chunk size"):
            resolve_chunk(-1)


def test_chunk_env_applies_to_study(study_inputs, monkeypatch):
    dags, suite, emulator = study_inputs
    serial = run_study(dags, [suite], emulator, workers=1)
    monkeypatch.setenv(CHUNK_ENV_VAR, "2")
    via_env = run_study(dags, [suite], emulator, workers=2)
    assert via_env.records == serial.records
