"""End-to-end integration tests: the paper's headline findings.

These assertions encode the *shape* of the paper's results (see
EXPERIMENTS.md for the full paper-vs-measured accounting):

* the analytical simulator's HCPA-vs-MCPA predictions are wrong for a
  large fraction of DAGs (paper: 59 % at n = 2000, 26 % at n = 3000);
* the profile-based simulator is nearly always right (2-3 / 27);
* the empirical simulator sits in between, with the n = 3000 outliers
  hurting it more (paper: 1 / 27 at n = 2000, 6 / 27 at n = 3000);
* simulation errors differ by orders of magnitude between the
  analytical and the refined simulators (Fig 8).
"""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def ctx(study_context):
    return study_context


class TestHeadlineSignFlips:
    def test_analytic_simulator_unreliable_at_2000(self, ctx):
        c = figures.figure1(ctx, n=2000)
        assert c.num_dags == 27
        # Paper: 16/27.  Shape requirement: a large fraction wrong.
        assert c.num_wrong >= 8

    def test_analytic_simulator_wrong_at_3000(self, ctx):
        c = figures.figure1(ctx, n=3000)
        # Paper: 7/27 (26 %).
        assert 3 <= c.num_wrong <= 12

    def test_profile_simulator_reliable(self, ctx):
        for n in (2000, 3000):
            c = figures.figure5(ctx, n=n)
            assert c.num_wrong <= 3  # paper: 2 and 3

    def test_empirical_simulator_between(self, ctx):
        c2000 = figures.figure7(ctx, n=2000)
        c3000 = figures.figure7(ctx, n=3000)
        assert c2000.num_wrong <= 8
        # The p=8/p=16 outliers make n=3000 harder for the regression
        # model (paper: 6/27, twice the profile simulator's errors).
        assert 3 <= c3000.num_wrong <= 9

    def test_refined_simulators_beat_analytical(self, ctx):
        analytic = (
            figures.figure1(ctx, n=2000).num_wrong
            + figures.figure1(ctx, n=3000).num_wrong
        )
        profile = (
            figures.figure5(ctx, n=2000).num_wrong
            + figures.figure5(ctx, n=3000).num_wrong
        )
        assert profile < analytic / 2

    def test_flips_concentrate_at_small_sim_differences(self, ctx):
        c = figures.figure1(ctx, n=2000)
        flipped = [abs(d.rel_sim) for d in c.dags if d.sign_flipped]
        kept = [abs(d.rel_sim) for d in c.dags if not d.sign_flipped]
        import numpy as np

        assert np.median(flipped) < np.median(kept)


class TestErrorMagnitudes:
    def test_figure8_ordering(self, ctx):
        f8 = figures.figure8(ctx)
        for alg in ("hcpa", "mcpa"):
            analytic = f8.median("analytic", alg)
            profile = f8.median("profile", alg)
            empirical = f8.median("empirical", alg)
            # Orders of magnitude: analytic >> empirical >= profile.
            assert analytic > 8 * profile
            assert analytic > 4 * empirical
            assert profile < empirical

    def test_profile_errors_under_ten_percent(self, ctx):
        # Paper: "under 10% error on average" for the profile simulator.
        f8 = figures.figure8(ctx)
        for alg in ("hcpa", "mcpa"):
            assert f8.boxes[("profile", alg)].mean < 10.0

    def test_analytic_errors_tens_of_percent(self, ctx):
        f8 = figures.figure8(ctx)
        for alg in ("hcpa", "mcpa"):
            assert f8.boxes[("analytic", alg)].median > 30.0


class TestWinnerNarrative:
    def test_hcpa_competitive_at_2000_under_profile_sim(self, ctx):
        # Paper (Fig 5): "HCPA produces shorter schedules than MCPA for
        # n = 2,000" — in our environment HCPA wins at least a large
        # minority of the 27 comparisons.
        c = figures.figure5(ctx, n=2000)
        assert c.challenger_experimental_wins >= 9

    def test_agreement_between_sim_and_exp_shapes(self, ctx):
        # For the profile simulator the relative makespans must be
        # strongly correlated between simulation and experiment.
        import numpy as np

        c = figures.figure5(ctx, n=2000)
        sims = np.array([d.rel_sim for d in c.dags])
        exps = np.array([d.rel_exp for d in c.dags])
        assert np.corrcoef(sims, exps)[0, 1] > 0.8
