"""Tests for the study runner."""

import pytest

from repro.dag.generator import DagParameters, generate_dag
from repro.experiments.runner import RunRecord, StudyResult, run_study
from repro.profiling.calibration import build_analytical_suite


@pytest.fixture(scope="module")
def mini_study(platform, emulator):
    dags = [
        (p, generate_dag(p))
        for p in (
            DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, seed=4),
            DagParameters(num_input_matrices=4, add_ratio=1.0, n=3000, seed=4),
        )
    ]
    suite = build_analytical_suite(platform)
    return run_study(dags, [suite], emulator)


class TestRunStudy:
    def test_record_count(self, mini_study):
        # 2 DAGs x 2 algorithms x 1 suite.
        assert len(mini_study) == 4

    def test_records_have_positive_makespans(self, mini_study):
        for rec in mini_study.records:
            assert rec.sim_makespan > 0
            assert rec.exp_makespan > 0
            assert rec.total_alloc >= 10  # ten tasks, >= 1 proc each

    def test_error_metric(self, mini_study):
        rec = mini_study.records[0]
        expected = abs(rec.sim_makespan - rec.exp_makespan) / rec.exp_makespan
        assert rec.error == pytest.approx(expected)
        assert rec.error_pct == pytest.approx(100 * expected)

    def test_select_filters(self, mini_study):
        hcpa = mini_study.select(algorithm="hcpa")
        assert len(hcpa) == 2
        assert all(r.algorithm == "hcpa" for r in hcpa)
        n3000 = mini_study.select(n=3000)
        assert len(n3000) == 2

    def test_record_lookup(self, mini_study):
        label = mini_study.records[0].dag_label
        rec = mini_study.record(label, "hcpa", "analytic")
        assert isinstance(rec, RunRecord)
        with pytest.raises(KeyError):
            mini_study.record("nope", "hcpa", "analytic")

    def test_dag_labels_ordered_unique(self, mini_study):
        labels = mini_study.dag_labels()
        assert len(labels) == len(set(labels)) == 2

    def test_custom_algorithm_list(self, platform, emulator):
        params = DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, seed=9)
        dags = [(params, generate_dag(params))]
        suite = build_analytical_suite(platform)
        study = run_study(dags, [suite], emulator, algorithms=("seq",))
        assert len(study) == 1
        assert study.records[0].algorithm == "seq"
