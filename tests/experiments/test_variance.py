"""Tests for the repeated-runs variance analysis (extension)."""

import pytest

from repro.experiments.variance import DagVariance, run_variance_study


class TestDagVariance:
    def test_stability_all_same_sign(self):
        d = DagVariance("x", 2000, rel_sim=0.1, rel_exp_runs=(0.2, 0.3, 0.1))
        assert d.winner_stability == 1.0
        assert not d.noise_dominated

    def test_stability_mixed_signs(self):
        d = DagVariance(
            "x", 2000, rel_sim=0.1, rel_exp_runs=(0.2, -0.1, 0.3, -0.2, 0.1)
        )
        assert d.winner_stability == pytest.approx(0.6)
        assert d.noise_dominated

    def test_flip_vs_mean(self):
        d = DagVariance("x", 2000, rel_sim=-0.1, rel_exp_runs=(0.2, 0.3))
        assert d.sign_flipped_vs_mean
        d2 = DagVariance("x", 2000, rel_sim=0.1, rel_exp_runs=(0.2, 0.3))
        assert not d2.sign_flipped_vs_mean

    def test_statistics(self):
        d = DagVariance("x", 2000, rel_sim=0.0, rel_exp_runs=(0.1, 0.3))
        assert d.rel_exp_mean == pytest.approx(0.2)
        assert d.rel_exp_std == pytest.approx(0.1)


class TestRunVarianceStudy:
    @pytest.fixture(scope="class")
    def study(self, study_context):
        dags = [d for d in study_context.dags if d[0].n == 2000][:6]
        return run_variance_study(
            dags, study_context.analytic_suite, study_context.emulator,
            runs=4,
        )

    def test_covers_all_dags_and_runs(self, study):
        assert len(study.dags) == 6
        assert all(len(d.rel_exp_runs) == 4 for d in study.dags)

    def test_runs_actually_vary(self, study):
        assert any(d.rel_exp_std > 0 for d in study.dags)

    def test_counters_consistent(self, study):
        assert 0 <= study.num_noise_dominated <= len(study.dags)
        assert study.num_model_dominated_flips <= study.num_flips_vs_mean

    def test_validation(self, study_context):
        with pytest.raises(ValueError):
            run_variance_study(
                study_context.dags[:2],
                study_context.analytic_suite,
                study_context.emulator,
                runs=1,
            )
        with pytest.raises(ValueError):
            run_variance_study(
                [],
                study_context.analytic_suite,
                study_context.emulator,
            )
