"""The parallel study runner must be indistinguishable from the serial one."""

from __future__ import annotations

import pytest

from repro.dag.generator import generate_paper_dags
from repro.obs.recorder import Recorder, recording
from repro.obs.sinks import MemorySink
from repro.obs.timeline import Timeline, timeline_lines
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.experiments.runner import run_study
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return dags, suite, emulator


def test_workers_must_be_positive(study_inputs):
    dags, suite, emulator = study_inputs
    with pytest.raises(ValueError):
        run_study(dags, [suite], emulator, workers=0)


def test_parallel_equals_serial_record_for_record(study_inputs):
    dags, suite, emulator = study_inputs
    serial = run_study(dags, [suite], emulator, workers=1)
    parallel = run_study(dags, [suite], emulator, workers=2)
    assert len(serial.records) == len(dags) * 2
    # Same records, same values, same order — not approximately: the
    # grid cells are deterministic and order-independent.
    assert serial.records == parallel.records


def test_parallel_merges_observability_deterministically(study_inputs):
    dags, suite, emulator = study_inputs
    recorders = []
    for workers in (1, 2):
        rec = Recorder.to_memory()
        with recording(rec):
            run_study(dags, [suite], emulator, workers=workers)
        recorders.append(rec)
    serial, parallel = recorders

    # runner.workers_clamped fires whenever the requested pool exceeds
    # the host's cores — true for the workers=2 leg on 1-core runners —
    # and is the one counter allowed to differ between the modes.
    def counters(rec_obj):
        return {
            k: v
            for k, v in rec_obj.metrics()["counters"].items()
            if k != "runner.workers_clamped"
        }

    assert counters(serial) == counters(parallel)
    # The per-record study events arrive in grid submission order in
    # both modes.
    for rec_obj in (serial, parallel):
        assert rec_obj.sink.records  # something was recorded
    serial_events = [
        r for r in serial.sink.records if r.get("name") == "study.record"
    ]
    parallel_events = [
        r for r in parallel.sink.records if r.get("name") == "study.record"
    ]
    assert serial_events == parallel_events
    # Span aggregates merge: same span names, same counts (durations
    # are wall-clock and may differ).
    s_spans = serial.metrics()["spans"]
    p_spans = parallel.metrics()["spans"]
    assert set(s_spans) == set(p_spans)
    for name in s_spans:
        assert s_spans[name]["count"] == p_spans[name]["count"]


def test_parallel_timeline_matches_serial_byte_for_byte(study_inputs):
    dags, suite, emulator = study_inputs
    timelines = []
    for workers in (1, 2):
        rec = Recorder(timeline=Timeline())
        with recording(rec):
            run_study(dags, [suite], emulator, workers=workers)
        timelines.append(rec.timeline)
    serial, parallel = timelines
    assert serial.run_count == parallel.run_count > 0
    # Worker timelines are absorbed in grid submission order and their
    # run ids renumbered, so the merged timeline is byte-identical to
    # serial emission — simulated time has no wall-clock jitter.
    assert timeline_lines(parallel.records) == timeline_lines(serial.records)


def test_absorb_determinism_with_interleaved_spans_and_events():
    # Workers interleave events, counters, spans, and timeline runs;
    # absorbing their payloads in a fixed order must always produce the
    # same merged state regardless of how each worker interleaved them.
    def worker_state(idx):
        rec = Recorder(MemorySink(), timeline=Timeline())
        rec.event("cell.start", idx=idx)
        with rec.span("cell.work", idx=idx):
            rec.timeline.begin_run(dag=f"d{idx}", algorithm="hcpa")
            rec.timeline.task(0, (0,), 0.0, 1.0 + idx, 0.0)
            rec.timeline.end_run(
                engine="object", makespan=1.0 + idx, tasks=1, xfers=0
            )
            rec.count("cells")
        rec.event("cell.done", idx=idx)
        return rec.export_state()

    states = [worker_state(i) for i in range(3)]
    parents = []
    for _ in range(2):
        parent = Recorder(MemorySink(), timeline=Timeline())
        for state in states:
            parent.absorb(state)
        parents.append(parent)
    first, second = parents
    assert first.sink.records == second.sink.records
    assert [r["idx"] for r in first.sink.records if r["name"] == "cell.start"] \
        == [0, 1, 2]
    assert first.counters["cells"] == 3
    assert first.spans["cell.work"].count == 3
    assert timeline_lines(first.timeline.records) == timeline_lines(
        second.timeline.records
    )
    runs = [r for r in first.timeline.records if r["kind"] == "run"]
    assert [r["run"] for r in runs] == [0, 1, 2]
    assert [r["dag"] for r in runs] == ["d0", "d1", "d2"]


def test_parallel_study_attaches_manifest(study_inputs):
    dags, suite, emulator = study_inputs
    result = run_study(dags, [suite], emulator, workers=2)
    assert result.manifest is not None
    assert result.manifest.num_records == len(result.records)
