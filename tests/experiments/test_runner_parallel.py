"""The parallel study runner must be indistinguishable from the serial one."""

from __future__ import annotations

import pytest

from repro.dag.generator import generate_paper_dags
from repro.obs.recorder import Recorder, recording
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.experiments.runner import run_study
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return dags, suite, emulator


def test_workers_must_be_positive(study_inputs):
    dags, suite, emulator = study_inputs
    with pytest.raises(ValueError):
        run_study(dags, [suite], emulator, workers=0)


def test_parallel_equals_serial_record_for_record(study_inputs):
    dags, suite, emulator = study_inputs
    serial = run_study(dags, [suite], emulator, workers=1)
    parallel = run_study(dags, [suite], emulator, workers=2)
    assert len(serial.records) == len(dags) * 2
    # Same records, same values, same order — not approximately: the
    # grid cells are deterministic and order-independent.
    assert serial.records == parallel.records


def test_parallel_merges_observability_deterministically(study_inputs):
    dags, suite, emulator = study_inputs
    recorders = []
    for workers in (1, 2):
        rec = Recorder.to_memory()
        with recording(rec):
            run_study(dags, [suite], emulator, workers=workers)
        recorders.append(rec)
    serial, parallel = recorders
    assert serial.metrics()["counters"] == parallel.metrics()["counters"]
    # The per-record study events arrive in grid submission order in
    # both modes.
    for rec_obj in (serial, parallel):
        assert rec_obj.sink.records  # something was recorded
    serial_events = [
        r for r in serial.sink.records if r.get("name") == "study.record"
    ]
    parallel_events = [
        r for r in parallel.sink.records if r.get("name") == "study.record"
    ]
    assert serial_events == parallel_events
    # Span aggregates merge: same span names, same counts (durations
    # are wall-clock and may differ).
    s_spans = serial.metrics()["spans"]
    p_spans = parallel.metrics()["spans"]
    assert set(s_spans) == set(p_spans)
    for name in s_spans:
        assert s_spans[name]["count"] == p_spans[name]["count"]


def test_parallel_study_attaches_manifest(study_inputs):
    dags, suite, emulator = study_inputs
    result = run_study(dags, [suite], emulator, workers=2)
    assert result.manifest is not None
    assert result.manifest.num_records == len(result.records)
