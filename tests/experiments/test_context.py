"""Tests for the StudyContext wiring and caching."""

import pytest

from repro.experiments.context import StudyContext


class TestStudyContext:
    def test_platform_and_emulator_wiring(self, study_context):
        assert study_context.platform.num_nodes == 32
        assert study_context.emulator.platform is study_context.platform

    def test_dags_are_table1(self, study_context):
        assert len(study_context.dags) == 54

    def test_components_cached(self, study_context):
        assert study_context.platform is study_context.platform
        assert study_context.dags is study_context.dags
        assert study_context.analytic_suite is study_context.analytic_suite

    def test_suite_lookup(self, study_context):
        assert study_context.suite("analytic") is study_context.analytic_suite
        assert study_context.suite("profile") is study_context.profile_suite
        assert (
            study_context.suite("empirical") is study_context.empirical_suite
        )

    def test_unknown_suite_rejected(self, study_context):
        with pytest.raises(ValueError, match="unknown simulator suite"):
            study_context.suite("neural")

    def test_study_caching_per_suite(self, study_context):
        a = study_context.study("analytic")
        b = study_context.study("analytic")
        # Records are reused, not recomputed (same underlying objects).
        assert a.records[0] is b.records[0]

    def test_study_merging(self, study_context):
        merged = study_context.study("analytic", "profile")
        simulators = {r.simulator for r in merged.records}
        assert simulators == {"analytic", "profile"}
        # 54 DAGs x 2 algorithms x 2 suites.
        assert len(merged) == 54 * 2 * 2

    def test_full_study_covers_three_simulators(self, study_context):
        full = study_context.full_study()
        assert {r.simulator for r in full.records} == {
            "analytic", "profile", "empirical",
        }

    def test_different_seeds_produce_different_worlds(self):
        a = StudyContext(seed=100)
        b = StudyContext(seed=101)
        ga = a.dags[0][1]
        gb = b.dags[0][1]
        assert ga.to_dict() != gb.to_dict() or (
            a.emulator.kernels.mean_time("matmul", 2000, 4)
            != b.emulator.kernels.mean_time("matmul", 2000, 4)
        )
