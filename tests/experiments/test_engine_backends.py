"""Studies must not depend on the simulation engine backend.

``run_study(engine="array")`` has to reproduce the object-engine study
exactly — records, full simulated and emulated traces, ``engine.*``
observability counters, cache entries — under serial and parallel
execution and across warm-cache replays.  Everything here is exact
(``==`` on records and float fields), because cached results are
engine-agnostic by design: either backend may replay the other's run.
"""

from __future__ import annotations

import pytest

from repro.dag.generator import generate_paper_dags
from repro.cache.result_cache import ResultCache
from repro.experiments.runner import run_study
from repro.obs.recorder import Recorder, recording
from repro.obs.timeline import Timeline, timeline_lines
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling import SchedulingCosts, schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return platform, dags, suite, emulator


def run_with_counters(study_inputs, **kwargs):
    _platform, dags, suite, emulator = study_inputs
    rec = Recorder.to_memory()
    with recording(rec):
        result = run_study(dags, [suite], emulator, **kwargs)
    counters = {
        k: v
        for k, v in rec.metrics()["counters"].items()
        if k.startswith("engine.")
    }
    return result, counters


def test_study_records_and_counters_match_across_backends(study_inputs):
    obj, obj_counters = run_with_counters(study_inputs, engine="object")
    arr, arr_counters = run_with_counters(study_inputs, engine="array")
    assert obj.records == arr.records
    # Not just the same results: the same amount of engine work — same
    # steps, solver calls, actions, completions.
    assert obj_counters == arr_counters
    assert obj_counters["engine.steps"] > 0


def test_parallel_array_study_equals_serial_object_study(study_inputs):
    serial, serial_counters = run_with_counters(
        study_inputs, engine="object", workers=1
    )
    parallel, parallel_counters = run_with_counters(
        study_inputs, engine="array", workers=2
    )
    assert serial.records == parallel.records
    assert serial_counters == parallel_counters


def test_full_traces_match_across_backends(study_inputs):
    # Beyond the study records: every task and redistribution record of
    # both the simulated and the emulated trace, field for field.
    platform, dags, suite, emulator = study_inputs
    simulators = {
        kind: ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=kind,
        )
        for kind in ("object", "array")
    }
    compared = 0
    for _params, graph in dags:
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        for algorithm in ("hcpa", "mcpa"):
            schedule = schedule_dag(graph, costs, algorithm)
            sim_obj = simulators["object"].run(graph, schedule)
            sim_arr = simulators["array"].run(graph, schedule)
            assert sim_arr == sim_obj  # frozen dataclasses: exact floats
            emu_obj = emulator.execute(graph, schedule, engine="object")
            emu_arr = emulator.execute(graph, schedule, engine="array")
            assert emu_arr == emu_obj
            compared += 1
    assert compared == len(dags) * 2


def test_timelines_match_byte_for_byte_across_backends(study_inputs):
    # The simulated-time timeline is part of the engine contract: both
    # backends must emit the same records in the same order with the
    # same floats — task lifetimes, redistributions, allocation steps,
    # and per-action share changes alike.
    _platform, dags, suite, emulator = study_inputs
    timelines = {}
    for kind in ("object", "array"):
        rec = Recorder(timeline=Timeline())
        with recording(rec):
            run_study(dags, [suite], emulator, engine=kind)
        timelines[kind] = rec.timeline
    obj, arr = timelines["object"], timelines["array"]
    for counts in (obj.counts, arr.counts):
        assert counts["task"] > 0
        assert counts["xfer"] > 0
        assert counts["share"] > 0
        assert counts["alloc"] > 0
    assert obj.engines == {"object"} and arr.engines == {"array"}
    # Masking the engine tag (carried only by the trailing run records)
    # must leave the two timelines byte-identical.
    assert timeline_lines(arr.records, mask_engine=True) == timeline_lines(
        obj.records, mask_engine=True
    )
    # And the engine tag is the *only* difference even unmasked.
    assert sum(
        a != b
        for a, b in zip(
            timeline_lines(obj.records), timeline_lines(arr.records)
        )
    ) == sum(r["kind"] == "run" for r in obj.records)


def test_simulate_batch_matches_individual_runs(study_inputs, tmp_path):
    # The batch API reuses one arena across cells; the traces must be
    # exactly the per-call ones, on both backends and through a cache.
    platform, dags, suite, _emulator = study_inputs
    runs = []
    for _params, graph in dags:
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        runs.append((graph, schedule_dag(graph, costs, "hcpa")))

    def make(kind):
        return ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=kind,
        )

    individual = [make("object").run(g, s) for g, s in runs]
    assert make("object").simulate_batch(runs) == individual
    assert make("array").simulate_batch(runs) == individual
    cache = ResultCache(tmp_path / "cache")
    assert make("array").simulate_batch(runs, cache=cache) == individual
    # And replayed from the cache on the other backend.
    assert make("object").simulate_batch(runs, cache=cache) == individual


def test_warm_cache_replays_across_backends(study_inputs, tmp_path):
    # A cache populated by one backend must serve the other verbatim:
    # engine choice is deliberately absent from the cache key.
    _platform, dags, suite, emulator = study_inputs
    cache = ResultCache(tmp_path / "cache")
    cold, _ = run_with_counters(study_inputs, engine="object", cache=cache)
    rec = Recorder.to_memory()
    with recording(rec):
        warm = run_study(dags, [suite], emulator, cache=cache, engine="array")
    assert warm.records == cold.records
    counters = rec.metrics()["counters"]
    assert counters["cache.hits"] > 0
    assert counters.get("cache.misses", 0) == 0


def test_warm_cache_replay_with_parallel_workers(study_inputs, tmp_path):
    _platform, dags, suite, emulator = study_inputs
    cache = ResultCache(tmp_path / "cache")
    cold = run_study(
        dags, [suite], emulator, cache=cache, engine="array", workers=2
    )
    warm = run_study(
        dags, [suite], emulator, cache=cache, engine="object", workers=2
    )
    assert warm.records == cold.records
