"""Bench history store and rolling-baseline regression checks."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench_history import (
    DEFAULT_WINDOW,
    append_history,
    check_against_history,
    default_history_path,
    history_entry,
    host_fingerprint,
    load_history,
    rolling_baseline,
)


def _payload(stages: dict[str, float], *, num_dags=3, engine="object",
             host=None):
    payload = {
        "created": "2026-08-07T00:00:00+0000",
        "version": "1.6.0",
        "config": {"num_dags": num_dags, "engine": engine, "repeat": 1},
        "stages": {
            name: {"seconds": seconds, "units": 1, "seconds_per_unit": seconds}
            for name, seconds in stages.items()
        },
    }
    if host is not None:
        payload["host"] = host
    return payload


_LAPTOP = {"cpus": 8, "platform": "Linux-x86_64", "python": "3.12.1"}
_CI_BOX = {"cpus": 2, "platform": "Linux-x86_64", "python": "3.12.1"}


def test_history_entry_flattens_payload():
    entry = history_entry(_payload({"scheduling": 1.5, "simulation": 0.5}))
    assert entry["num_dags"] == 3
    assert entry["engine"] == "object"
    assert entry["version"] == "1.6.0"
    assert entry["stages"] == {"scheduling": 1.5, "simulation": 0.5}


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "nested" / "hist.jsonl"
    for seconds in (1.0, 2.0, 3.0):
        append_history(_payload({"scheduling": seconds}), path)
    entries = load_history(path)
    assert [e["stages"]["scheduling"] for e in entries] == [1.0, 2.0, 3.0]
    # Entries are one JSON object per line, key-sorted (diff-friendly).
    first = path.read_text().splitlines()[0]
    assert list(json.loads(first)) == sorted(json.loads(first))


def test_load_missing_file_is_empty(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


def test_load_rejects_corrupt_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text('{"stages": {"a": 1.0}}\n{broken\n')
    with pytest.raises(ValueError, match="line 2"):
        load_history(path)
    path.write_text('{"no_stages": 1}\n')
    with pytest.raises(ValueError, match="missing 'stages'"):
        load_history(path)


def test_rolling_baseline_is_windowed_median(tmp_path):
    path = tmp_path / "hist.jsonl"
    # 7 entries; the window keeps the newest DEFAULT_WINDOW of them.
    for seconds in (99.0, 98.0, 1.0, 2.0, 3.0, 4.0, 5.0):
        append_history(_payload({"scheduling": seconds}), path)
    baseline, used = rolling_baseline(
        load_history(path), _payload({"scheduling": 1.0})
    )
    assert used == DEFAULT_WINDOW
    assert baseline == {"scheduling": 3.0}  # median of 1..5, outliers gone


def test_rolling_baseline_skips_incompatible_entries(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_history(_payload({"scheduling": 1.0}, num_dags=3), path)
    append_history(_payload({"scheduling": 50.0}, num_dags=12), path)
    append_history(_payload({"scheduling": 60.0}, engine="array"), path)
    entries = load_history(path)
    baseline, used = rolling_baseline(entries, _payload({"scheduling": 1.0}))
    assert (baseline, used) == ({"scheduling": 1.0}, 1)
    # A payload matching no entry gets no baseline at all.
    none, zero = rolling_baseline(
        entries, _payload({"scheduling": 1.0}, num_dags=99)
    )
    assert (none, zero) == ({}, 0)


def test_rolling_baseline_requires_stage_in_every_entry(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_history(_payload({"scheduling": 1.0}), path)
    append_history(_payload({"scheduling": 1.0, "new_stage": 9.0}), path)
    baseline, _ = rolling_baseline(
        load_history(path), _payload({"scheduling": 1.0, "new_stage": 9.0})
    )
    # new_stage appeared mid-history: no stable median yet.
    assert baseline == {"scheduling": 1.0}


def test_check_passes_on_unchanged_timings(tmp_path):
    path = tmp_path / "hist.jsonl"
    stages = {"scheduling": 1.0, "simulation": 0.5}
    for _ in range(3):
        append_history(_payload(stages), path)
    comparisons = check_against_history(
        _payload(stages), load_history(path), tolerance=0.10
    )
    assert comparisons is not None
    assert {c.stage for c in comparisons} == set(stages)
    assert not any(c.regressed for c in comparisons)


def test_check_fails_on_synthetic_2x_slowdown(tmp_path):
    """The acceptance fixture: a uniform 2x slowdown must regress."""
    path = tmp_path / "hist.jsonl"
    stages = {"scheduling": 1.0, "simulation": 0.5, "study_cold": 2.0}
    for _ in range(3):
        append_history(_payload(stages), path)
    slowed = _payload({name: 2.0 * s for name, s in stages.items()})
    comparisons = check_against_history(
        slowed, load_history(path), tolerance=0.10
    )
    regressed = {c.stage for c in comparisons if c.regressed}
    assert regressed == set(stages)
    for c in comparisons:
        assert c.ratio == pytest.approx(2.0)


def test_check_returns_none_without_compatible_history(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_history(_payload({"scheduling": 1.0}, num_dags=12), path)
    assert check_against_history(
        _payload({"scheduling": 1.0}, num_dags=3), load_history(path)
    ) is None
    assert check_against_history(_payload({"scheduling": 1.0}), []) is None


def test_host_fingerprint_reduces_host_metadata():
    assert host_fingerprint(_LAPTOP) == (8, "Linux-x86_64", "3.12.1")
    # Missing metadata (pre-host-field histories) reduces to None —
    # and two Nones compare equal, so old entries still baseline old
    # payloads.
    assert host_fingerprint(None) is None
    assert host_fingerprint("not a dict") is None


def test_rolling_baseline_filters_to_matching_host(tmp_path):
    """Entries from a different machine never form the baseline."""
    path = tmp_path / "hist.jsonl"
    append_history(_payload({"scheduling": 9.0}, host=_CI_BOX), path)
    append_history(_payload({"scheduling": 1.0}, host=_LAPTOP), path)
    baseline, used = rolling_baseline(
        load_history(path), _payload({"scheduling": 1.0}, host=_LAPTOP)
    )
    assert (baseline, used) == ({"scheduling": 1.0}, 1)


def test_host_vs_hostless_entries_are_incompatible(tmp_path):
    """A pre-metadata entry cannot baseline a host-stamped payload."""
    path = tmp_path / "hist.jsonl"
    append_history(_payload({"scheduling": 9.0}), path)  # no host field
    entries = load_history(path)
    assert check_against_history(
        _payload({"scheduling": 1.0}, host=_LAPTOP), entries
    ) is None
    # Symmetrically, a host-stamped entry says nothing about a
    # hostless payload; both-missing still matches (the legacy case).
    append_history(_payload({"scheduling": 2.0}, host=_LAPTOP), path)
    baseline, used = rolling_baseline(
        load_history(path), _payload({"scheduling": 1.0})
    )
    assert (baseline, used) == ({"scheduling": 9.0}, 1)


def test_default_history_path_is_in_checkout():
    path = default_history_path()
    assert path.name == "bench_history.jsonl"
    assert path.parent.name == "history"
    assert path.parent.parent.name == "benchmarks"
