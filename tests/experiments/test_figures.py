"""Tests for the per-figure reproduction functions (fast paths)."""

import pytest

from repro.experiments import figures


class TestTable1:
    def test_54_instances(self, study_context):
        t1 = figures.table1(study_context)
        assert t1.total_instances == 54

    def test_summaries_consistent(self, study_context):
        t1 = figures.table1(study_context)
        for d in t1.dags:
            assert d.num_tasks == 10
            assert d.n in (2000, 3000)
            assert 0 <= d.num_additions <= 10
            assert 1 <= d.width <= 10
            assert d.levels >= 1

    def test_ratio_grid_represented(self, study_context):
        t1 = figures.table1(study_context)
        counts = {d.num_additions for d in t1.dags}
        assert {5, 8, 10} <= counts  # ratios 0.5 / 0.75 / 1.0


class TestFigure2:
    def test_java_errors_fluctuate_up_to_large_values(self, study_context):
        f2 = figures.figure2(study_context)
        assert f2.max_java_error() > 0.4  # paper: up to ~60 %
        assert len(f2.java_errors) == 2 * 32

    def test_cray_errors_small(self, study_context):
        f2 = figures.figure2(study_context)
        # Paper: "oscillates at about 10% and goes up to 20%".
        assert 0.05 < f2.mean_cray_error() < 0.15
        assert f2.max_cray_error() <= 0.25
        assert len(f2.cray_errors) == 3 * 32

    def test_java_model_underestimates(self, study_context):
        # The Java kernels run far from peak: the analytical model is a
        # systematic underestimate, so errors are bounded away from zero
        # on average.
        import numpy as np

        f2 = figures.figure2(study_context)
        assert np.mean(list(f2.java_errors.values())) > 0.2


class TestFigure3:
    def test_range_and_non_monotonicity(self, study_context):
        f3 = figures.figure3(study_context, trials=20)
        lo, hi = f3.bounds()
        assert 0.5 < lo < 1.0   # paper Fig 3: ~0.8 at the low end
        assert 1.2 < hi < 2.0   # ~1.6 at the high end
        assert not f3.is_monotone

    def test_covers_whole_cluster(self, study_context):
        f3 = figures.figure3(study_context, trials=5)
        assert set(f3.overheads) == set(range(1, 33))


class TestFigure4:
    def test_destination_dominates(self, study_context):
        f4 = figures.figure4(study_context, trials=2)
        dst_slope, src_slope = f4.dst_slope_vs_src_slope()
        assert dst_slope > 3 * abs(src_slope)
        assert dst_slope == pytest.approx(0.00788, rel=0.4)

    def test_grid_complete(self, study_context):
        f4 = figures.figure4(study_context, trials=1)
        assert len(f4.grid) == 32 * 32


class TestFigure6:
    def test_outliers_wreck_the_naive_fit(self, study_context):
        f6 = figures.figure6(study_context, n=3000)
        # Relative RMSE over the clean measured curve: the
        # outlier-avoiding plan must fit better than the power-of-two
        # plan, which gets dragged down by p = 8/16 and even predicts
        # negative execution times near the regime boundary.
        assert f6.final_rmse < f6.naive_rmse
        assert f6.naive_fit_goes_nonphysical()
        assert not any(
            f6.final_fit(p) <= 0 for p in range(2, 17)
        )

    def test_final_fit_close_to_table2(self, study_context):
        f6 = figures.figure6(study_context, n=3000)
        assert f6.final_fit.a == pytest.approx(537.91, rel=0.25)

    def test_measured_curve_has_the_outliers(self, study_context):
        f6 = figures.figure6(study_context, n=3000)
        # p=8 sits well above the hyperbola through its neighbours.
        neighbour_mean = (f6.measured[7] + f6.measured[9]) / 2
        assert f6.measured[8] > 1.2 * neighbour_mean


class TestTable2:
    def test_all_rows_present(self, study_context):
        t2 = figures.table2(study_context)
        assert len(t2.rows) == 8

    def test_fits_in_right_regime(self, study_context):
        t2 = figures.table2(study_context)
        mm3000 = t2.row("matmul n=3000 hyp")
        assert mm3000.fitted[0] == pytest.approx(mm3000.paper[0], rel=0.35)
        startup = t2.row("task startup")
        assert startup.fitted[0] == pytest.approx(0.03, abs=0.02)
        redist = t2.row("redistribution startup")
        assert redist.fitted[1] == pytest.approx(0.10858, rel=0.5)

    def test_unknown_row_raises(self, study_context):
        t2 = figures.table2(study_context)
        with pytest.raises(KeyError):
            t2.row("nonexistent")
