"""Cached study re-execution must be invisible in the results.

Acceptance property of the result cache: records, traces and makespans
are bit-identical between a cold run (populating the cache), a warm
re-run (replaying from it) and a cache-disabled run — serially and
under a worker pool — while the warm run does no recomputation.
"""

from __future__ import annotations

import pytest

from repro.cache import ResultCache, canonical_hash, schedule_fingerprint
from repro.dag.generator import generate_paper_dags
from repro.experiments.runner import run_study
from repro.obs.recorder import Recorder, recording
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import (
    build_analytical_suite,
    build_empirical_suite,
    build_profile_suite,
)
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def study_inputs():
    platform = bayreuth_cluster(8)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:3]
    return dags, suite, emulator


def _run(study_inputs, cache, workers=1):
    dags, suite, emulator = study_inputs
    recorder = Recorder.to_memory()
    with recording(recorder):
        result = run_study(
            dags, [suite], emulator, workers=workers, cache=cache
        )
    return result, recorder.metrics()["counters"]


class TestStudyEquivalence:
    def test_cold_warm_disabled_all_identical(self, study_inputs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        baseline, _ = _run(study_inputs, cache=None)
        cold, cold_counters = _run(study_inputs, cache=cache)
        warm, warm_counters = _run(study_inputs, cache=cache)

        # RunRecord is a frozen dataclass: == is field-for-field, so
        # this compares every makespan bit-identically.
        assert cold.records == baseline.records
        assert warm.records == baseline.records

        assert cold_counters["cache.misses"] > 0
        assert "cache.hits" not in cold_counters
        assert warm_counters["cache.hits"] == cold_counters["cache.misses"]
        assert "cache.misses" not in warm_counters

    def test_warm_replay_identical_under_worker_pool(
        self, study_inputs, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        baseline, _ = _run(study_inputs, cache=None)
        # Cold under the pool: workers share the store via atomic writes.
        cold, _ = _run(study_inputs, cache=cache, workers=2)
        warm, warm_counters = _run(study_inputs, cache=cache, workers=2)
        assert cold.records == baseline.records
        assert warm.records == baseline.records
        assert warm_counters["cache.hits"] > 0
        assert "cache.misses" not in warm_counters

    def test_per_layer_counters_cover_all_three_phases(
        self, study_inputs, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        _run(study_inputs, cache=cache)
        _, warm_counters = _run(study_inputs, cache=cache)
        dags, _suite, _emulator = study_inputs
        cells = len(dags) * 2  # two algorithms
        assert warm_counters["cache.schedule.hits"] == cells
        # Each cell caches one simulated and one emulated trace.
        assert warm_counters["cache.simulation.hits"] == 2 * cells


class TestPhaseLevelReplay:
    def test_schedule_replay_is_bit_identical(self, study_inputs, tmp_path):
        dags, suite, emulator = study_inputs
        _params, graph = dags[0]
        platform = emulator.platform
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        fresh = schedule_dag(graph, costs, "hcpa")
        cache = ResultCache(tmp_path / "cache")
        cold = schedule_dag(graph, costs, "hcpa", cache=cache)
        warm = schedule_dag(graph, costs, "hcpa", cache=cache)
        for replay in (cold, warm):
            assert canonical_hash(
                schedule_fingerprint(replay)
            ) == canonical_hash(schedule_fingerprint(fresh))
            assert replay.makespan_estimate == fresh.makespan_estimate

    def test_simulation_replay_is_bit_identical(self, study_inputs, tmp_path):
        dags, suite, emulator = study_inputs
        _params, graph = dags[0]
        platform = emulator.platform
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        schedule = schedule_dag(graph, costs, "mcpa")
        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        fresh = simulator.run(graph, schedule)
        cache = ResultCache(tmp_path / "cache")
        cold = simulator.run_cached(graph, schedule, cache)
        warm = simulator.run_cached(graph, schedule, cache)
        # SimulationTrace is a dataclass of frozen per-task/per-edge
        # records: == compares the full trace, not just the makespan.
        assert cold == fresh
        assert warm == fresh


class TestCalibrationLayer:
    def test_profile_suite_is_memoised(self, study_inputs, tmp_path):
        _dags, _suite, emulator = study_inputs
        cache = ResultCache(tmp_path / "cache")
        recorder = Recorder.to_memory()
        kwargs = dict(
            sizes=(2000,),
            kernel_trials=1,
            startup_trials=2,
            redistribution_trials=1,
        )
        with recording(recorder):
            cold = build_profile_suite(emulator, cache=cache, **kwargs)
            warm = build_profile_suite(emulator, cache=cache, **kwargs)
        counters = recorder.metrics()["counters"]
        assert counters["cache.calibration.misses"] == 1
        assert counters["cache.calibration.hits"] == 1
        assert dict(warm.task_model.items()) == dict(cold.task_model.items())

    def test_different_measurement_params_miss(self, study_inputs, tmp_path):
        _dags, _suite, emulator = study_inputs
        cache = ResultCache(tmp_path / "cache")
        recorder = Recorder.to_memory()
        with recording(recorder):
            build_profile_suite(
                emulator, cache=cache, sizes=(2000,), kernel_trials=1,
                startup_trials=2, redistribution_trials=1,
            )
            build_profile_suite(
                emulator, cache=cache, sizes=(2000,), kernel_trials=2,
                startup_trials=2, redistribution_trials=1,
            )
        counters = recorder.metrics()["counters"]
        assert counters["cache.calibration.misses"] == 2
        assert "cache.calibration.hits" not in counters

    def test_empirical_suite_is_memoised(self, study_inputs, tmp_path):
        _dags, _suite, emulator = study_inputs
        cache = ResultCache(tmp_path / "cache")
        recorder = Recorder.to_memory()
        kwargs = dict(
            sizes=(2000,),
            kernel_trials=1,
            startup_trials=2,
            redistribution_trials=1,
        )
        with recording(recorder):
            cold = build_empirical_suite(emulator, cache=cache, **kwargs)
            warm = build_empirical_suite(emulator, cache=cache, **kwargs)
        counters = recorder.metrics()["counters"]
        assert counters["cache.calibration.misses"] == 1
        assert counters["cache.calibration.hits"] == 1
        assert warm.startup_model.fit == cold.startup_model.fit


class TestCellErrors:
    def test_record_keyerror_names_the_missing_cell(self, study_inputs):
        dags, suite, emulator = study_inputs
        study, _ = _run(study_inputs, cache=None)
        with pytest.raises(KeyError) as err:
            study.record("no-such-dag", "hcpa", "analytic")
        message = str(err.value)
        assert "dag='no-such-dag'" in message
        assert "algorithm='hcpa'" in message
        assert "simulator='analytic'" in message
        # ... and says what the study does hold.
        assert "analytic" in message

    def test_strict_select_names_the_missing_filters(self, study_inputs):
        study, _ = _run(study_inputs, cache=None)
        assert study.select(simulator="profile") == []
        with pytest.raises(KeyError, match="simulator='profile'"):
            study.select(simulator="profile", strict=True)
