"""Tests for the testbed's hypothetical-machine scaling knobs."""

import numpy as np
import pytest

from repro.testbed.tgrid import TGridEmulator


class TestScalingKnobs:
    def test_kernel_scale_halves_measurements(self, platform):
        base = TGridEmulator(platform, seed=3, with_noise=False)
        fast = TGridEmulator(
            platform, seed=3, with_noise=False, kernel_time_scale=0.5
        )
        t_base = np.mean(base.measure_kernel("matmul", 2000, 4, 3))
        t_fast = np.mean(fast.measure_kernel("matmul", 2000, 4, 3))
        assert t_fast == pytest.approx(0.5 * t_base)

    def test_startup_scale(self, platform):
        base = TGridEmulator(platform, seed=3, with_noise=False)
        snappy = TGridEmulator(
            platform, seed=3, with_noise=False, startup_scale=0.25
        )
        assert np.mean(snappy.measure_startup(8, 4)) == pytest.approx(
            0.25 * np.mean(base.measure_startup(8, 4))
        )

    def test_redistribution_scale(self, platform):
        base = TGridEmulator(platform, seed=3, with_noise=False)
        snappy = TGridEmulator(
            platform, seed=3, with_noise=False, redistribution_scale=0.5
        )
        assert np.mean(
            snappy.measure_redistribution_overhead(4, 8, 2)
        ) == pytest.approx(
            0.5 * np.mean(base.measure_redistribution_overhead(4, 8, 2))
        )

    def test_execution_reflects_scaling(self, platform, small_dag):
        from repro.models.analytical import AnalyticalTaskModel
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag

        costs = SchedulingCosts(
            small_dag, platform, AnalyticalTaskModel(platform)
        )
        sched = schedule_dag(small_dag, costs, "mcpa")
        base = TGridEmulator(platform, seed=3, with_noise=False)
        fast = TGridEmulator(
            platform, seed=3, with_noise=False,
            kernel_time_scale=0.5, startup_scale=0.5,
            redistribution_scale=0.5,
        )
        m_base = base.makespan(small_dag, sched)
        m_fast = fast.makespan(small_dag, sched)
        # Everything scaled by half except network transfers: close to
        # but not exactly half.
        assert 0.45 * m_base < m_fast < 0.65 * m_base

    def test_invalid_scales_rejected(self, platform):
        with pytest.raises(ValueError):
            TGridEmulator(platform, kernel_time_scale=0.0)
        with pytest.raises(ValueError):
            TGridEmulator(platform, startup_scale=-1.0)
