"""Tests for the testbed's noise helpers."""

import numpy as np
import pytest

from repro.testbed.noise import lognormal_noise, structural_factor, structural_uniform


class TestStructuralFactor:
    def test_deterministic(self):
        a = structural_factor(1, 0.2, "kernel", "matmul", 2000, 4)
        b = structural_factor(1, 0.2, "kernel", "matmul", 2000, 4)
        assert a == b

    def test_bounded(self):
        for p in range(1, 50):
            f = structural_factor(3, 0.25, "x", p)
            assert 0.75 <= f <= 1.25

    def test_labels_decorrelate(self):
        values = {structural_factor(3, 0.25, "x", p) for p in range(20)}
        assert len(values) == 20

    def test_zero_amplitude_is_identity(self):
        assert structural_factor(3, 0.0, "x") == 1.0

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(ValueError):
            structural_factor(3, 1.0, "x")
        with pytest.raises(ValueError):
            structural_factor(3, -0.1, "x")


class TestStructuralUniform:
    def test_range(self):
        for i in range(100):
            u = structural_uniform(5, "u", i)
            assert -1.0 < u < 1.0

    def test_deterministic(self):
        assert structural_uniform(5, "a") == structural_uniform(5, "a")

    def test_roughly_zero_mean(self):
        vals = [structural_uniform(5, "m", i) for i in range(500)]
        assert abs(np.mean(vals)) < 0.1


class TestLognormalNoise:
    def test_zero_sigma_is_identity(self):
        rng = np.random.default_rng(0)
        assert lognormal_noise(rng, 0.0) == 1.0

    def test_positive(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert lognormal_noise(rng, 0.3) > 0

    def test_median_near_one(self):
        rng = np.random.default_rng(0)
        vals = [lognormal_noise(rng, 0.1) for _ in range(2000)]
        assert np.median(vals) == pytest.approx(1.0, abs=0.02)

    def test_negative_sigma_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            lognormal_noise(rng, -0.1)
