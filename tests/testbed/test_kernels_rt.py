"""Tests for the ground-truth kernel time curves."""

import pytest

from repro.testbed.kernels_rt import (
    CrayPdgemmGroundTruth,
    GroundTruthKernels,
    OUTLIER_P8_FACTOR,
    REGIME_SPLIT,
    TABLE2_CURVES,
)
from repro.util.errors import SimulationError


@pytest.fixture
def clean():
    """Ground truth with no fluctuation or outliers (pure Table II curves)."""
    return GroundTruthKernels(
        seed=0,
        fluctuation={},
        with_outliers=False,
    )


class TestTable2Curves:
    def test_matmul_2000_hyperbolic_branch(self, clean):
        # 239.44/(2p) + 3.43 at p = 4.
        assert clean.mean_time("matmul", 2000, 4) == pytest.approx(
            239.44 / 8 + 3.43, rel=1e-6
        )

    def test_matmul_3000_hyperbolic_branch(self, clean):
        assert clean.mean_time("matmul", 3000, 4) == pytest.approx(
            537.91 / 4 - 25.55, rel=1e-6
        )

    def test_matmul_3000_linear_branch(self, clean):
        assert clean.mean_time("matmul", 3000, 24) == pytest.approx(
            -0.09 * 24 + 11.47, rel=1e-6
        )

    def test_matadd_hyperbolic_everywhere(self, clean):
        assert clean.mean_time("matadd", 2000, 24) == pytest.approx(
            22.99 / 24 + 0.03, rel=1e-6
        )
        assert clean.mean_time("matadd", 3000, 8) == pytest.approx(
            73.59 / 8 + 0.38, rel=1e-6
        )

    def test_matmul_2000_linear_branch_is_continuity_reconciled(self, clean):
        # The printed (0.08, 1.93) intercept is inconsistent with the
        # hyperbolic branch at p = 16; we keep the slope and join the
        # branches continuously.
        boundary = clean.mean_time("matmul", 2000, REGIME_SPLIT)
        just_after = clean.mean_time("matmul", 2000, REGIME_SPLIT + 1)
        assert just_after == pytest.approx(boundary + 0.08, rel=1e-3)

    def test_unknown_kernel_or_size_rejected(self, clean):
        with pytest.raises(SimulationError):
            clean.mean_time("fft", 2000, 4)
        with pytest.raises(SimulationError):
            clean.mean_time("matmul", 1024, 4)

    def test_invalid_p_rejected(self, clean):
        with pytest.raises(ValueError):
            clean.mean_time("matmul", 2000, 0)

    def test_times_always_positive(self, clean):
        # The n=3000 hyperbola would be negative beyond p=21 if the
        # linear branch did not take over; the floor protects all cases.
        for p in range(1, 33):
            for kernel in ("matmul", "matadd"):
                for n in (2000, 3000):
                    assert clean.mean_time(kernel, n, p) > 0


class TestOutliers:
    def test_p8_outlier_present_for_3000(self):
        base = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=False)
        out = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=True)
        ratio = out.mean_time("matmul", 3000, 8) / base.mean_time(
            "matmul", 3000, 8
        )
        assert ratio == pytest.approx(OUTLIER_P8_FACTOR)

    def test_p16_outlier_present_for_3000(self):
        base = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=False)
        out = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=True)
        assert out.mean_time("matmul", 3000, 16) > base.mean_time(
            "matmul", 3000, 16
        ) * 1.3

    def test_no_outliers_for_2000(self):
        base = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=False)
        out = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=True)
        for p in (8, 16):
            assert out.mean_time("matmul", 2000, p) == base.mean_time(
                "matmul", 2000, p
            )

    def test_no_outliers_for_addition(self):
        base = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=False)
        out = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=True)
        assert out.mean_time("matadd", 3000, 8) == base.mean_time(
            "matadd", 3000, 8
        )


class TestFluctuation:
    def test_fluctuation_bounded(self):
        amp = 0.3
        noisy = GroundTruthKernels(
            seed=0,
            fluctuation={("matmul", 2000): amp},
            with_outliers=False,
        )
        clean = GroundTruthKernels(seed=0, fluctuation={}, with_outliers=False)
        for p in range(1, 33):
            ratio = noisy.mean_time("matmul", 2000, p) / clean.mean_time(
                "matmul", 2000, p
            )
            assert 1 - amp <= ratio <= 1 + amp

    def test_seed_changes_pattern(self):
        a = GroundTruthKernels(seed=0)
        b = GroundTruthKernels(seed=1)
        diffs = [
            a.mean_time("matmul", 2000, p) != b.mean_time("matmul", 2000, p)
            for p in range(1, 33)
        ]
        assert any(diffs)

    def test_deterministic_across_instances(self):
        a = GroundTruthKernels(seed=5)
        b = GroundTruthKernels(seed=5)
        for p in (1, 7, 16, 32):
            assert a.mean_time("matmul", 3000, p) == b.mean_time(
                "matmul", 3000, p
            )


class TestCrayPdgemm:
    def test_error_band(self):
        ground = CrayPdgemmGroundTruth(seed=0)
        for n in (1024, 2048, 4096):
            for p in range(1, 33):
                analytical = 2 * n**3 / (p * ground.flops)
                err = (ground.mean_time(n, p) - analytical) / analytical
                assert ground.min_error <= err <= ground.max_error

    def test_mean_error_near_ten_percent(self):
        # Paper: "The average prediction error oscillates at about 10%".
        import numpy as np

        ground = CrayPdgemmGroundTruth(seed=0)
        errs = []
        for n in (1024, 2048, 4096):
            for p in range(1, 33):
                analytical = 2 * n**3 / (p * ground.flops)
                errs.append(abs(ground.mean_time(n, p) - analytical) / analytical)
        assert 0.05 < np.mean(errs) < 0.15

    def test_invalid_arguments(self):
        ground = CrayPdgemmGroundTruth()
        with pytest.raises(ValueError):
            ground.mean_time(0, 1)
        with pytest.raises(ValueError):
            ground.mean_time(1024, 0)
