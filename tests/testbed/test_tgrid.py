"""Tests for the TGrid testbed emulator."""

import pytest

from repro.dag.generator import DagParameters, generate_dag
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.testbed.tgrid import TGridEmulator


@pytest.fixture(scope="module")
def setup():
    platform = bayreuth_cluster()
    params = DagParameters(num_input_matrices=4, add_ratio=0.5, n=2000, seed=3)
    graph = generate_dag(params)
    costs = SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))
    schedule = schedule_dag(graph, costs, "mcpa")
    return platform, graph, schedule


class TestExecution:
    def test_execute_returns_complete_trace(self, setup):
        platform, graph, schedule = setup
        emu = TGridEmulator(platform, seed=7)
        trace = emu.execute(graph, schedule)
        assert set(trace.tasks) == set(graph.task_ids)
        assert trace.makespan > 0

    def test_deterministic_for_same_run_label(self, setup):
        platform, graph, schedule = setup
        emu = TGridEmulator(platform, seed=7)
        a = emu.execute(graph, schedule, run_label=0)
        b = emu.execute(graph, schedule, run_label=0)
        assert a.makespan == b.makespan

    def test_run_label_varies_outcome(self, setup):
        platform, graph, schedule = setup
        emu = TGridEmulator(platform, seed=7)
        a = emu.makespan(graph, schedule, run_label=0)
        b = emu.makespan(graph, schedule, run_label=1)
        assert a != b

    def test_noise_off_makes_runs_identical(self, setup):
        platform, graph, schedule = setup
        emu = TGridEmulator(platform, seed=7, with_noise=False)
        a = emu.makespan(graph, schedule, run_label=0)
        b = emu.makespan(graph, schedule, run_label=1)
        assert a == b

    def test_experimental_makespan_exceeds_analytical_simulation(self, setup):
        # The headline gap: reality includes startup, redistribution
        # overhead and far-from-peak kernels the analytical sim ignores.
        from repro.simgrid.simulator import ApplicationSimulator

        platform, graph, schedule = setup
        emu = TGridEmulator(platform, seed=7)
        sim = ApplicationSimulator(platform, AnalyticalTaskModel(platform))
        sim_makespan = sim.run(graph, schedule).makespan
        exp_makespan = emu.makespan(graph, schedule)
        assert exp_makespan > 1.5 * sim_makespan

    def test_environment_seed_changes_outcome(self, setup):
        platform, graph, schedule = setup
        a = TGridEmulator(platform, seed=1).makespan(graph, schedule)
        b = TGridEmulator(platform, seed=2).makespan(graph, schedule)
        assert a != b

    def test_effective_bandwidth_derated(self, setup):
        platform, *_ = setup
        emu = TGridEmulator(platform, seed=0, bandwidth_efficiency=0.5)
        assert emu.effective_platform.link_bandwidth == pytest.approx(
            platform.link_bandwidth * 0.5
        )

    def test_invalid_efficiency_rejected(self, setup):
        platform, *_ = setup
        with pytest.raises(ValueError):
            TGridEmulator(platform, bandwidth_efficiency=0.0)
        with pytest.raises(ValueError):
            TGridEmulator(platform, bandwidth_efficiency=1.5)


class TestMicrobenchmarks:
    def test_measure_kernel_trials(self, setup):
        platform, *_ = setup
        emu = TGridEmulator(platform, seed=7)
        samples = emu.measure_kernel("matmul", 2000, 4, trials=5)
        assert len(samples) == 5
        assert all(s > 0 for s in samples)

    def test_kernel_measurements_scatter_around_ground_truth(self, setup):
        import numpy as np

        platform, *_ = setup
        emu = TGridEmulator(platform, seed=7)
        mean = np.mean(emu.measure_kernel("matmul", 2000, 4, trials=50))
        truth = emu.kernels.mean_time("matmul", 2000, 4)
        assert mean == pytest.approx(truth, rel=0.05)

    def test_measure_startup_default_20_trials(self, setup):
        platform, *_ = setup
        emu = TGridEmulator(platform, seed=7)
        assert len(emu.measure_startup(8)) == 20  # paper: 20 trials

    def test_measure_redistribution_default_3_trials(self, setup):
        platform, *_ = setup
        emu = TGridEmulator(platform, seed=7)
        assert len(emu.measure_redistribution_overhead(4, 8)) == 3

    def test_measurements_reproducible(self, setup):
        platform, *_ = setup
        a = TGridEmulator(platform, seed=7).measure_kernel("matadd", 3000, 2, 3)
        b = TGridEmulator(platform, seed=7).measure_kernel("matadd", 3000, 2, 3)
        assert a == b

    def test_invalid_trials_rejected(self, setup):
        platform, *_ = setup
        emu = TGridEmulator(platform, seed=7)
        with pytest.raises(ValueError):
            emu.measure_kernel("matmul", 2000, 1, trials=0)
        with pytest.raises(ValueError):
            emu.measure_startup(1, trials=0)
        with pytest.raises(ValueError):
            emu.measure_redistribution_overhead(1, 1, trials=0)
