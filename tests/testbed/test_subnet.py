"""Tests for the subnet-manager redistribution-overhead ground truth."""

import numpy as np
import pytest

from repro.models.regression import fit_linear
from repro.testbed.subnet import (
    REDIST_INTERCEPT,
    REDIST_SLOPE,
    SubnetManagerGroundTruth,
)


class TestMeanOverhead:
    def test_depends_mostly_on_destination(self):
        # Fig 4: "the overhead depends mostly on p(dst)".
        subnet = SubnetManagerGroundTruth(seed=0)
        dst_span = subnet.mean_overhead(16, 32) - subnet.mean_overhead(16, 1)
        src_span = subnet.mean_overhead(32, 16) - subnet.mean_overhead(1, 16)
        assert dst_span > 3 * abs(src_span)

    def test_src_average_recovers_table2_fit(self):
        # Averaging over p_src and fitting vs p_dst lands on
        # (7.88 ms, 108.58 ms) by construction.
        subnet = SubnetManagerGroundTruth(seed=0)
        dsts = list(range(1, 33))
        means = [
            np.mean([subnet.mean_overhead(ps, pd) for ps in range(1, 33)])
            for pd in dsts
        ]
        fit = fit_linear(dsts, means)
        assert fit.a == pytest.approx(REDIST_SLOPE, abs=0.002)
        assert fit.b == pytest.approx(REDIST_INTERCEPT, abs=0.02)

    def test_positive_everywhere(self):
        subnet = SubnetManagerGroundTruth(seed=0)
        for ps in (1, 8, 32):
            for pd in (1, 8, 32):
                assert subnet.mean_overhead(ps, pd) > 0

    def test_invalid_counts_rejected(self):
        subnet = SubnetManagerGroundTruth()
        with pytest.raises(ValueError):
            subnet.mean_overhead(0, 1)
        with pytest.raises(ValueError):
            subnet.mean_overhead(1, 0)


class TestSampling:
    def test_samples_scatter_around_mean(self):
        subnet = SubnetManagerGroundTruth(seed=0)
        rng = np.random.default_rng(2)
        samples = [subnet.sample(4, 8, rng) for _ in range(300)]
        assert np.mean(samples) == pytest.approx(
            subnet.mean_overhead(4, 8), rel=0.05
        )

    def test_deterministic_mean_across_instances(self):
        a = SubnetManagerGroundTruth(seed=3)
        b = SubnetManagerGroundTruth(seed=3)
        assert a.mean_overhead(5, 9) == b.mean_overhead(5, 9)
