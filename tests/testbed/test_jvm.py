"""Tests for the JVM startup-overhead ground truth."""

import numpy as np
import pytest

from repro.models.regression import fit_linear
from repro.testbed.jvm import (
    STARTUP_INTERCEPT,
    STARTUP_SLOPE,
    JvmStartupGroundTruth,
)


class TestMeanOverhead:
    def test_tracks_table2_trend(self):
        jvm = JvmStartupGroundTruth(seed=0)
        for p in (1, 8, 16, 32):
            trend = STARTUP_SLOPE * p + STARTUP_INTERCEPT
            assert abs(jvm.mean_overhead(p) - trend) <= jvm.wiggle + 1e-9

    def test_non_monotone(self):
        # Fig 3: "the average startup time is not monotonically
        # increasing with the number of processors".
        jvm = JvmStartupGroundTruth(seed=0)
        values = [jvm.mean_overhead(p) for p in range(1, 33)]
        increasing = all(b >= a for a, b in zip(values, values[1:]))
        assert not increasing

    def test_overall_range_plausible(self):
        # Fig 3 y-range: roughly 0.8-1.6 s over p = 1..32.
        jvm = JvmStartupGroundTruth(seed=0)
        values = [jvm.mean_overhead(p) for p in range(1, 33)]
        assert min(values) > 0.4
        assert max(values) < 2.0

    def test_regression_recovers_paper_fit(self):
        # A linear fit over the full mean curve lands near (0.03, 0.65).
        jvm = JvmStartupGroundTruth(seed=0)
        ps = list(range(1, 33))
        fit = fit_linear(ps, [jvm.mean_overhead(p) for p in ps])
        assert fit.a == pytest.approx(STARTUP_SLOPE, abs=0.01)
        assert fit.b == pytest.approx(STARTUP_INTERCEPT, abs=0.1)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            JvmStartupGroundTruth().mean_overhead(0)


class TestSampling:
    def test_samples_positive_and_near_mean(self):
        jvm = JvmStartupGroundTruth(seed=0)
        rng = np.random.default_rng(1)
        samples = [jvm.sample(8, rng) for _ in range(200)]
        assert all(s > 0 for s in samples)
        assert np.mean(samples) == pytest.approx(jvm.mean_overhead(8), rel=0.05)

    def test_noise_free_when_sigma_zero(self):
        jvm = JvmStartupGroundTruth(seed=0, noise_sigma=0.0)
        rng = np.random.default_rng(1)
        assert jvm.sample(4, rng) == jvm.mean_overhead(4)
