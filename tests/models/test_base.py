"""Tests for the TaskTimeModel contract."""

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATMUL
from repro.models.base import ModelKind, TaskTimeModel


class MeasuredOnly(TaskTimeModel):
    name = "measured-only"

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return 1.0


class TestContract:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            TaskTimeModel()

    def test_measured_models_reject_analytical_queries(self):
        model = MeasuredOnly()
        task = Task(task_id=0, kernel=MATMUL, n=100)
        with pytest.raises(NotImplementedError):
            model.computation(task, 4)
        with pytest.raises(NotImplementedError):
            model.comm_matrix(task, 4)

    def test_kind_enum_values(self):
        assert ModelKind.ANALYTICAL.value == "analytical"
        assert ModelKind.MEASURED.value == "measured"
        assert len(ModelKind) == 2
