"""Tests for the least-squares fitting utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.regression import (
    detect_outliers,
    fit_hyperbolic,
    fit_linear,
)
from repro.util.errors import CalibrationError


class TestLinearFit:
    def test_exact_recovery(self):
        ps = [1, 4, 9, 16]
        ts = [0.5 * p + 2.0 for p in ps]
        fit = fit_linear(ps, ts)
        assert fit.a == pytest.approx(0.5)
        assert fit.b == pytest.approx(2.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_prediction(self):
        fit = fit_linear([1, 2], [3.0, 5.0])
        assert fit(10) == pytest.approx(21.0)

    def test_rmse_positive_for_noisy_data(self):
        fit = fit_linear([1, 2, 3, 4], [1.0, 2.1, 2.9, 4.2])
        assert fit.rmse > 0

    def test_too_few_samples_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1], [1.0])

    def test_degenerate_samples_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([3, 3, 3], [1.0, 2.0, 3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1, 2], [1.0])

    @given(
        a=st.floats(min_value=-10, max_value=10),
        b=st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_arbitrary_lines(self, a, b):
        ps = [1.0, 5.0, 12.0, 30.0]
        ts = [a * p + b for p in ps]
        fit = fit_linear(ps, ts)
        assert fit.a == pytest.approx(a, abs=1e-6)
        assert fit.b == pytest.approx(b, abs=1e-5)


class TestHyperbolicFit:
    def test_exact_recovery(self):
        ps = [1, 2, 4, 8]
        ts = [100.0 / p + 3.0 for p in ps]
        fit = fit_hyperbolic(ps, ts)
        assert fit.a == pytest.approx(100.0)
        assert fit.b == pytest.approx(3.0)

    def test_recovers_paper_coefficients(self):
        # Table II, matadd n=3000: 73.59/p + 0.38 sampled at the paper's
        # points must round-trip.
        ps = [2, 4, 7, 15, 24, 31]
        ts = [73.59 / p + 0.38 for p in ps]
        fit = fit_hyperbolic(ps, ts)
        assert fit.a == pytest.approx(73.59, rel=1e-9)
        assert fit.b == pytest.approx(0.38, abs=1e-9)

    def test_nonpositive_p_rejected(self):
        with pytest.raises(CalibrationError):
            fit_hyperbolic([0, 1], [1.0, 2.0])

    def test_prediction_rejects_nonpositive(self):
        fit = fit_hyperbolic([1, 2], [2.0, 1.0])
        with pytest.raises(ValueError):
            fit(0)


class TestDetectOutliers:
    def test_flags_planted_outlier(self):
        ps = [1, 2, 4, 8, 16, 32]
        ts = [100.0 / p + 1.0 for p in ps]
        ts[3] *= 2.5  # corrupt p=8, like the paper's memory-hierarchy outlier
        flagged = detect_outliers(ps, ts, fit_hyperbolic)
        assert 3 in flagged

    def test_clean_data_unflagged(self):
        ps = [1, 2, 4, 8, 16, 32]
        ts = [100.0 / p + 1.0 for p in ps]
        assert detect_outliers(ps, ts, fit_hyperbolic) == []

    def test_requires_enough_samples(self):
        with pytest.raises(CalibrationError):
            detect_outliers([1, 2, 3], [1.0, 2.0, 3.0], fit_linear)

    def test_linear_family(self):
        ps = [1, 5, 10, 20, 30]
        ts = [2.0 * p + 1.0 for p in ps]
        ts[2] += 50.0
        flagged = detect_outliers(ps, ts, fit_linear)
        assert 2 in flagged
