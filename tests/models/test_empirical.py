"""Tests for the empirical (piecewise regression) task-time model."""

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATADD, MATMUL
from repro.models.base import ModelKind
from repro.models.empirical import EmpiricalTaskModel, PiecewiseKernelModel
from repro.models.regression import HyperbolicFit, LinearFit
from repro.util.errors import CalibrationError


@pytest.fixture
def matmul_curve():
    # The paper's n=3000 multiplication model (Table II).
    return PiecewiseKernelModel(
        low=HyperbolicFit(a=537.91, b=-25.55),
        high=LinearFit(a=-0.09, b=11.47),
        split=16,
    )


class TestPiecewise:
    def test_low_branch_below_split(self, matmul_curve):
        assert matmul_curve(4) == pytest.approx(537.91 / 4 - 25.55)

    def test_boundary_uses_low_branch(self, matmul_curve):
        assert matmul_curve(16) == pytest.approx(537.91 / 16 - 25.55)

    def test_high_branch_above_split(self, matmul_curve):
        assert matmul_curve(24) == pytest.approx(-0.09 * 24 + 11.47)

    def test_hyperbolic_only_model(self):
        curve = PiecewiseKernelModel(low=HyperbolicFit(a=73.59, b=0.38))
        assert curve(24) == pytest.approx(73.59 / 24 + 0.38)

    def test_negative_prediction_clamped(self):
        # The n=3000 hyperbola goes negative past p=21 — the piecewise
        # model must never return a non-positive duration.
        curve = PiecewiseKernelModel(low=HyperbolicFit(a=537.91, b=-25.55))
        assert curve(30) > 0

    def test_invalid_p_rejected(self, matmul_curve):
        with pytest.raises(ValueError):
            matmul_curve(0)

    def test_from_samples_fits_both_branches(self):
        low = {p: 100.0 / p + 2.0 for p in (2, 4, 7, 15)}
        high = {p: 0.1 * p + 5.0 for p in (15, 24, 31)}
        curve = PiecewiseKernelModel.from_samples(low, high)
        assert curve.low.a == pytest.approx(100.0)
        assert curve.low.b == pytest.approx(2.0)
        assert curve.high.a == pytest.approx(0.1)
        assert curve.high.b == pytest.approx(5.0)

    def test_from_samples_requires_low_branch(self):
        with pytest.raises(CalibrationError):
            PiecewiseKernelModel.from_samples({})


class TestEmpiricalTaskModel:
    def test_routes_by_kernel_and_size(self, matmul_curve):
        add_curve = PiecewiseKernelModel(low=HyperbolicFit(a=73.59, b=0.38))
        model = EmpiricalTaskModel(
            {("matmul", 3000): matmul_curve, ("matadd", 3000): add_curve}
        )
        mm = Task(task_id=0, kernel=MATMUL, n=3000)
        ma = Task(task_id=1, kernel=MATADD, n=3000)
        assert model.duration(mm, 4) == pytest.approx(537.91 / 4 - 25.55)
        assert model.duration(ma, 4) == pytest.approx(73.59 / 4 + 0.38)

    def test_kind_is_measured(self, matmul_curve):
        model = EmpiricalTaskModel({("matmul", 3000): matmul_curve})
        assert model.kind is ModelKind.MEASURED

    def test_missing_curve_raises(self, matmul_curve):
        model = EmpiricalTaskModel({("matmul", 3000): matmul_curve})
        with pytest.raises(CalibrationError):
            model.duration(Task(task_id=0, kernel=MATMUL, n=2000), 4)

    def test_empty_model_rejected(self):
        with pytest.raises(CalibrationError):
            EmpiricalTaskModel({})
