"""Tests for the size-aware empirical models (paper extension)."""

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATADD, MATMUL
from repro.models.base import ModelKind
from repro.models.empirical import PiecewiseKernelModel
from repro.models.regression import HyperbolicFit, LinearFit
from repro.models.scaling import (
    SizeAwareEmpiricalModel,
    SizeInterpolatedKernelModel,
)
from repro.util.errors import CalibrationError


@pytest.fixture
def family():
    """Two clean per-size curves: t = n^3/1e9 / p + n^2/1e7."""

    def curve(n):
        return PiecewiseKernelModel(
            low=HyperbolicFit(a=n**3 / 1e9, b=n**2 / 1e7),
            high=LinearFit(a=0.01, b=n**3 / 1e9 / 16 + n**2 / 1e7),
            split=16,
        )

    return SizeInterpolatedKernelModel({2000: curve(2000), 3000: curve(3000)})


class TestSizeInterpolatedKernelModel:
    def test_exact_at_measured_sizes(self, family):
        assert family(2000, 4) == pytest.approx(8.0 / 4 + 0.4)
        assert family(3000, 4) == pytest.approx(27.0 / 4 + 0.9)

    def test_interpolation_is_between_anchors(self, family):
        for p in (1, 4, 15):
            lo = family(2000, p)
            hi = family(3000, p)
            mid = family(2500, p)
            assert lo < mid < hi

    def test_interpolation_monotone_in_n(self, family):
        values = [family(n, 8) for n in (2000, 2200, 2500, 2800, 3000)]
        assert values == sorted(values)

    def test_interpolation_accuracy_on_power_law(self, family):
        # The underlying family is polynomial in n; log-space
        # interpolation over [2000, 3000] tracks it within a few %.
        n = 2500
        truth = n**3 / 1e9 / 8 + n**2 / 1e7
        assert family(n, 8) == pytest.approx(truth, rel=0.05)

    def test_bounded_extrapolation_allowed(self, family):
        assert family(1800, 4) > 0
        assert family(3400, 4) > family(3000, 4)

    def test_far_extrapolation_rejected(self, family):
        with pytest.raises(CalibrationError):
            family(1000, 4)
        with pytest.raises(CalibrationError):
            family(5000, 4)

    def test_needs_two_sizes(self):
        curve = PiecewiseKernelModel(low=HyperbolicFit(a=1.0, b=0.0))
        with pytest.raises(CalibrationError):
            SizeInterpolatedKernelModel({2000: curve})

    def test_three_size_family_uses_right_segment(self):
        def curve(value):
            return PiecewiseKernelModel(low=HyperbolicFit(a=0.0, b=value))

        family = SizeInterpolatedKernelModel(
            {1000: curve(1.0), 2000: curve(2.0), 3000: curve(10.0)}
        )
        # Between 1000 and 2000 the prediction must ignore the 3000 curve.
        assert 1.0 < family(1500, 4) < 2.0
        assert 2.0 < family(2500, 4) < 10.0


class TestSizeAwareEmpiricalModel:
    def test_routes_by_kernel(self, family):
        model = SizeAwareEmpiricalModel({"matmul": family})
        task = Task(task_id=0, kernel=MATMUL, n=2500)
        assert model.duration(task, 4) == pytest.approx(family(2500, 4))
        with pytest.raises(CalibrationError):
            model.duration(Task(task_id=1, kernel=MATADD, n=2500), 4)

    def test_kind_is_measured(self, family):
        assert (
            SizeAwareEmpiricalModel({"matmul": family}).kind
            is ModelKind.MEASURED
        )

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            SizeAwareEmpiricalModel({})


class TestCalibratedSuite:
    """End-to-end: calibrate on {2000, 3000}, predict 2500."""

    @pytest.fixture(scope="class")
    def suite(self, emulator):
        from repro.profiling.calibration import build_size_aware_suite

        return build_size_aware_suite(emulator, kernel_trials=2,
                                      startup_trials=5,
                                      redistribution_trials=2)

    def test_predicts_unmeasured_size(self, suite, emulator):
        task = Task(task_id=0, kernel=MATMUL, n=2500)
        for p in (2, 8):
            pred = suite.task_model.duration(task, p)
            truth = emulator.kernels.mean_time("matmul", 2500, p)
            assert pred == pytest.approx(truth, rel=0.45)

    def test_schedulable_at_unmeasured_size(self, suite, emulator):
        from repro.dag.generator import DagParameters, generate_dag
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag

        graph = generate_dag(
            DagParameters(num_input_matrices=4, add_ratio=0.5, n=2500, seed=5)
        )
        costs = SchedulingCosts(
            graph,
            emulator.platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        schedule = schedule_dag(graph, costs, "mcpa")
        schedule.validate(graph, emulator.platform)
        # And the testbed can execute it (ground truth interpolates too).
        assert emulator.makespan(graph, schedule) > 0

    def test_profile_model_cannot_do_this(self, emulator):
        """The contrast that motivates the extension: lookup tables
        cannot serve sizes they never measured."""
        from repro.profiling.calibration import build_profile_suite

        suite = build_profile_suite(emulator, kernel_trials=1,
                                    startup_trials=2,
                                    redistribution_trials=1)
        task = Task(task_id=0, kernel=MATMUL, n=2500)
        with pytest.raises(CalibrationError):
            suite.task_model.duration(task, 4)
