"""Tests for the profile (lookup-table) task-time model."""

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATMUL
from repro.models.base import ModelKind
from repro.models.profiles import ProfileTaskModel
from repro.util.errors import CalibrationError


@pytest.fixture
def model():
    table = {
        ("matmul", 2000, 1): 120.0,
        ("matmul", 2000, 2): 65.0,
        ("matmul", 2000, 3): 44.0,
    }
    return ProfileTaskModel(table)


class TestLookup:
    def test_exact_replay(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert model.duration(task, 2) == 65.0

    def test_kind_is_measured(self, model):
        assert model.kind is ModelKind.MEASURED

    def test_missing_entry_raises_calibration_error(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        with pytest.raises(CalibrationError):
            model.duration(task, 16)

    def test_missing_size_raises(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=3000)
        with pytest.raises(CalibrationError):
            model.duration(task, 1)

    def test_len_and_keys(self, model):
        assert len(model) == 3
        assert ("matmul", 2000, 1) in set(model.keys())


class TestCoverage:
    def test_covers_full_range(self, model):
        assert model.covers("matmul", 2000, 3)
        assert not model.covers("matmul", 2000, 4)
        assert not model.covers("matadd", 2000, 1)


class TestValidation:
    def test_empty_table_rejected(self):
        with pytest.raises(CalibrationError):
            ProfileTaskModel({})

    def test_nonpositive_time_rejected(self):
        with pytest.raises(CalibrationError):
            ProfileTaskModel({("matmul", 2000, 1): 0.0})

    def test_keys_normalised_to_ints(self):
        model = ProfileTaskModel({("matmul", 2000.0, 1.0): 5.0})
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert model.duration(task, 1) == 5.0
