"""Tests for the startup and redistribution overhead models."""

import pytest

from repro.models.overheads import (
    LinearRedistributionOverheadModel,
    LinearStartupModel,
    TableRedistributionOverheadModel,
    TableStartupModel,
    ZeroRedistributionOverheadModel,
    ZeroStartupModel,
)
from repro.models.regression import LinearFit
from repro.util.errors import CalibrationError


class TestStartupModels:
    def test_zero_model(self):
        assert ZeroStartupModel().startup(16) == 0.0

    def test_table_model_lookup(self):
        model = TableStartupModel({1: 0.7, 2: 0.9})
        assert model.startup(2) == 0.9

    def test_table_model_missing_entry(self):
        model = TableStartupModel({1: 0.7})
        with pytest.raises(CalibrationError):
            model.startup(5)

    def test_table_model_validation(self):
        with pytest.raises(CalibrationError):
            TableStartupModel({})
        with pytest.raises(CalibrationError):
            TableStartupModel({0: 0.5})
        with pytest.raises(CalibrationError):
            TableStartupModel({1: -0.1})

    def test_linear_model_paper_fit(self):
        # Table II: 0.03 p + 0.65.
        model = LinearStartupModel(LinearFit(a=0.03, b=0.65))
        assert model.startup(32) == pytest.approx(1.61)

    def test_linear_model_clamped_nonnegative(self):
        model = LinearStartupModel(LinearFit(a=-1.0, b=0.5))
        assert model.startup(10) == 0.0

    @pytest.mark.parametrize(
        "model",
        [
            ZeroStartupModel(),
            TableStartupModel({1: 0.5}),
            LinearStartupModel(LinearFit(a=0.0, b=0.1)),
        ],
    )
    def test_invalid_p_rejected(self, model):
        with pytest.raises(ValueError):
            model.startup(0)


class TestRedistributionModels:
    def test_zero_model(self):
        assert ZeroRedistributionOverheadModel().overhead(4, 8) == 0.0

    def test_table_model_keys_by_destination(self):
        model = TableRedistributionOverheadModel({4: 0.2, 8: 0.3})
        # Only p_dst matters (Section VI-C's averaging over p_src).
        assert model.overhead(1, 8) == 0.3
        assert model.overhead(32, 8) == 0.3

    def test_table_model_missing_destination(self):
        model = TableRedistributionOverheadModel({4: 0.2})
        with pytest.raises(CalibrationError):
            model.overhead(4, 16)

    def test_linear_model_paper_fit(self):
        # Table II: 7.88 ms * p_dst + 108.58 ms.
        model = LinearRedistributionOverheadModel(
            LinearFit(a=0.00788, b=0.10858)
        )
        assert model.overhead(10, 32) == pytest.approx(0.00788 * 32 + 0.10858)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            TableRedistributionOverheadModel({})
        model = ZeroRedistributionOverheadModel()
        with pytest.raises(ValueError):
            model.overhead(0, 1)
        with pytest.raises(ValueError):
            model.overhead(1, 0)
