"""Tests for hypothetical-platform suite scaling (paper extension)."""

import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.models.overheads import (
    LinearRedistributionOverheadModel,
    LinearStartupModel,
)
from repro.models.profiles import ProfileTaskModel
from repro.models.regression import LinearFit
from repro.models.scaled import (
    ScaledRedistributionModel,
    ScaledStartupModel,
    ScaledTaskModel,
    scale_suite,
)
from repro.profiling.calibration import SimulatorSuite
from repro.util.errors import CalibrationError


@pytest.fixture
def base_suite():
    return SimulatorSuite(
        name="base",
        task_model=ProfileTaskModel({("matmul", 2000, 4): 40.0}),
        startup_model=LinearStartupModel(LinearFit(a=0.0, b=1.0)),
        redistribution_model=LinearRedistributionOverheadModel(
            LinearFit(a=0.0, b=0.2)
        ),
    )


class TestScaledWrappers:
    def test_task_speedup(self, base_suite):
        scaled = ScaledTaskModel(base_suite.task_model, speedup=2.0)
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert scaled.duration(task, 4) == pytest.approx(20.0)

    def test_startup_factor(self, base_suite):
        scaled = ScaledStartupModel(base_suite.startup_model, factor=0.5)
        assert scaled.startup(8) == pytest.approx(0.5)

    def test_redistribution_factor(self, base_suite):
        scaled = ScaledRedistributionModel(
            base_suite.redistribution_model, factor=2.0
        )
        assert scaled.overhead(4, 8) == pytest.approx(0.4)

    def test_analytical_model_refused(self, platform):
        with pytest.raises(CalibrationError):
            ScaledTaskModel(AnalyticalTaskModel(platform), speedup=2.0)

    def test_invalid_factors_rejected(self, base_suite):
        with pytest.raises(CalibrationError):
            ScaledTaskModel(base_suite.task_model, speedup=0.0)
        with pytest.raises(CalibrationError):
            ScaledStartupModel(base_suite.startup_model, factor=-1.0)


class TestScaleSuite:
    def test_all_components_scaled(self, base_suite):
        scaled = scale_suite(
            base_suite,
            compute_speedup=2.0,
            startup_factor=0.5,
            redistribution_factor=0.25,
        )
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert scaled.task_model.duration(task, 4) == pytest.approx(20.0)
        assert scaled.startup_model.startup(1) == pytest.approx(0.5)
        assert scaled.redistribution_model.overhead(1, 1) == pytest.approx(0.05)
        assert scaled.name == "base-scaled"

    def test_identity_scaling(self, base_suite):
        scaled = scale_suite(base_suite)
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert scaled.task_model.duration(task, 4) == pytest.approx(40.0)


class TestEndToEndHypotheticalMachine:
    """Scale a calibrated suite, validate against a scaled testbed."""

    def test_scaled_suite_predicts_scaled_testbed(self, platform, emulator):
        import dataclasses

        from repro.dag.generator import DagParameters, generate_dag
        from repro.experiments.runner import run_study
        from repro.profiling.calibration import build_profile_suite
        from repro.testbed.tgrid import TGridEmulator

        base_suite = build_profile_suite(
            emulator, kernel_trials=2, startup_trials=5,
            redistribution_trials=2,
        )
        scaled_suite = dataclasses.replace(
            scale_suite(
                base_suite, compute_speedup=2.0, startup_factor=0.5,
                redistribution_factor=0.5,
            ),
            name="hypothetical",
        )
        hypothetical = TGridEmulator(
            platform,
            seed=emulator.seed,
            kernel_time_scale=0.5,
            startup_scale=0.5,
            redistribution_scale=0.5,
        )
        params = DagParameters(
            num_input_matrices=4, add_ratio=0.5, n=2000, seed=21
        )
        dags = [(params, generate_dag(params))]
        study = run_study(dags, [scaled_suite], hypothetical)
        for rec in study.records:
            # Refined-simulator accuracy class on the machine that does
            # not exist yet.
            assert rec.error_pct < 15.0

    def test_unscaled_suite_mispredicts_hypothetical_machine(
        self, platform, emulator
    ):
        from repro.dag.generator import DagParameters, generate_dag
        from repro.experiments.runner import run_study
        from repro.profiling.calibration import build_profile_suite
        from repro.testbed.tgrid import TGridEmulator

        base_suite = build_profile_suite(
            emulator, kernel_trials=2, startup_trials=5,
            redistribution_trials=2,
        )
        hypothetical = TGridEmulator(
            platform, seed=emulator.seed, kernel_time_scale=0.5,
        )
        params = DagParameters(
            num_input_matrices=4, add_ratio=0.5, n=2000, seed=21
        )
        dags = [(params, generate_dag(params))]
        study = run_study(dags, [base_suite], hypothetical)
        for rec in study.records:
            assert rec.error_pct > 30.0  # ~2x compute mismatch
