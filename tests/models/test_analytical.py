"""Tests for the analytical task-time model."""

import numpy as np
import pytest

from repro.dag.graph import Task
from repro.dag.kernels import MATADD, MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind
from repro.platform.personalities import bayreuth_cluster


@pytest.fixture
def model():
    return AnalyticalTaskModel(bayreuth_cluster())


class TestDurations:
    def test_matmul_single_processor(self, model):
        # 2 * 2000^3 flops at 250 MFlop/s = 64 s: the calibration point
        # the paper derived its 250 MFlop/s from.
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        assert model.duration(task, 1) == pytest.approx(2 * 2000**3 / 250e6)

    def test_matmul_scales_inverse_p_when_compute_bound(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=2000)
        t4 = model.duration(task, 4)
        t8 = model.duration(task, 8)
        assert t4 / t8 == pytest.approx(2.0, rel=0.01)

    def test_matadd_adjusted_time(self, model):
        task = Task(task_id=0, kernel=MATADD, n=2000)
        # (n/4)*n^2 = 2e9 flops at 250 MFlop/s = 8 s sequential.
        assert model.duration(task, 1) == pytest.approx(8.0)

    def test_invalid_p_rejected(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=100)
        with pytest.raises(ValueError):
            model.duration(task, 0)

    def test_comm_bound_duration(self):
        # Starve the network so the ring exchange dominates.
        from repro.platform.cluster import ClusterPlatform

        slow_net = ClusterPlatform(
            num_nodes=4, flops=1e15, link_bandwidth=1e6,
            backbone_bandwidth=1e6, link_latency=0.0,
        )
        model = AnalyticalTaskModel(slow_net)
        task = Task(task_id=0, kernel=MATMUL, n=1000)
        p = 4
        bytes_per_link = (p - 1) * (1000 * 1000 / p) * 8
        assert model.duration(task, p) == pytest.approx(bytes_per_link / 1e6)


class TestSpecComponents:
    def test_kind_is_analytical(self, model):
        assert model.kind is ModelKind.ANALYTICAL

    def test_computation_vector(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=1000)
        comp = model.computation(task, 4)
        assert comp.shape == (4,)
        assert np.all(comp == 2 * 1000**3 / 4)

    def test_comm_matrix_shape(self, model):
        task = Task(task_id=0, kernel=MATMUL, n=1000)
        assert model.comm_matrix(task, 4).shape == (4, 4)

    def test_matadd_no_communication(self, model):
        task = Task(task_id=0, kernel=MATADD, n=1000)
        assert np.all(model.comm_matrix(task, 4) == 0)
