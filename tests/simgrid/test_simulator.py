"""Tests for the schedule-driven application simulator."""

import pytest

from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATADD, MATMUL, matrix_bytes
from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind, TaskTimeModel
from repro.models.overheads import (
    LinearRedistributionOverheadModel,
    LinearStartupModel,
)
from repro.models.regression import LinearFit
from repro.platform.cluster import ClusterPlatform
from repro.scheduling.schedule import Placement, Schedule
from repro.simgrid.simulator import ApplicationSimulator
from repro.util.errors import InvalidScheduleError


class FixedModel(TaskTimeModel):
    """Measured-kind model with a constant duration (test double)."""

    name = "fixed"

    def __init__(self, seconds=2.0):
        self.seconds = seconds
        self.calls = []

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        self.calls.append((task.task_id, p))
        return self.seconds


@pytest.fixture
def platform():
    return ClusterPlatform(
        num_nodes=4,
        flops=1e9,
        link_bandwidth=1e9,
        link_latency=0.0,
        backbone_bandwidth=64e9,  # non-blocking switch: 32 MB moves in 0.5 ms
    )


def schedule_for(graph, placements):
    order = graph.topological_order()
    return Schedule(
        {t: Placement(task_id=t, hosts=h) for t, h in placements.items()},
        order,
        algorithm="test",
    )


class TestChainExecution:
    def test_chain_serialises(self, platform, chain_dag):
        sched = schedule_for(chain_dag, {0: (0,), 1: (0,), 2: (0,)})
        sim = ApplicationSimulator(platform, FixedModel(2.0))
        trace = sim.run(chain_dag, sched)
        assert trace.makespan == pytest.approx(6.0)
        assert trace.tasks[1].start == pytest.approx(2.0)
        assert trace.tasks[2].start == pytest.approx(4.0)

    def test_redistribution_transfer_delays_successor(self, chain_dag):
        platform = ClusterPlatform(
            num_nodes=2, flops=1e9, link_bandwidth=1e8, link_latency=0.0
        )
        # Producer on host 0, consumer on host 1: the whole n=2000
        # matrix (32 MB) crosses one 100 MB/s link => 0.32 s.
        sched = schedule_for(chain_dag, {0: (0,), 1: (1,), 2: (1,)})
        sim = ApplicationSimulator(platform, FixedModel(1.0))
        trace = sim.run(chain_dag, sched)
        expected_transfer = matrix_bytes(2000) / 1e8
        assert trace.edges[(0, 1)].duration == pytest.approx(expected_transfer)
        assert trace.tasks[1].start == pytest.approx(1.0 + expected_transfer)

    def test_same_hosts_no_transfer(self, platform, chain_dag):
        sched = schedule_for(chain_dag, {0: (0, 1), 1: (0, 1), 2: (0, 1)})
        sim = ApplicationSimulator(platform, FixedModel(1.0))
        trace = sim.run(chain_dag, sched)
        for rec in trace.edges.values():
            assert rec.duration == pytest.approx(0.0)
        assert trace.makespan == pytest.approx(3.0)


class TestParallelExecution:
    def test_independent_tasks_overlap_on_disjoint_hosts(self, platform):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=1000))
        g.add_task(Task(task_id=1, kernel=MATMUL, n=1000))
        sched = schedule_for(g, {0: (0,), 1: (1,)})
        sim = ApplicationSimulator(platform, FixedModel(3.0))
        trace = sim.run(g, sched)
        assert trace.makespan == pytest.approx(3.0)

    def test_host_order_enforced_for_shared_host(self, platform):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=1000))
        g.add_task(Task(task_id=1, kernel=MATMUL, n=1000))
        sched = schedule_for(g, {0: (0, 1), 1: (1, 2)})
        sim = ApplicationSimulator(platform, FixedModel(3.0))
        trace = sim.run(g, sched)
        # Host 1 is shared: task 1 must wait for task 0.
        assert trace.tasks[1].start == pytest.approx(3.0)
        assert trace.makespan == pytest.approx(6.0)

    def test_diamond_joins_after_both_branches(self, platform, diamond_dag):
        sched = schedule_for(
            diamond_dag, {0: (0,), 1: (1,), 2: (2,), 3: (3,)}
        )
        sim = ApplicationSimulator(platform, FixedModel(2.0))
        trace = sim.run(diamond_dag, sched)
        # 0 finishes at 2; branches finish just after 4 (plus the 32 MB
        # matrix transfers); the join starts after both and their
        # redistributions, so the makespan is 6 plus transfer time.
        assert 4.0 < trace.tasks[3].start < 4.2
        assert 6.0 < trace.makespan < 6.2
        assert trace.tasks[3].start >= max(
            trace.tasks[1].finish, trace.tasks[2].finish
        )


class TestOverheadModels:
    def test_startup_overhead_adds_latency(self, platform, chain_dag):
        sched = schedule_for(chain_dag, {0: (0,), 1: (0,), 2: (0,)})
        startup = LinearStartupModel(LinearFit(a=0.0, b=0.5))
        sim = ApplicationSimulator(platform, FixedModel(1.0), startup_model=startup)
        trace = sim.run(chain_dag, sched)
        assert trace.makespan == pytest.approx(3 * 1.5)
        assert trace.tasks[0].startup_overhead == pytest.approx(0.5)

    def test_redistribution_overhead_adds_latency(self, platform, chain_dag):
        sched = schedule_for(chain_dag, {0: (0,), 1: (0,), 2: (0,)})
        redist = LinearRedistributionOverheadModel(LinearFit(a=0.0, b=0.25))
        sim = ApplicationSimulator(
            platform, FixedModel(1.0), redistribution_model=redist
        )
        trace = sim.run(chain_dag, sched)
        # Two edges, each adding 0.25 s even on identical host sets.
        assert trace.makespan == pytest.approx(3 * 1.0 + 2 * 0.25)


class TestAnalyticalExecution:
    def test_analytical_matches_model_duration(self, platform):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATADD, n=2000))
        model = AnalyticalTaskModel(platform)
        sched = schedule_for(g, {0: (0, 1)})
        sim = ApplicationSimulator(platform, model)
        trace = sim.run(g, sched)
        assert trace.makespan == pytest.approx(model.duration(g.task(0), 2))

    def test_matmul_internal_communication_simulated(self):
        platform = ClusterPlatform(
            num_nodes=2, flops=1e12, link_bandwidth=1e6, link_latency=0.0
        )
        # Absurdly fast CPUs: the ring communication dominates.
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=1000))
        model = AnalyticalTaskModel(platform)
        sched = schedule_for(g, {0: (0, 1)})
        trace = ApplicationSimulator(platform, model).run(g, sched)
        assert trace.makespan == pytest.approx(model.duration(g.task(0), 2))
        assert trace.makespan > 1.0  # clearly comm-bound


class TestModelInvocation:
    def test_measured_model_called_once_per_task(self, platform, chain_dag):
        model = FixedModel(1.0)
        sched = schedule_for(chain_dag, {0: (0,), 1: (0,), 2: (0,)})
        ApplicationSimulator(platform, model).run(chain_dag, sched)
        assert sorted(model.calls) == [(0, 1), (1, 1), (2, 1)]


class TestScheduleValidationPath:
    def test_incomplete_schedule_rejected(self, platform, chain_dag):
        sched = Schedule(
            {0: Placement(task_id=0, hosts=(0,))}, [0], algorithm="test"
        )
        sim = ApplicationSimulator(platform, FixedModel())
        with pytest.raises(InvalidScheduleError):
            sim.run(chain_dag, sched)

    def test_order_violating_precedence_rejected(self, platform, chain_dag):
        placements = {
            t: Placement(task_id=t, hosts=(0,)) for t in chain_dag.task_ids
        }
        sched = Schedule(placements, [2, 1, 0], algorithm="test")
        sim = ApplicationSimulator(platform, FixedModel())
        with pytest.raises(InvalidScheduleError):
            sim.run(chain_dag, sched)

    def test_trace_consistency_checks(self, platform, chain_dag):
        sched = schedule_for(chain_dag, {0: (0,), 1: (1,), 2: (2,)})
        trace = ApplicationSimulator(platform, FixedModel(1.0)).run(
            chain_dag, sched
        )
        trace.validate_against(chain_dag, sched)  # must not raise
