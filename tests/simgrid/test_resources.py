"""Tests for the resource view of the platform (star topology)."""

import pytest

from repro.platform.cluster import ClusterPlatform
from repro.simgrid.resources import NetworkTopology, Resource


class TestResource:
    def test_identity_semantics(self):
        a = Resource("x", 1.0)
        b = Resource("x", 1.0)
        assert a != b  # same spec, different resources
        assert a == a

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Resource("x", 0.0)


class TestNetworkTopology:
    @pytest.fixture
    def topo(self):
        return NetworkTopology(
            ClusterPlatform(
                num_nodes=3, flops=100.0, link_bandwidth=10.0,
                backbone_bandwidth=25.0, link_latency=0.001,
            )
        )

    def test_one_cpu_per_node(self, topo):
        assert len(topo.cpus) == 3
        assert all(c.capacity == 100.0 for c in topo.cpus)
        assert topo.cpu(2) is topo.cpus[2]

    def test_heterogeneous_cpu_capacities(self):
        topo = NetworkTopology(
            ClusterPlatform(num_nodes=2, flops=100.0, node_speeds=(1.0, 0.5))
        )
        assert topo.cpu(0).capacity == 100.0
        assert topo.cpu(1).capacity == 50.0

    def test_route_crosses_three_resources(self, topo):
        route = topo.route(0, 2)
        assert route == [topo.uplinks[0], topo.backbone, topo.downlinks[2]]

    def test_intra_node_route_empty(self, topo):
        assert topo.route(1, 1) == []

    def test_route_latency_delegates_to_platform(self, topo):
        assert topo.route_latency(0, 1) == pytest.approx(0.002)
        assert topo.route_latency(1, 1) == 0.0

    def test_duplex_links_are_distinct(self, topo):
        # Full duplex: the uplink and downlink of a node never contend.
        assert topo.uplinks[0] is not topo.downlinks[0]

    def test_all_resources_enumeration(self, topo):
        resources = list(topo.all_resources())
        # 3 cpus + 3 uplinks + 3 downlinks + 1 backbone.
        assert len(resources) == 10
        assert topo.backbone in resources
