"""The array engine must be indistinguishable from the object engine.

Every fleet below runs once on :class:`SimulationEngine` (the oracle)
and once on :class:`ArraySimulationEngine`, and the comparison is exact:
same makespan, same per-action finish times (``==`` on floats, not
approximate), same step and solver-call counts, same observability
counters.  Fleet sizes straddle the engine's dispatch thresholds so the
scalar kernels, the vectorized kernels, and the forced combinations of
both are all pinned to the oracle.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.recorder import Recorder, recording
from repro.platform.personalities import bayreuth_cluster
from repro.simgrid import arena as arena_mod
from repro.simgrid.arena import (
    ActionArena,
    ArraySimulationEngine,
    ResourceLayout,
    layout_for,
    resolve_engine,
)
from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import Resource
from repro.util.errors import SimulationError


@pytest.fixture(scope="module")
def layout():
    return layout_for(bayreuth_cluster(32))


def make_fleet(layout, num_actions, seed, max_entries=3):
    """Deterministic action specs over the layout's resource ids."""
    rng = random.Random(seed)
    fleet = []
    for i in range(num_actions):
        kind = rng.random()
        if kind < 0.1:
            # Pure timer: no work, no consumption, latency only.
            fleet.append((f"a{i}", 0.0, (), (), rng.uniform(0.1, 2.0)))
            continue
        rids = tuple(
            rng.sample(range(layout.num_rids), rng.randint(1, max_entries))
        )
        ws = tuple(rng.uniform(0.5, 2.0) for _ in rids)
        work = rng.uniform(1e6, 1e9)
        latency = rng.uniform(0.0, 1.0) if kind < 0.5 else 0.0
        fleet.append((f"a{i}", work, rids, ws, latency))
    return fleet


def run_object(layout, fleet):
    eng = SimulationEngine()
    resources = [
        Resource(f"r{rid}", float(cap))
        for rid, cap in enumerate(layout.caps)
    ]
    finishes = {}

    def done(_e, action):
        finishes[action.name] = action.finish_time

    for name, work, rids, ws, latency in fleet:
        eng.add_action(
            Action(
                name,
                work=work,
                consumption=dict(zip((resources[r] for r in rids), ws)),
                latency=latency,
                on_complete=done,
            )
        )
    makespan = eng.run()
    return makespan, finishes, eng.steps_taken, eng.solver_calls


def run_array(layout, fleet, arena=None):
    eng = ArraySimulationEngine(layout, arena)
    finishes = {}

    def done(_e, action):
        finishes[action.name] = action.finish_time

    for name, work, rids, ws, latency in fleet:
        eng.add_entries(
            name, work, rids, ws, latency=latency, on_complete=done
        )
    makespan = eng.run()
    return makespan, finishes, eng.steps_taken, eng.solver_calls


def assert_engines_agree(layout, fleet, arena=None):
    expected = run_object(layout, fleet)
    got = run_array(layout, fleet, arena)
    assert got[0] == expected[0], (got[0].hex(), expected[0].hex())
    assert got[1] == expected[1]
    assert got[2:] == expected[2:]  # steps, solver calls
    return got


class TestFleetEquivalence:
    def test_small_fleet_scalar_paths(self, layout):
        # 12 concurrent actions: scalar step scan + flat solver.
        assert_engines_agree(layout, make_fleet(layout, 12, seed=1))

    def test_large_fleet_vectorized_paths(self, layout):
        # 300 concurrent contended actions: the queue exceeds the step
        # scan threshold and the working set exceeds the solve
        # threshold, so the vectorized kernels carry the run.
        fleet = make_fleet(layout, 300, seed=2)
        makespan, finishes, steps, solves = assert_engines_agree(
            layout, fleet
        )
        assert len(finishes) == 300
        assert steps > 100 and solves > 10

    def test_forced_vectorized_on_small_fleet(self, layout, monkeypatch):
        # Zero thresholds force the vector scan + dense solver onto a
        # fleet the dispatcher would keep scalar; the results must not
        # move — that is the whole bit-identity contract.
        fleet = make_fleet(layout, 12, seed=3)
        default = run_array(layout, fleet)
        monkeypatch.setattr(arena_mod, "_SMALL_QUEUE", 0)
        monkeypatch.setattr(arena_mod, "_SMALL_SOLVE", 0)
        assert run_array(layout, fleet) == default
        assert_engines_agree(layout, fleet)

    def test_forced_scalar_on_large_fleet(self, layout, monkeypatch):
        fleet = make_fleet(layout, 300, seed=2)
        default = run_array(layout, fleet)
        monkeypatch.setattr(arena_mod, "_SMALL_QUEUE", 10**9)
        monkeypatch.setattr(arena_mod, "_SMALL_SOLVE", 10**9)
        assert run_array(layout, fleet) == default

    def test_chained_callbacks_spawn_identically(self, layout):
        # Completions enqueue follow-up work mid-run on both engines —
        # the dynamic case where creation order and dirty-flag handling
        # would first drift.
        def run(engine_kind):
            finishes = {}
            if engine_kind == "object":
                eng = SimulationEngine()
                cpu = Resource("cpu", float(layout.caps[0]))

                def chain(e, action):
                    finishes[action.name] = action.finish_time
                    depth = action.payload
                    if depth:
                        e.add_action(
                            Action(
                                f"{action.name}.c",
                                work=5e8,
                                consumption={cpu: 1.0},
                                on_complete=chain,
                                payload=depth - 1,
                            )
                        )

                for i in range(3):
                    eng.add_action(
                        Action(
                            f"a{i}",
                            work=1e9,
                            consumption={cpu: 1.0},
                            latency=0.25 * i,
                            on_complete=chain,
                            payload=2,
                        )
                    )
            else:
                eng = ArraySimulationEngine(layout)

                def chain(e, action):
                    finishes[action.name] = action.finish_time
                    depth = action.payload
                    if depth:
                        e.add_entries(
                            f"{action.name}.c",
                            5e8,
                            (0,),
                            (1.0,),
                            on_complete=chain,
                            payload=depth - 1,
                        )

                for i in range(3):
                    eng.add_entries(
                        f"a{i}",
                        1e9,
                        (0,),
                        (1.0,),
                        latency=0.25 * i,
                        on_complete=chain,
                        payload=2,
                    )
            makespan = eng.run()
            return makespan, finishes, eng.steps_taken, eng.solver_calls

        assert run("array") == run("object")

    def test_observability_counters_match(self, layout):
        fleet = make_fleet(layout, 40, seed=4)
        counters = {}
        for kind in ("object", "array"):
            rec = Recorder.to_memory()
            with recording(rec):
                if kind == "object":
                    run_object(layout, fleet)
                else:
                    run_array(layout, fleet)
            counters[kind] = {
                k: v
                for k, v in rec.metrics()["counters"].items()
                if k.startswith("engine.")
            }
        assert counters["array"] == counters["object"]
        assert counters["array"]["engine.actions_started"] == 40


class TestArenaReuse:
    def test_reused_arena_is_invisible(self, layout):
        # A second run through the same arena (the study runner's
        # steady state) must match both a fresh-arena run and the
        # object engine.
        arena = ActionArena(slots=4)  # force growth along the way
        fleet_a = make_fleet(layout, 20, seed=5)
        fleet_b = make_fleet(layout, 150, seed=6)
        first = run_array(layout, fleet_a, arena)
        assert first == run_object(layout, fleet_a)
        second = run_array(layout, fleet_b, arena)
        assert second == run_array(layout, fleet_b)  # fresh arena
        assert second == run_object(layout, fleet_b)

    def test_private_rids_remove_contention(self, layout):
        # The contention-free ablation: two identical actions on
        # private capacity copies both run at full standalone speed.
        eng = ArraySimulationEngine(layout)
        cap = float(layout.caps[0])
        for name in ("a", "b"):
            rids = eng.alloc_private_rids([cap])
            eng.add_entries(name, 1e9, rids, (1.0,))
        assert eng.run() == 1e9 / cap
        # The same fleet on the shared id halves the rate.
        shared = ArraySimulationEngine(layout)
        for name in ("a", "b"):
            shared.add_entries(name, 1e9, (0,), (1.0,))
        assert shared.run() == 2.0 * (1e9 / cap)


class TestEngineSurface:
    def test_validation_errors_match_object_engine(self, layout):
        eng = ArraySimulationEngine(layout)
        with pytest.raises(SimulationError) as array_err:
            eng.add_entries("bad", -1.0, (), ())
        with pytest.raises(SimulationError) as object_err:
            Action("bad", work=-1.0)
        assert str(array_err.value) == str(object_err.value)
        with pytest.raises(SimulationError) as array_err:
            eng.add_entries("bad", 1.0, (), (), latency=-0.5)
        with pytest.raises(SimulationError) as object_err:
            Action("bad", work=1.0, latency=-0.5)
        assert str(array_err.value) == str(object_err.value)

    def test_timers_fire_in_order(self, layout):
        eng = ArraySimulationEngine(layout)
        fired = []
        eng.add_timer(3.0, lambda e, a: fired.append(("late", e.now)))
        eng.add_timer(1.0, lambda e, a: fired.append(("early", e.now)))
        assert eng.run() == 3.0
        assert fired == [("early", 1.0), ("late", 3.0)]

    def test_tiny_weight_degenerate_raises_like_object_engine(self, layout):
        # An all-tiny-weight action has no constraining resource: both
        # engines surface the solver's invariant error, not a silent
        # hang or a garbage rate.
        eng = ArraySimulationEngine(layout)
        eng.add_entries("stuck", 1.0, (0,), (1e-30,))
        with pytest.raises(AssertionError, match="lost its remaining"):
            eng.run()
        obj = SimulationEngine()
        obj.add_action(
            Action("stuck", work=1.0, consumption={Resource("r", 1.0): 1e-30})
        )
        with pytest.raises(AssertionError, match="lost its remaining"):
            obj.run()

    def test_pending_actions_tracks_alive_slots(self, layout):
        eng = ArraySimulationEngine(layout)
        assert eng.pending_actions == 0
        eng.add_entries("a", 1e9, (0,), (1.0,))
        eng.add_timer(1.0, lambda e, a: None)
        assert eng.pending_actions == 2
        eng.run()
        assert eng.pending_actions == 0


class TestResolveEngine:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "object"
        assert resolve_engine(None) == "object"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "array")
        assert resolve_engine() == "array"
        monkeypatch.setenv("REPRO_ENGINE", "")
        assert resolve_engine() == "object"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "array")
        assert resolve_engine("object") == "object"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_engine("simd")
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_engine()


class TestResourceLayout:
    def test_star_topology_id_scheme(self):
        platform = bayreuth_cluster(4)
        layout = ResourceLayout(platform)
        n = 4
        assert layout.num_rids == 3 * n + 1
        assert layout.backbone_rid == 3 * n
        for h in range(n):
            assert layout.caps[h] == platform.node_flops(h)
            assert layout.caps[n + h] == platform.link_bandwidth
            assert layout.caps[2 * n + h] == platform.link_bandwidth
        assert layout.caps[3 * n] == platform.backbone_bandwidth
        assert layout.offnode_latency == (
            2.0 * platform.link_latency + platform.backbone_latency
        )

    def test_layout_for_memoizes_by_platform_value(self):
        a = layout_for(bayreuth_cluster(8))
        b = layout_for(bayreuth_cluster(8))
        assert a is b
        assert layout_for(bayreuth_cluster(4)) is not a


def test_makespan_is_bitwise_equal_not_just_close(layout):
    # Spot-check the strongest form of the contract on one contended
    # fleet: the final times agree to the last bit.
    fleet = make_fleet(layout, 60, seed=7)
    obj_makespan = run_object(layout, fleet)[0]
    arr_makespan = run_array(layout, fleet)[0]
    assert math.isfinite(arr_makespan)
    assert arr_makespan.hex() == obj_makespan.hex()
