"""Tests for the discrete-event engine."""

import math

import pytest

from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import Resource
from repro.util.errors import SimulationError


def run_and_collect(engine):
    finished = []
    engine.run()
    return finished


class TestTimers:
    def test_single_timer(self):
        eng = SimulationEngine()
        fired = []
        eng.add_timer(2.5, lambda e, a: fired.append(e.now))
        assert eng.run() == pytest.approx(2.5)
        assert fired == [pytest.approx(2.5)]

    def test_timers_fire_in_order(self):
        eng = SimulationEngine()
        fired = []
        eng.add_timer(3.0, lambda e, a: fired.append("late"))
        eng.add_timer(1.0, lambda e, a: fired.append("early"))
        eng.run()
        assert fired == ["early", "late"]

    def test_zero_delay_timer(self):
        eng = SimulationEngine()
        fired = []
        eng.add_timer(0.0, lambda e, a: fired.append(e.now))
        eng.run()
        assert fired == [0.0]

    def test_chained_timers_from_callbacks(self):
        eng = SimulationEngine()
        times = []

        def chain(e, a):
            times.append(e.now)
            if len(times) < 3:
                e.add_timer(1.0, chain)

        eng.add_timer(1.0, chain)
        assert eng.run() == pytest.approx(3.0)
        assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


class TestComputeActions:
    def test_single_action_duration(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        eng.add_action(Action("t", work=500.0, consumption={cpu: 1.0}))
        assert eng.run() == pytest.approx(5.0)

    def test_latency_then_work(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        eng.add_action(
            Action("t", work=100.0, consumption={cpu: 1.0}, latency=2.0)
        )
        assert eng.run() == pytest.approx(3.0)

    def test_two_actions_share_resource(self):
        # Two equal actions on one CPU: both finish at 2x the solo time.
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        finishes = {}
        for name in ("a", "b"):
            eng.add_action(
                Action(
                    name,
                    work=100.0,
                    consumption={cpu: 1.0},
                    on_complete=lambda e, act: finishes.__setitem__(act.name, e.now),
                )
            )
        eng.run()
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(2.0)

    def test_rates_rebalance_after_completion(self):
        # a: 100 work, b: 300 work on a 100-capacity CPU.  Both run at
        # 50/s; a finishes at 2s; b then runs alone and finishes at
        # 2 + (300-100)/100 = 4s.
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        finishes = {}
        for name, work in (("a", 100.0), ("b", 300.0)):
            eng.add_action(
                Action(
                    name,
                    work=work,
                    consumption={cpu: 1.0},
                    on_complete=lambda e, act: finishes.__setitem__(act.name, e.now),
                )
            )
        eng.run()
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(4.0)

    def test_independent_resources_run_concurrently(self):
        eng = SimulationEngine()
        c1, c2 = Resource("c1", 10.0), Resource("c2", 10.0)
        eng.add_action(Action("a", work=100.0, consumption={c1: 1.0}))
        eng.add_action(Action("b", work=100.0, consumption={c2: 1.0}))
        assert eng.run() == pytest.approx(10.0)

    def test_zero_work_completes_instantly(self):
        eng = SimulationEngine()
        fired = []
        eng.add_action(Action("t", work=0.0, on_complete=lambda e, a: fired.append(e.now)))
        eng.run()
        assert fired == [0.0]

    def test_callback_spawns_dependent_action(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 10.0)
        order = []

        def second(e, a):
            order.append(("second", e.now))

        def first(e, a):
            order.append(("first", e.now))
            e.add_action(
                Action("b", work=50.0, consumption={cpu: 1.0}, on_complete=second)
            )

        eng.add_action(
            Action("a", work=100.0, consumption={cpu: 1.0}, on_complete=first)
        )
        eng.run()
        assert order[0] == ("first", pytest.approx(10.0))
        assert order[1] == ("second", pytest.approx(15.0))

    def test_start_and_finish_times_recorded(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 10.0)
        act = eng.add_action(Action("a", work=20.0, consumption={cpu: 1.0}))
        eng.run()
        assert act.start_time == 0.0
        assert act.finish_time == pytest.approx(2.0)


class TestValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            Action("bad", work=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            Action("bad", work=1.0, latency=-0.1)

    def test_zero_consumption_weights_dropped(self):
        cpu = Resource("cpu", 10.0)
        act = Action("a", work=1.0, consumption={cpu: 0.0})
        assert act.consumption == {}

    def test_run_is_idempotent_when_empty(self):
        eng = SimulationEngine()
        assert eng.run() == 0.0
        assert eng.run() == 0.0
