"""Tests for the ptask_L07 parallel-task action model."""

import numpy as np
import pytest

from repro.platform.cluster import ClusterPlatform
from repro.simgrid.engine import SimulationEngine
from repro.simgrid.ptask import (
    ParallelTaskSpec,
    build_ptask_action,
    comm_matrix_to_flows,
    redistribution_flows,
)
from repro.simgrid.resources import NetworkTopology
from repro.util.errors import SimulationError


@pytest.fixture
def topo():
    return NetworkTopology(
        ClusterPlatform(
            num_nodes=4,
            flops=100.0,
            link_bandwidth=10.0,
            link_latency=0.0,
            backbone_bandwidth=100.0,
        )
    )


class TestFlowMapping:
    def test_comm_matrix_to_flows_skips_zero_and_intra_host(self):
        B = np.array([[0.0, 5.0], [3.0, 0.0]])
        flows = comm_matrix_to_flows(B, [0, 0])
        assert flows == []  # both ranks on host 0
        flows = comm_matrix_to_flows(B, [0, 1])
        assert sorted(flows) == [(0, 1, 5.0), (1, 0, 3.0)]

    def test_comm_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            comm_matrix_to_flows(np.zeros((2, 3)), [0, 1])

    def test_redistribution_flows(self):
        M = np.array([[4.0, 0.0], [0.0, 6.0]])
        flows = redistribution_flows(M, [0, 1], [2, 1])
        # (1 -> 1) is intra-host and dropped.
        assert flows == [(0, 2, 4.0)]

    def test_redistribution_shape_checked(self):
        with pytest.raises(ValueError):
            redistribution_flows(np.zeros((2, 2)), [0], [1, 2])


class TestPtaskDurations:
    def test_compute_bound_duration(self, topo):
        # 2 hosts x 300 flops at 100 flop/s => 3 s.
        spec = ParallelTaskSpec(name="t", comp={0: 300.0, 1: 300.0})
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(3.0)

    def test_slowest_processor_bounds_the_task(self, topo):
        spec = ParallelTaskSpec(name="t", comp={0: 100.0, 1: 500.0})
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(5.0)

    def test_communication_bound_duration(self, topo):
        # 50 bytes over a 10 B/s link => 5 s.
        spec = ParallelTaskSpec(name="t", flows=[(0, 1, 50.0)])
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(5.0)

    def test_max_of_compute_and_comm(self, topo):
        spec = ParallelTaskSpec(
            name="t", comp={0: 800.0}, flows=[(0, 1, 20.0)]
        )
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(8.0)  # compute dominates

    def test_extra_latency_prepended(self, topo):
        spec = ParallelTaskSpec(name="t", comp={0: 100.0}, extra_latency=2.0)
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(3.0)

    def test_route_latency_included(self):
        topo = NetworkTopology(
            ClusterPlatform(
                num_nodes=2,
                flops=100.0,
                link_bandwidth=10.0,
                link_latency=0.5,
            )
        )
        spec = ParallelTaskSpec(name="t", flows=[(0, 1, 10.0)])
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == pytest.approx(1.0 + 1.0)  # 2*0.5 latency + 1 s

    def test_empty_task_completes_instantly(self, topo):
        spec = ParallelTaskSpec(name="t")
        assert spec.is_empty
        eng = SimulationEngine()
        eng.add_action(build_ptask_action(topo, spec))
        assert eng.run() == 0.0

    def test_two_redistributions_contend_on_shared_link(self, topo):
        # Both flows leave host 0: its uplink (10 B/s) is shared.
        eng = SimulationEngine()
        eng.add_action(
            build_ptask_action(
                topo, ParallelTaskSpec(name="a", flows=[(0, 1, 50.0)])
            )
        )
        eng.add_action(
            build_ptask_action(
                topo, ParallelTaskSpec(name="b", flows=[(0, 2, 50.0)])
            )
        )
        assert eng.run() == pytest.approx(10.0)  # halved bandwidth each

    def test_disjoint_transfers_do_not_contend(self, topo):
        eng = SimulationEngine()
        eng.add_action(
            build_ptask_action(
                topo, ParallelTaskSpec(name="a", flows=[(0, 1, 50.0)])
            )
        )
        eng.add_action(
            build_ptask_action(
                topo, ParallelTaskSpec(name="b", flows=[(2, 3, 50.0)])
            )
        )
        assert eng.run() == pytest.approx(5.0)


class TestValidation:
    def test_negative_computation_rejected(self, topo):
        spec = ParallelTaskSpec(name="t", comp={0: -1.0})
        with pytest.raises(SimulationError):
            build_ptask_action(topo, spec)

    def test_negative_flow_rejected(self, topo):
        spec = ParallelTaskSpec(name="t", flows=[(0, 1, -5.0)])
        with pytest.raises(SimulationError):
            build_ptask_action(topo, spec)

    def test_negative_latency_rejected(self, topo):
        spec = ParallelTaskSpec(name="t", extra_latency=-1.0)
        with pytest.raises(SimulationError):
            build_ptask_action(topo, spec)
