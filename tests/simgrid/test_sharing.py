"""Tests for the bottleneck max-min fair-sharing solver."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid.sharing import solve_rates


class TestBasicSharing:
    def test_single_action_gets_full_capacity(self):
        rates = solve_rates({"a": {"r": 1.0}}, {"r": 10.0})
        assert rates["a"] == pytest.approx(10.0)

    def test_two_equal_actions_split_evenly(self):
        rates = solve_rates({"a": {"r": 1.0}, "b": {"r": 1.0}}, {"r": 10.0})
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_weighted_action_gets_proportionally_less_rate(self):
        # Action b consumes 4 units per work-unit: same fair share of
        # the resource means a quarter of the rate.
        rates = solve_rates({"a": {"r": 1.0}, "b": {"r": 4.0}}, {"r": 10.0})
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(2.0)
        # Consumptions: 2*1 + 2*4 = 10 = capacity.

    def test_unconstrained_action_is_infinite(self):
        rates = solve_rates({"a": {}}, {})
        assert math.isinf(rates["a"])


class TestBottleneckPropagation:
    def test_freed_capacity_goes_to_unblocked_action(self):
        # a and b share r1 (the bottleneck for a); b also uses r2.
        # Classic max-min: a is capped by r1's fair share; b gets the
        # same on r1... here we make b bottlenecked elsewhere so a
        # inherits the slack.
        consumption = {
            "a": {"r1": 1.0},
            "b": {"r1": 1.0, "r2": 1.0},
        }
        capacity = {"r1": 10.0, "r2": 2.0}
        rates = solve_rates(consumption, capacity)
        assert rates["b"] == pytest.approx(2.0)  # capped by r2
        assert rates["a"] == pytest.approx(8.0)  # inherits r1 slack

    def test_three_flows_two_links(self):
        # Flows: x uses l1, y uses l1+l2, z uses l2. Capacities 1.
        consumption = {
            "x": {"l1": 1.0},
            "y": {"l1": 1.0, "l2": 1.0},
            "z": {"l2": 1.0},
        }
        capacity = {"l1": 1.0, "l2": 1.0}
        rates = solve_rates(consumption, capacity)
        # Max-min: y fixed at 0.5 on the first bottleneck; x and z get
        # the remaining 0.5 of their links.
        assert rates["y"] == pytest.approx(0.5)
        assert rates["x"] == pytest.approx(0.5)
        assert rates["z"] == pytest.approx(0.5)


class TestValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            solve_rates({"a": {"r": 0.0}}, {"r": 1.0})

    def test_missing_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_rates({"a": {"r": 1.0}}, {})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_rates({"a": {"r": 1.0}}, {"r": 0.0})

    def test_empty_problem(self):
        assert solve_rates({}, {}) == {}


@st.composite
def sharing_problems(draw):
    n_res = draw(st.integers(min_value=1, max_value=5))
    n_act = draw(st.integers(min_value=1, max_value=8))
    resources = [f"r{i}" for i in range(n_res)]
    capacity = {
        r: draw(st.floats(min_value=0.1, max_value=100.0)) for r in resources
    }
    consumption = {}
    for i in range(n_act):
        used = draw(
            st.sets(st.sampled_from(resources), min_size=1, max_size=n_res)
        )
        consumption[f"a{i}"] = {
            r: draw(st.floats(min_value=0.01, max_value=10.0)) for r in used
        }
    return consumption, capacity


class TestMaxMinProperties:
    @given(sharing_problems())
    @settings(max_examples=60, deadline=None)
    def test_feasibility(self, problem):
        consumption, capacity = problem
        rates = solve_rates(consumption, capacity)
        load = {r: 0.0 for r in capacity}
        for action, weights in consumption.items():
            assert rates[action] > 0
            for r, w in weights.items():
                load[r] += w * rates[action]
        for r, total in load.items():
            assert total <= capacity[r] * (1 + 1e-6)

    @given(sharing_problems())
    @settings(max_examples=60, deadline=None)
    def test_every_action_hits_a_saturated_resource(self, problem):
        # Max-min optimality: each action crosses at least one resource
        # that is (numerically) saturated — otherwise its rate could grow.
        consumption, capacity = problem
        rates = solve_rates(consumption, capacity)
        load = {r: 0.0 for r in capacity}
        for action, weights in consumption.items():
            for r, w in weights.items():
                load[r] += w * rates[action]
        for action, weights in consumption.items():
            saturated = any(
                load[r] >= capacity[r] * (1 - 1e-6) for r in weights
            )
            assert saturated, f"{action} could still grow"

    @given(sharing_problems())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, problem):
        consumption, capacity = problem
        assert solve_rates(consumption, capacity) == solve_rates(
            consumption, capacity
        )
