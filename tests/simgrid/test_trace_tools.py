"""Tests for trace rendering and export."""

import json

import pytest

from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator, SimulationTrace, TaskRecord
from repro.simgrid.trace_tools import (
    render_gantt,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)


@pytest.fixture(scope="module")
def trace_and_platform(request):
    platform = bayreuth_cluster(8)
    from repro.dag.generator import DagParameters, generate_dag

    graph = generate_dag(
        DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, seed=5)
    )
    model = AnalyticalTaskModel(platform)
    costs = SchedulingCosts(graph, platform, model)
    schedule = schedule_dag(graph, costs, "mcpa")
    trace = ApplicationSimulator(platform, model).run(graph, schedule)
    return trace, platform, graph


class TestRenderGantt:
    def test_one_row_per_host(self, trace_and_platform):
        trace, platform, _g = trace_and_platform
        out = render_gantt(trace, num_hosts=platform.num_nodes)
        host_rows = [l for l in out.splitlines() if l.startswith("host")]
        assert len(host_rows) == platform.num_nodes

    def test_busy_hosts_show_task_glyphs(self, trace_and_platform):
        trace, platform, _g = trace_and_platform
        out = render_gantt(trace, num_hosts=platform.num_nodes)
        busy_hosts = {h for rec in trace.tasks.values() for h in rec.hosts}
        for line in out.splitlines():
            if line.startswith("host"):
                host = int(line.split("|")[0].split()[1])
                body = line.split("|")[1]
                if host in busy_hosts:
                    assert any(c.isdigit() for c in body)

    def test_redistribution_listing(self, trace_and_platform):
        trace, platform, graph = trace_and_platform
        out = render_gantt(trace, num_hosts=platform.num_nodes)
        if graph.num_edges:
            assert "redistributions:" in out

    def test_width_controls_columns(self, trace_and_platform):
        trace, platform, _g = trace_and_platform
        out = render_gantt(trace, num_hosts=platform.num_nodes, width=30)
        row = next(l for l in out.splitlines() if l.startswith("host"))
        assert len(row.split("|")[1]) == 30

    def test_invalid_arguments(self, trace_and_platform):
        trace, *_ = trace_and_platform
        with pytest.raises(ValueError):
            render_gantt(trace, num_hosts=0)
        with pytest.raises(ValueError):
            render_gantt(trace, num_hosts=4, width=5)


class TestTraceExport:
    def test_dict_structure(self, trace_and_platform):
        trace, _p, graph = trace_and_platform
        data = trace_to_dict(trace)
        assert data["makespan"] == trace.makespan
        assert len(data["tasks"]) == len(graph)
        assert len(data["redistributions"]) == graph.num_edges

    def test_json_roundtrip(self, trace_and_platform):
        trace, *_ = trace_and_platform
        payload = json.loads(trace_to_json(trace))
        assert payload == trace_to_dict(trace)

    def test_task_records_carry_hosts(self, trace_and_platform):
        trace, *_ = trace_and_platform
        data = trace_to_dict(trace)
        for rec in data["tasks"]:
            assert rec["hosts"]
            assert rec["finish"] >= rec["start"]

    def test_full_roundtrip_through_dict(self, trace_and_platform):
        trace, *_ = trace_and_platform
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.makespan == trace.makespan
        assert clone.tasks == trace.tasks
        assert clone.edges == trace.edges

    def test_full_roundtrip_through_json(self, trace_and_platform):
        trace, *_ = trace_and_platform
        clone = trace_from_json(trace_to_json(trace))
        assert clone.tasks == trace.tasks
        assert clone.edges == trace.edges
        # And re-serialising the clone is byte-identical.
        assert trace_to_json(clone) == trace_to_json(trace)

    def test_empty_trace_roundtrip(self):
        empty = SimulationTrace(makespan=0.0)
        clone = trace_from_json(trace_to_json(empty))
        assert clone.makespan == 0.0
        assert clone.tasks == {} and clone.edges == {}


class TestGanttEdgeCases:
    def test_empty_trace_renders_idle_chart(self):
        out = render_gantt(SimulationTrace(makespan=0.0), num_hosts=2, width=10)
        host_rows = [l for l in out.splitlines() if l.startswith("host")]
        assert len(host_rows) == 2
        for row in host_rows:
            assert row.split("|")[1] == "." * 10  # all idle
        assert "redistributions:" not in out

    def test_zero_makespan_with_instant_task(self):
        # A zero-duration task at t=0 must still paint one column and
        # not divide by zero (makespan floor of 1e-12).
        trace = SimulationTrace(makespan=0.0)
        trace.tasks[0] = TaskRecord(
            task_id=0, hosts=(0,), start=0.0, finish=0.0, startup_overhead=0.0
        )
        out = render_gantt(trace, num_hosts=1, width=12)
        body = out.splitlines()[1].split("|")[1]
        assert "0" in body

    def test_zero_makespan_roundtrips(self):
        trace = SimulationTrace(makespan=0.0)
        trace.tasks[0] = TaskRecord(
            task_id=0, hosts=(0, 1), start=0.0, finish=0.0,
            startup_overhead=0.0,
        )
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.tasks[0].hosts == (0, 1)
        assert clone.tasks[0].duration == 0.0


class TestRenderScheduleGantt:
    def test_planned_chart_matches_estimates(self, trace_and_platform):
        from repro.simgrid.trace_tools import render_schedule_gantt
        from repro.dag.generator import DagParameters, generate_dag
        from repro.models.analytical import AnalyticalTaskModel
        from repro.platform.personalities import bayreuth_cluster
        from repro.scheduling.costs import SchedulingCosts
        from repro.scheduling.driver import schedule_dag

        platform = bayreuth_cluster(8)
        graph = generate_dag(
            DagParameters(num_input_matrices=2, add_ratio=0.5, n=2000, seed=5)
        )
        costs = SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))
        schedule = schedule_dag(graph, costs, "mcpa")
        out = render_schedule_gantt(schedule, num_hosts=platform.num_nodes)
        assert "Planned Gantt chart" in out
        assert "mcpa" in out
        host_rows = [l for l in out.splitlines() if l.startswith("host")]
        assert len(host_rows) == platform.num_nodes

    def test_invalid_arguments(self, trace_and_platform):
        from repro.scheduling.schedule import Placement, Schedule
        from repro.simgrid.trace_tools import render_schedule_gantt

        sched = Schedule(
            {0: Placement(task_id=0, hosts=(0,), est_start=0.0,
                          est_finish=1.0)},
            [0],
        )
        import pytest as _pytest

        with _pytest.raises(ValueError):
            render_schedule_gantt(sched, num_hosts=0)
        with _pytest.raises(ValueError):
            render_schedule_gantt(sched, num_hosts=1, width=3)
