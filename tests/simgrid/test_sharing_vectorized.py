"""Property tests: every max-min solver implementation agrees bitwise.

The array engine dispatches between ``_maxmin_flat`` (scalar CSR
kernel) and ``_maxmin_dense`` (vectorized CSR kernel) by instance size,
and the dict-API wrapper ``solve_rates_vectorized`` feeds the dense
kernel.  All of them must return *bit-identical* rates to
``solve_rates`` (itself pinned to ``solve_rates_reference`` by
``test_sharing_equivalence``) on every instance — trace equality
between the engine backends and cache-entry stability both rest on
this.  Equality here is ``==`` on the floats, not approximate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid.sharing import (
    _maxmin_dense,
    _maxmin_flat,
    solve_rates,
    solve_rates_reference,
    solve_rates_vectorized,
)

_WEIGHTS = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)
# Tiny-but-positive weights at or below the solver's load epsilon
# (1e-12): legal inputs whose load contributions are ignored by the
# bottleneck scan — the degenerate corner where a filter-order mistake
# in a kernel would first show up.
_TINY_WEIGHTS = st.floats(
    min_value=1e-16, max_value=1e-12, allow_nan=False, allow_infinity=False
)


@st.composite
def csr_instances(draw, weights=_WEIGHTS):
    """Random CSR sharing instances plus their dict-form equivalent.

    Rows may be empty (unconstrained actions) and resources may go
    entirely unreferenced (declared capacity, no load) — both
    degenerate cases the kernels must handle.
    """
    num_res = draw(st.integers(min_value=1, max_value=6))
    caps = [
        draw(
            st.floats(
                min_value=0.1, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            )
        )
        for _ in range(num_res)
    ]
    num_actions = draw(st.integers(min_value=1, max_value=8))
    row_counts: list[int] = []
    e_rid: list[int] = []
    e_w: list[float] = []
    for _ in range(num_actions):
        rids = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_res - 1),
                min_size=0,
                max_size=num_res,
                unique=True,
            )
        )
        row_counts.append(len(rids))
        e_rid.extend(rids)
        e_w.extend(draw(weights) for _ in rids)
    return row_counts, e_rid, e_w, caps


def dict_form(row_counts, e_rid, e_w, caps):
    """The same instance as ``solve_rates``-style mappings."""
    consumption: dict[int, dict[int, float]] = {}
    pos = 0
    for i, count in enumerate(row_counts):
        row = {}
        for rid, w in zip(e_rid[pos : pos + count], e_w[pos : pos + count]):
            row[rid] = w
        consumption[i] = row
        pos += count
    capacity = dict(enumerate(caps))
    return consumption, capacity


def assert_all_solvers_agree(row_counts, e_rid, e_w, caps):
    consumption, capacity = dict_form(row_counts, e_rid, e_w, caps)
    dense_args = (
        np.asarray(row_counts, dtype=np.intp),
        np.asarray(e_rid, dtype=np.intp),
        np.asarray(e_w, dtype=float),
        np.asarray(caps, dtype=float),
    )
    try:
        oracle = solve_rates(consumption, capacity, validate=False)
    except AssertionError:
        # Tiny-weight fleets where no resource carries a real load: the
        # scalar solver's invariant error — every kernel must raise it
        # on the same instance, not return garbage rates.
        for call in (
            lambda: _maxmin_flat(row_counts, e_rid, e_w, caps),
            lambda: _maxmin_dense(*dense_args),
            lambda: solve_rates_vectorized(
                consumption, capacity, validate=False
            ),
        ):
            with pytest.raises(
                AssertionError, match="lost its remaining actions"
            ):
                call()
        return
    flat = _maxmin_flat(row_counts, e_rid, e_w, caps)
    dense = _maxmin_dense(*dense_args)
    wrapped = solve_rates_vectorized(consumption, capacity, validate=False)
    assert len(flat) == dense.shape[0] == len(row_counts)
    for i in range(len(row_counts)):
        expect = oracle[i]
        # Bitwise: exact equality, inf included.
        assert flat[i] == expect, (i, flat[i].hex(), expect.hex())
        got = float(dense[i])
        assert got == expect, (i, got.hex(), expect.hex())
        assert wrapped[i] == expect, (i, wrapped[i].hex(), expect.hex())


@given(csr_instances())
@settings(max_examples=200, deadline=None)
def test_all_solvers_bitwise_equal(instance):
    assert_all_solvers_agree(*instance)


@given(csr_instances(weights=st.one_of(_WEIGHTS, _TINY_WEIGHTS)))
@settings(max_examples=200, deadline=None)
def test_all_solvers_bitwise_equal_with_tiny_weights(instance):
    assert_all_solvers_agree(*instance)


def test_empty_instance():
    assert _maxmin_flat([], [], [], []) == []
    dense = _maxmin_dense(
        np.zeros(0, dtype=np.intp),
        np.zeros(0, dtype=np.intp),
        np.zeros(0),
        np.zeros(0),
    )
    assert dense.shape == (0,)
    assert solve_rates_vectorized({}, {}) == {}


def test_all_rows_empty_are_unconstrained():
    # No consumption entries at all: every action gets rate inf.
    assert_all_solvers_agree([0, 0, 0], [], [], [2.0])
    assert math.isinf(_maxmin_flat([0, 0, 0], [], [], [2.0])[1])


def test_single_nonempty_row_fast_path():
    # One constrained action among unconstrained ones exercises the
    # single-row fast path of both kernels.
    assert_all_solvers_agree([0, 2, 0], [0, 1], [2.0, 0.5], [4.0, 3.0])
    flat = _maxmin_flat([0, 2, 0], [0, 1], [2.0, 0.5], [4.0, 3.0])
    assert flat == [math.inf, 2.0, math.inf]  # min(4/2, 3/0.5)


def test_single_row_all_tiny_weights_raises_like_scalar():
    # Every weight at/below the load epsilon: no resource constrains
    # the action — the scalar solver's invariant error, verbatim.
    args = ([2], [0, 1], [1e-13, 1e-14], [4.0, 3.0])
    with pytest.raises(AssertionError, match="lost its remaining actions"):
        _maxmin_flat(*args)
    with pytest.raises(AssertionError, match="lost its remaining actions"):
        _maxmin_dense(
            np.asarray(args[0], dtype=np.intp),
            np.asarray(args[1], dtype=np.intp),
            np.asarray(args[2]),
            np.asarray(args[3]),
        )
    with pytest.raises(AssertionError, match="lost its remaining actions"):
        solve_rates({0: {0: 1e-13, 1: 1e-14}}, {0: 4.0, 1: 3.0},
                    validate=False)


def test_unreferenced_resources_do_not_disturb_rates():
    # Declared-but-unused capacities (the "empty resource" corner): the
    # kernels index capacities by id, so trailing unused ids must be
    # inert.
    row_counts, e_rid, e_w = [1, 1], [0, 0], [1.0, 1.0]
    with_extra = _maxmin_flat(row_counts, e_rid, e_w, [2.0, 99.0, 7.0])
    without = _maxmin_flat(row_counts, e_rid, e_w, [2.0])
    assert with_extra == without == [1.0, 1.0]
    dense = _maxmin_dense(
        np.asarray(row_counts, dtype=np.intp),
        np.asarray(e_rid, dtype=np.intp),
        np.asarray(e_w),
        np.asarray([2.0, 99.0, 7.0]),
    )
    assert dense.tolist() == without


def test_shared_bottleneck_chain_matches_scalar():
    # The deduction + dirty re-sum rounds of test_sharing_equivalence,
    # in CSR form: a and b freeze on r0, c then gets r1's leftovers.
    row_counts = [1, 2, 1]
    e_rid = [0, 0, 1, 1]
    e_w = [1.0, 1.0, 1.0, 1.0]
    caps = [2.0, 10.0]
    assert_all_solvers_agree(row_counts, e_rid, e_w, caps)
    assert _maxmin_flat(row_counts, e_rid, e_w, caps) == [1.0, 1.0, 9.0]


def test_vectorized_wrapper_validates_like_scalar():
    # The wrapper re-raises the scalar solver's exact validation
    # errors: zero weights, unknown resources, non-positive capacity.
    for consumption, capacity in (
        ({"a": {"r0": 0.0}}, {"r0": 1.0}),
        ({"a": {"r0": -1.0}}, {"r0": 1.0}),
        ({"a": {"r0": 1.0}}, {}),
        ({"a": {"r0": 1.0}}, {"r0": 0.0}),
    ):
        with pytest.raises(ValueError) as scalar_err:
            solve_rates(consumption, capacity)
        with pytest.raises(ValueError) as vector_err:
            solve_rates_vectorized(consumption, capacity)
        assert str(vector_err.value) == str(scalar_err.value)


def test_first_touch_tie_break_matches_scalar():
    # Two resources with identical fair shares: the winner is the one
    # the consumption mapping references first, in every kernel.
    row_counts = [2, 2]
    e_rid = [1, 0, 1, 0]  # resource 1 is touched first
    e_w = [1.0, 1.0, 1.0, 1.0]
    caps = [4.0, 4.0]
    assert_all_solvers_agree(row_counts, e_rid, e_w, caps)
