"""Property-based invariants of the simulation stack.

These tests drive randomly generated DAGs, allocations and model
configurations through the full scheduling + simulation pipeline and
assert structural invariants that must hold for *any* input:
makespan lower/upper bounds, trace precedence consistency, engine work
conservation, and determinism.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.analysis import critical_path_length
from repro.dag.generator import DagParameters, generate_dag
from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind, TaskTimeModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import ALGORITHMS, schedule_dag
from repro.scheduling.mapping import map_allocations
from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import Resource
from repro.simgrid.simulator import ApplicationSimulator

_PLATFORM = bayreuth_cluster()


class ConstantModel(TaskTimeModel):
    """Measured model: every task takes ``seconds`` regardless of p."""

    name = "constant"

    def __init__(self, seconds):
        self.seconds = seconds

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return self.seconds


@st.composite
def pipeline_cases(draw):
    params = DagParameters(
        num_input_matrices=draw(st.sampled_from((2, 4, 8))),
        add_ratio=draw(st.sampled_from((0.5, 0.75, 1.0))),
        n=draw(st.sampled_from((2000, 3000))),
        sample=draw(st.integers(min_value=0, max_value=3)),
        seed=draw(st.integers(min_value=0, max_value=500)),
    )
    graph = generate_dag(params)
    alloc = {
        t: draw(st.integers(min_value=1, max_value=_PLATFORM.num_nodes))
        for t in graph.task_ids
    }
    return graph, alloc


class TestSimulationInvariants:
    @given(pipeline_cases(), st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds_constant_model(self, case, seconds):
        graph, alloc = case
        model = ConstantModel(seconds)
        costs = SchedulingCosts(graph, _PLATFORM, model)
        schedule = map_allocations(graph, costs, alloc)
        trace = ApplicationSimulator(_PLATFORM, model).run(graph, schedule)
        # Lower bound: the critical path of task durations.
        cp = critical_path_length(graph, lambda t: seconds)
        assert trace.makespan >= cp - 1e-6
        # Upper bound: full serialisation plus generous transfer slack.
        assert trace.makespan <= len(graph) * seconds + 100.0

    @given(pipeline_cases())
    @settings(max_examples=20, deadline=None)
    def test_trace_consistency_analytical(self, case):
        graph, alloc = case
        model = AnalyticalTaskModel(_PLATFORM)
        costs = SchedulingCosts(graph, _PLATFORM, model)
        schedule = map_allocations(graph, costs, alloc)
        trace = ApplicationSimulator(_PLATFORM, model).run(graph, schedule)
        trace.validate_against(graph, schedule)
        # Every edge is recorded, every task has a record.
        assert set(trace.edges) == set(graph.edges())
        assert set(trace.tasks) == set(graph.task_ids)

    @given(pipeline_cases())
    @settings(max_examples=15, deadline=None)
    def test_simulation_deterministic(self, case):
        graph, alloc = case
        model = AnalyticalTaskModel(_PLATFORM)
        costs = SchedulingCosts(graph, _PLATFORM, model)
        schedule = map_allocations(graph, costs, alloc)
        sim = ApplicationSimulator(_PLATFORM, model)
        assert sim.run(graph, schedule).makespan == sim.run(
            graph, schedule
        ).makespan

    # maxpar is excluded: whole-machine allocations make every matmul's
    # internal ring exchange cross every link, and the resulting
    # contention (which the Gantt estimate ignores) is unbounded in
    # principle — the very effect the contention ablation bench measures.
    @given(
        pipeline_cases(),
        st.sampled_from(sorted(set(ALGORITHMS) - {"maxpar"})),
    )
    @settings(max_examples=20, deadline=None)
    def test_scheduler_estimate_brackets_simulation(self, case, algorithm):
        # Same cost model and execution discipline, but the scheduler's
        # Gantt ignores network contention (its estimates are standalone
        # durations), so the simulated makespan can exceed the estimate
        # when concurrent ring exchanges and redistributions saturate
        # the backbone — by a bounded factor, never below the estimate's
        # optimistic floor.
        graph, _alloc = case
        model = AnalyticalTaskModel(_PLATFORM)
        costs = SchedulingCosts(graph, _PLATFORM, model)
        schedule = schedule_dag(graph, costs, algorithm)
        trace = ApplicationSimulator(_PLATFORM, model).run(graph, schedule)
        estimate = schedule.makespan_estimate
        assert 0.65 * estimate - 1e-6 <= trace.makespan <= 3.0 * estimate + 1e-6


class TestEngineWorkConservation:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1000.0),  # work
                st.floats(min_value=0.0, max_value=5.0),  # latency
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=10.0, max_value=1000.0),  # capacity
    )
    @settings(max_examples=40, deadline=None)
    def test_total_time_conserves_work(self, jobs, capacity):
        """On one shared resource, the last completion time equals
        total work / capacity plus the tail latency interleaving —
        bounded below by work conservation."""
        engine = SimulationEngine()
        cpu = Resource("cpu", capacity)
        for i, (work, latency) in enumerate(jobs):
            engine.add_action(
                Action(f"a{i}", work=work, consumption={cpu: 1.0},
                       latency=latency)
            )
        makespan = engine.run()
        total_work = sum(w for w, _l in jobs)
        max_latency = max(l for _w, l in jobs)
        # The resource can never process faster than its capacity...
        assert makespan >= total_work / capacity - 1e-6
        # ...and never idles longer than the longest latency phase.
        assert makespan <= total_work / capacity + max_latency + 1e-6

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2,
                 max_size=8)
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_actions_finish_together(self, works):
        """Identical-weight actions sharing one resource under max-min
        fairness progress at equal rates: completion order follows work
        order."""
        engine = SimulationEngine()
        cpu = Resource("cpu", 50.0)
        finishes = {}
        for i, work in enumerate(works):
            engine.add_action(
                Action(
                    f"a{i}",
                    work=work,
                    consumption={cpu: 1.0},
                    on_complete=lambda e, a: finishes.__setitem__(a.name, e.now),
                )
            )
        engine.run()
        order = sorted(range(len(works)), key=lambda i: works[i])
        finish_times = [finishes[f"a{i}"] for i in order]
        assert all(
            b >= a - 1e-9 for a, b in zip(finish_times, finish_times[1:])
        )
