"""Property tests: the optimized solver equals the reference exactly.

``solve_rates`` (incremental loads, dirty-resource re-sums, fast paths)
must return *bit-identical* rates to ``solve_rates_reference`` (the
textbook loop) on every instance — the engine's determinism and the
study's reproducibility rest on this.  Equality here is ``==`` on the
floats, not approximate.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid.sharing import solve_rates, solve_rates_reference


@st.composite
def sharing_instances(draw):
    """Random (consumption, capacity) instances over small id pools."""
    num_res = draw(st.integers(min_value=1, max_value=6))
    resources = [f"r{i}" for i in range(num_res)]
    capacity = {
        r: draw(
            st.floats(
                min_value=0.1, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            )
        )
        for r in resources
    }
    num_actions = draw(st.integers(min_value=1, max_value=8))
    consumption = {}
    for a in range(num_actions):
        used = draw(
            st.lists(
                st.sampled_from(resources),
                min_size=0,
                max_size=num_res,
                unique=True,
            )
        )
        consumption[f"a{a}"] = {
            r: draw(
                st.floats(
                    min_value=1e-6, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                )
            )
            for r in used
        }
    return consumption, capacity


@given(sharing_instances())
@settings(max_examples=200, deadline=None)
def test_solver_equals_reference_bitwise(instance):
    consumption, capacity = instance
    fast = solve_rates(consumption, capacity)
    reference = solve_rates_reference(consumption, capacity)
    assert set(fast) == set(reference) == set(consumption)
    for action in consumption:
        a, b = fast[action], reference[action]
        # Bitwise: exact equality, inf included.
        assert a == b, (action, a.hex(), b.hex())


@given(sharing_instances())
@settings(max_examples=50, deadline=None)
def test_validate_flag_never_changes_rates(instance):
    consumption, capacity = instance
    assert solve_rates(consumption, capacity) == solve_rates(
        consumption, capacity, validate=False
    )


def test_unconstrained_action_is_infinite():
    rates = solve_rates({"a": {}}, {})
    assert math.isinf(rates["a"])
    assert rates == solve_rates_reference({"a": {}}, {})


def test_single_action_fast_path_matches_reference():
    consumption = {"a": {"r0": 2.0, "r1": 0.5}}
    capacity = {"r0": 4.0, "r1": 3.0}
    fast = solve_rates(consumption, capacity)
    assert fast == solve_rates_reference(consumption, capacity)
    assert fast["a"] == 2.0  # min(4/2, 3/0.5)


def test_shared_bottleneck_chain():
    # b is frozen with a on the shared bottleneck r0; c then gets the
    # leftovers of r1 — exercises deduction + dirty re-sum rounds.
    consumption = {
        "a": {"r0": 1.0},
        "b": {"r0": 1.0, "r1": 1.0},
        "c": {"r1": 1.0},
    }
    capacity = {"r0": 2.0, "r1": 10.0}
    fast = solve_rates(consumption, capacity)
    assert fast == solve_rates_reference(consumption, capacity)
    assert fast["a"] == fast["b"] == 1.0
    assert fast["c"] == 9.0
