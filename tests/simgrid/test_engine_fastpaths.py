"""Tests for the engine's hot-path invariants.

Covers the fast paths the performance work introduced — capacity
pruning, re-solve skipping for separable working sets, standalone
rates for unshared entrants — and the determinism they must preserve:
the observable event stream of a simulation is identical across runs.
"""

from __future__ import annotations

import pytest

from repro.dag.generator import DagParameters, generate_dag
from repro.obs.recorder import Recorder, recording
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import Resource
from repro.simgrid.simulator import ApplicationSimulator


class TestCapacityPruning:
    def test_capacity_shrinks_as_actions_complete(self):
        eng = SimulationEngine()
        cpu1 = Resource("cpu1", 100.0)
        cpu2 = Resource("cpu2", 100.0)
        eng.add_action(Action("fast", work=100.0, consumption={cpu1: 1.0}))
        eng.add_action(
            Action("slow", work=400.0, consumption={cpu1: 1.0, cpu2: 1.0})
        )
        assert set(eng._capacity) == {cpu1, cpu2}
        assert eng._cap_refs[cpu1] == 2
        eng.step()  # "fast" completes (shares cpu1, so both run at 50)
        assert eng._cap_refs[cpu1] == 1
        eng.run()
        # A long-lived engine must not accumulate stale resources.
        assert eng._capacity == {}
        assert eng._cap_refs == {}

    def test_reused_engine_does_not_grow(self):
        eng = SimulationEngine()
        for i in range(5):
            cpu = Resource(f"cpu{i}", 10.0)
            eng.add_action(Action(f"a{i}", work=10.0, consumption={cpu: 1.0}))
            eng.run()
            assert eng._capacity == {}


class TestSolveSkipping:
    def test_disjoint_actions_never_joint_solve(self):
        eng = SimulationEngine()
        cpu1 = Resource("cpu1", 100.0)
        cpu2 = Resource("cpu2", 50.0)
        a = eng.add_action(Action("a", work=100.0, consumption={cpu1: 1.0}))
        b = eng.add_action(Action("b", work=100.0, consumption={cpu2: 1.0}))
        assert eng.run() == pytest.approx(2.0)
        # Sole users get their standalone fair share directly; the
        # completion of "a" frees nothing anyone shares.
        assert eng.solver_calls == 0
        assert a.finish_time == pytest.approx(1.0)
        assert b.finish_time == pytest.approx(2.0)

    def test_shared_actions_go_through_the_solver(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        a = eng.add_action(Action("a", work=100.0, consumption={cpu: 1.0}))
        b = eng.add_action(Action("b", work=100.0, consumption={cpu: 1.0}))
        assert eng.run() == pytest.approx(2.0)
        assert eng.solver_calls >= 1
        assert a.finish_time == b.finish_time == pytest.approx(2.0)

    def test_latency_entrant_gets_standalone_rate(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        eng.add_action(
            Action("a", work=100.0, consumption={cpu: 1.0}, latency=1.0)
        )
        assert eng.run() == pytest.approx(2.0)
        assert eng.solver_calls == 0

    def test_entrant_sharing_with_pending_action_resolves(self):
        eng = SimulationEngine()
        cpu = Resource("cpu", 100.0)
        eng.add_action(Action("a", work=100.0, consumption={cpu: 1.0}))
        eng.add_action(
            Action("b", work=50.0, consumption={cpu: 1.0}, latency=0.5)
        )
        # a runs alone for 0.5s (50 work left), then shares 50/50 with
        # b: both need another 1.0s.
        assert eng.run() == pytest.approx(1.5)
        assert eng.solver_calls >= 1


def _small_study_cell():
    platform = bayreuth_cluster(8)
    suite = build_analytical_suite(platform)
    graph = generate_dag(
        DagParameters(
            num_input_matrices=4, add_ratio=0.5, n=2000, sample=0, seed=3
        )
    )
    costs = SchedulingCosts(
        graph,
        platform,
        suite.task_model,
        startup_model=suite.startup_model,
        redistribution_model=suite.redistribution_model,
    )
    schedule = schedule_dag(graph, costs, "hcpa")
    simulator = ApplicationSimulator(
        platform,
        suite.task_model,
        startup_model=suite.startup_model,
        redistribution_model=suite.redistribution_model,
    )
    return graph, schedule, simulator


class TestEventOrderDeterminism:
    def test_event_stream_identical_across_runs(self):
        graph, schedule, simulator = _small_study_cell()
        streams = []
        for _ in range(2):
            rec = Recorder.to_memory()
            with recording(rec):
                trace = simulator.run(graph, schedule)
            events = [
                r for r in rec.sink.records if r.get("type") == "event"
            ]
            streams.append((trace.makespan, events))
        (mk1, ev1), (mk2, ev2) = streams
        assert mk1 == mk2
        assert ev1 == ev2  # same events, same order, same fields

    def test_fresh_simulator_reproduces_the_stream(self):
        graph, schedule, simulator = _small_study_cell()
        rec1 = Recorder.to_memory()
        with recording(rec1):
            simulator.run(graph, schedule)
        graph2, schedule2, simulator2 = _small_study_cell()
        rec2 = Recorder.to_memory()
        with recording(rec2):
            simulator2.run(graph2, schedule2)
        events1 = [r for r in rec1.sink.records if r.get("type") == "event"]
        events2 = [r for r in rec2.sink.records if r.get("type") == "event"]
        assert events1 == events2
