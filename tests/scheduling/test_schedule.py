"""Tests for the Schedule/Placement data structures."""

import pytest

from repro.platform.cluster import ClusterPlatform
from repro.scheduling.schedule import Placement, Schedule
from repro.util.errors import InvalidScheduleError


@pytest.fixture
def small_platform():
    return ClusterPlatform(num_nodes=4)


def chain_schedule(chain_dag, hosts=(0,)):
    placements = {
        t: Placement(task_id=t, hosts=hosts, est_start=float(t), est_finish=t + 1.0)
        for t in chain_dag.task_ids
    }
    return Schedule(placements, chain_dag.topological_order(), algorithm="t")


class TestPlacement:
    def test_empty_hosts_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Placement(task_id=0, hosts=())

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Placement(task_id=0, hosts=(1, 1))

    def test_negative_interval_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Placement(task_id=0, hosts=(0,), est_start=5.0, est_finish=4.0)

    def test_num_procs(self):
        assert Placement(task_id=0, hosts=(0, 3, 5)).num_procs == 3


class TestSchedule:
    def test_accessors(self, chain_dag):
        sched = chain_schedule(chain_dag, hosts=(0, 2))
        assert sched.hosts(1) == (0, 2)
        assert sched.allocation(1) == 2
        assert sched.allocations() == {0: 2, 1: 2, 2: 2}
        assert len(sched) == 3

    def test_unknown_task_raises(self, chain_dag):
        sched = chain_schedule(chain_dag)
        with pytest.raises(InvalidScheduleError):
            sched.hosts(99)

    def test_order_must_match_placements(self, chain_dag):
        placements = {
            t: Placement(task_id=t, hosts=(0,)) for t in chain_dag.task_ids
        }
        with pytest.raises(InvalidScheduleError):
            Schedule(placements, [0, 1])  # missing 2
        with pytest.raises(InvalidScheduleError):
            Schedule(placements, [0, 1, 2, 2])  # duplicate


class TestValidate:
    def test_valid_schedule_passes(self, chain_dag, small_platform):
        chain_schedule(chain_dag).validate(chain_dag, small_platform)

    def test_missing_task_detected(self, chain_dag, small_platform):
        placements = {
            0: Placement(task_id=0, hosts=(0,)),
            1: Placement(task_id=1, hosts=(0,)),
        }
        sched = Schedule(placements, [0, 1])
        with pytest.raises(InvalidScheduleError):
            sched.validate(chain_dag, small_platform)

    def test_out_of_range_host_detected(self, chain_dag, small_platform):
        sched = chain_schedule(chain_dag, hosts=(7,))
        with pytest.raises(InvalidScheduleError):
            sched.validate(chain_dag, small_platform)

    def test_precedence_violation_detected(self, chain_dag, small_platform):
        placements = {
            t: Placement(task_id=t, hosts=(t,)) for t in chain_dag.task_ids
        }
        sched = Schedule(placements, [1, 0, 2])
        with pytest.raises(InvalidScheduleError):
            sched.validate(chain_dag, small_platform)

    def test_gantt_overlap_detected(self, chain_dag, small_platform):
        placements = {
            t: Placement(
                task_id=t, hosts=(0,), est_start=0.0, est_finish=10.0
            )
            for t in chain_dag.task_ids
        }
        sched = Schedule(placements, chain_dag.topological_order())
        with pytest.raises(InvalidScheduleError):
            sched.validate(chain_dag, small_platform)

    def test_zero_length_estimates_allowed(self, chain_dag, small_platform):
        placements = {
            t: Placement(task_id=t, hosts=(0,)) for t in chain_dag.task_ids
        }
        sched = Schedule(placements, chain_dag.topological_order())
        sched.validate(chain_dag, small_platform)
