"""Tests for the baseline allocation strategies."""

import pytest

from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind, TaskTimeModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.baselines import full_parallel_allocate, sequential_allocate
from repro.scheduling.costs import SchedulingCosts


class KneeModel(TaskTimeModel):
    """Fastest at p = 4; slower on either side (overhead knee)."""

    name = "knee"

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return 10.0 / min(p, 4) + 0.5 * max(0, p - 4)


class TestSequential:
    def test_all_ones(self, small_dag, platform):
        costs = SchedulingCosts(small_dag, platform, AnalyticalTaskModel(platform))
        alloc = sequential_allocate(small_dag, costs)
        assert all(a == 1 for a in alloc.values())
        assert set(alloc) == set(small_dag.task_ids)


class TestFullParallel:
    def test_analytical_prefers_whole_machine(self, chain_dag, platform):
        costs = SchedulingCosts(chain_dag, platform, AnalyticalTaskModel(platform))
        alloc = full_parallel_allocate(chain_dag, costs)
        # Near-perfect analytical scaling: the per-task optimum is P.
        assert all(a == platform.num_nodes for a in alloc.values())

    def test_knee_model_stops_at_optimum(self, chain_dag, platform):
        costs = SchedulingCosts(chain_dag, platform, KneeModel())
        alloc = full_parallel_allocate(chain_dag, costs)
        assert all(a == 4 for a in alloc.values())
