"""Tests for the CPA allocation phase."""

import pytest

from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind, TaskTimeModel
from repro.platform.cluster import ClusterPlatform
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.cpa import average_area, cpa_allocate


class FlatModel(TaskTimeModel):
    """A model whose task times never improve with more processors."""

    name = "flat"

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return 10.0


def analytical_costs_for(graph, num_nodes=32):
    platform = bayreuth_cluster(num_nodes)
    return SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))


class TestCpaAllocate:
    def test_single_task_grows_until_area_bound(self):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=2000))
        costs = analytical_costs_for(g)
        alloc = cpa_allocate(g, costs)
        # A single task IS the critical path; T_A = p*T(p)/32 rises as p
        # grows, T_CP = T(p) falls; the crossover for near-perfect
        # scaling sits near sqrt? — at least several processors.
        assert alloc[0] > 1

    def test_chain_gets_large_allocations(self, chain_dag):
        # A chain has no task parallelism: data parallelism is the only
        # lever, so CPA should allocate generously.
        costs = analytical_costs_for(chain_dag)
        alloc = cpa_allocate(chain_dag, costs)
        assert all(a >= 2 for a in alloc.values())

    def test_flat_model_never_grows(self, small_dag):
        platform = bayreuth_cluster()
        costs = SchedulingCosts(small_dag, platform, FlatModel())
        alloc = cpa_allocate(small_dag, costs)
        assert all(a == 1 for a in alloc.values())

    def test_allocations_within_bounds(self, small_dag):
        costs = analytical_costs_for(small_dag)
        alloc = cpa_allocate(small_dag, costs)
        assert set(alloc) == set(small_dag.task_ids)
        assert all(1 <= a <= 32 for a in alloc.values())

    def test_stop_criterion_satisfied_or_stuck(self, small_dag):
        from repro.dag.analysis import critical_path_length

        costs = analytical_costs_for(small_dag)
        alloc = cpa_allocate(small_dag, costs)
        t_cp = critical_path_length(small_dag, lambda t: costs.task_time(t, alloc[t]))
        t_a = average_area(costs, alloc)
        # Either the CPA criterion holds, or every critical-path task
        # stopped giving positive gain / hit the cap.
        if t_cp > t_a:
            from repro.dag.analysis import critical_path

            cp = critical_path(small_dag, lambda t: costs.task_time(t, alloc[t]))
            for t in cp:
                p = alloc[t]
                if p < 32:
                    gain = costs.task_time(t, p) / p - costs.task_time(
                        t, p + 1
                    ) / (p + 1)
                    assert gain <= 0

    def test_deterministic(self, small_dag):
        costs = analytical_costs_for(small_dag)
        assert cpa_allocate(small_dag, costs) == cpa_allocate(small_dag, costs)

    def test_small_cluster_cap(self, chain_dag):
        costs = analytical_costs_for(chain_dag, num_nodes=2)
        alloc = cpa_allocate(chain_dag, costs)
        assert all(a <= 2 for a in alloc.values())

    def test_empty_graph(self):
        g = TaskGraph()
        costs = analytical_costs_for(g)
        assert cpa_allocate(g, costs) == {}


class TestAverageArea:
    def test_formula(self):
        g = TaskGraph()
        g.add_task(Task(task_id=0, kernel=MATMUL, n=2000))
        platform = bayreuth_cluster(4)
        costs = SchedulingCosts(g, platform, FlatModel())
        # area = 2 procs * 10 s / 4 nodes = 5.
        assert average_area(costs, {0: 2}) == pytest.approx(5.0)
