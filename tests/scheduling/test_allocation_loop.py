"""Tests for the shared CPA-family allocation skeleton."""

import pytest

from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.models.base import ModelKind, TaskTimeModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.cpa import allocation_loop


class PerfectScaling(TaskTimeModel):
    name = "perfect"

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return 100.0 / p


@pytest.fixture
def two_task_graph():
    g = TaskGraph()
    for i in range(2):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=100))
    g.add_edge(0, 1)
    return g


def costs_for(graph, num_nodes=8):
    platform = bayreuth_cluster(num_nodes)
    return SchedulingCosts(graph, platform, PerfectScaling())


class TestAllocationLoop:
    def test_select_none_stops_immediately(self, two_task_graph):
        costs = costs_for(two_task_graph)
        alloc = allocation_loop(
            two_task_graph, costs, select=lambda cands, a: None
        )
        assert alloc == {0: 1, 1: 1}

    def test_custom_stop_hook_honoured(self, two_task_graph):
        costs = costs_for(two_task_graph)
        calls = []

        def stop(t_cp, t_a, alloc):
            calls.append((t_cp, t_a))
            return len(calls) >= 3  # stop after two growth steps

        alloc = allocation_loop(
            two_task_graph,
            costs,
            select=lambda cands, a: cands[0],
            stop=stop,
        )
        assert sum(alloc.values()) == 2 + 2  # two steps of +1

    def test_max_alloc_cap(self, two_task_graph):
        costs = costs_for(two_task_graph)
        alloc = allocation_loop(
            two_task_graph,
            costs,
            select=lambda cands, a: cands[0],
            stop=lambda *_: False,  # never stop voluntarily
            max_alloc=3,
        )
        # The loop exhausts candidates at the cap and terminates.
        assert all(a <= 3 for a in alloc.values())

    def test_terminates_even_without_stop(self, two_task_graph):
        # With perfect scaling and no stop, every task saturates the
        # machine and the loop ends when nothing can grow.
        costs = costs_for(two_task_graph, num_nodes=4)
        alloc = allocation_loop(
            two_task_graph,
            costs,
            select=lambda cands, a: cands[0],
            stop=lambda *_: False,
        )
        assert all(a == 4 for a in alloc.values())

    def test_empty_graph(self):
        g = TaskGraph()
        costs = costs_for(g)
        assert allocation_loop(g, costs, select=lambda c, a: None) == {}

    def test_selection_sees_only_growable_critical_path_tasks(
        self, two_task_graph
    ):
        costs = costs_for(two_task_graph, num_nodes=2)
        seen = []

        def select(cands, alloc):
            seen.append(tuple(cands))
            return cands[0] if cands else None

        allocation_loop(
            two_task_graph, costs, select=select, stop=lambda *_: False
        )
        # Both chain tasks are always on the critical path until capped.
        assert all(set(c) <= {0, 1} for c in seen)
        assert seen  # the hook actually ran


class TestAllocDoneEvent:
    """The ``sched.alloc_done`` trace event carries reason + bounds."""

    def _alloc_done(self, recorder):
        from repro.obs.recorder import recording

        events = [
            r for r in recorder.sink.records
            if r.get("name") == "sched.alloc_done"
        ]
        assert len(events) == 1
        return events[0]

    def _run(self, graph, costs, **kwargs):
        import math

        from repro.obs.recorder import Recorder, recording

        rec = Recorder.to_memory()
        with recording(rec):
            allocation_loop(graph, costs, **kwargs)
        event = self._alloc_done(rec)
        assert math.isfinite(event["t_cp"])
        assert math.isfinite(event["t_a"])
        return event

    def test_criterion_stop_reports_bounds(self, two_task_graph):
        costs = costs_for(two_task_graph)
        event = self._run(
            two_task_graph, costs, select=lambda cands, a: cands[0]
        )
        assert event["reason"] == "criterion"
        # The CPA criterion stopped the loop, so the reported bounds
        # must satisfy it.
        assert event["t_cp"] <= event["t_a"]

    def test_no_candidate_stop_reason(self, two_task_graph):
        costs = costs_for(two_task_graph)
        event = self._run(
            two_task_graph, costs, select=lambda cands, a: None
        )
        assert event["reason"] == "no_beneficial_candidate"

    def test_capped_critical_path_stop_reason(self, two_task_graph):
        costs = costs_for(two_task_graph, num_nodes=4)
        event = self._run(
            two_task_graph,
            costs,
            select=lambda cands, a: cands[0],
            stop=lambda *_: False,
        )
        assert event["reason"] == "critical_path_capped"
        assert event["total_alloc"] == 8  # both tasks saturated (4 + 4)
