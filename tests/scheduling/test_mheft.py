"""Tests for M-HEFT (one-phase mixed-parallel scheduling)."""

import pytest

from repro.models.analytical import AnalyticalTaskModel
from repro.models.base import ModelKind, TaskTimeModel
from repro.platform.personalities import bayreuth_cluster, heterogeneous_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.scheduling.mheft import mheft_schedule
from repro.util.errors import InvalidScheduleError


class KneeModel(TaskTimeModel):
    """Fastest at p = 4; overheads grow linearly past that."""

    name = "knee"

    @property
    def kind(self):
        return ModelKind.MEASURED

    def duration(self, task, p):
        return 20.0 / min(p, 4) + 1.0 * max(0, p - 4)


def costs_for(graph, platform=None, model=None):
    platform = platform or bayreuth_cluster()
    model = model or AnalyticalTaskModel(platform)
    return SchedulingCosts(graph, platform, model), platform


class TestMheftSchedule:
    def test_valid_schedule(self, small_dag):
        costs, platform = costs_for(small_dag)
        sched = mheft_schedule(small_dag, costs)
        sched.validate(small_dag, platform)
        assert sched.algorithm == "mheft"
        assert len(sched) == len(small_dag)

    def test_registered_in_driver(self, small_dag):
        costs, platform = costs_for(small_dag)
        sched = schedule_dag(small_dag, costs, "mheft")
        sched.validate(small_dag, platform)

    def test_knee_model_stops_allocation_at_optimum(self, chain_dag):
        # EFT with a knee model never grows beyond the knee: extra
        # processors only delay the finish.
        costs, _ = costs_for(chain_dag, model=KneeModel())
        sched = mheft_schedule(chain_dag, costs)
        assert all(sched.allocation(t) == 4 for t in chain_dag.task_ids)

    def test_independent_tasks_spread_over_machine(self, diamond_dag):
        costs, _ = costs_for(diamond_dag, model=KneeModel())
        sched = mheft_schedule(diamond_dag, costs)
        h1, h2 = set(sched.hosts(1)), set(sched.hosts(2))
        assert not (h1 & h2)  # parallel branches on disjoint hosts

    def test_max_alloc_fraction_cap(self, chain_dag):
        costs, _ = costs_for(chain_dag)
        sched = mheft_schedule(chain_dag, costs, max_alloc_fraction=0.25)
        assert all(sched.allocation(t) <= 8 for t in chain_dag.task_ids)

    def test_invalid_fraction_rejected(self, chain_dag):
        costs, _ = costs_for(chain_dag)
        with pytest.raises(InvalidScheduleError):
            mheft_schedule(chain_dag, costs, max_alloc_fraction=0.0)

    def test_prefers_fast_hosts_on_heterogeneous_machine(self, chain_dag):
        platform = heterogeneous_cluster((1.0, 1.0, 0.25, 0.25))
        costs, _ = costs_for(chain_dag, platform=platform)
        sched = mheft_schedule(chain_dag, costs, max_alloc_fraction=0.5)
        for t in chain_dag.task_ids:
            assert set(sched.hosts(t)) <= {0, 1}

    def test_deterministic(self, small_dag):
        costs, _ = costs_for(small_dag)
        a = mheft_schedule(small_dag, costs)
        b = mheft_schedule(small_dag, costs)
        assert a.allocations() == b.allocations()
        assert a.order == b.order

    def test_competitive_with_cpa_family(self, study_context):
        # M-HEFT's greedy EFT should land in the same makespan class as
        # the CPA family under realistic (profile) estimates.
        ctx = study_context
        suite = ctx.profile_suite
        wins = 0
        total = 0
        for params, graph in [d for d in ctx.dags if d[0].sample == 0][:6]:
            costs = SchedulingCosts(
                graph, ctx.platform, suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            mheft = ctx.emulator.makespan(graph, schedule_dag(graph, costs, "mheft"))
            mcpa = ctx.emulator.makespan(graph, schedule_dag(graph, costs, "mcpa"))
            total += 1
            if mheft <= 1.5 * mcpa:
                wins += 1
        assert wins >= total - 1  # at most one blow-up allowed
