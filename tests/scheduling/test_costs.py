"""Tests for the SchedulingCosts estimate provider."""

import pytest

from repro.models.analytical import AnalyticalTaskModel
from repro.models.overheads import LinearRedistributionOverheadModel, LinearStartupModel
from repro.models.regression import LinearFit
from repro.scheduling.costs import SchedulingCosts


class TestTaskTime:
    def test_matches_model_without_overheads(self, small_dag, platform):
        model = AnalyticalTaskModel(platform)
        costs = SchedulingCosts(small_dag, platform, model)
        t = small_dag.task_ids[0]
        assert costs.task_time(t, 4) == pytest.approx(
            model.duration(small_dag.task(t), 4)
        )

    def test_includes_startup_overhead(self, small_dag, platform):
        model = AnalyticalTaskModel(platform)
        startup = LinearStartupModel(LinearFit(a=0.0, b=1.5))
        costs = SchedulingCosts(small_dag, platform, model, startup_model=startup)
        t = small_dag.task_ids[0]
        assert costs.task_time(t, 4) == pytest.approx(
            model.duration(small_dag.task(t), 4) + 1.5
        )

    def test_work_is_area(self, analytical_costs, small_dag):
        t = small_dag.task_ids[0]
        assert analytical_costs.work(t, 8) == pytest.approx(
            8 * analytical_costs.task_time(t, 8)
        )

    def test_caching_returns_same_value(self, analytical_costs, small_dag):
        t = small_dag.task_ids[0]
        assert analytical_costs.task_time(t, 4) == analytical_costs.task_time(t, 4)


class TestRedistributionTime:
    def test_same_hosts_only_overhead(self, small_dag, platform):
        model = AnalyticalTaskModel(platform)
        redist = LinearRedistributionOverheadModel(LinearFit(a=0.0, b=0.2))
        costs = SchedulingCosts(
            small_dag, platform, model, redistribution_model=redist
        )
        src = small_dag.task_ids[0]
        assert costs.redistribution_time(src, 4, 4, same_hosts=True) == 0.2

    def test_transfer_parallelises_over_ports(self, analytical_costs, small_dag):
        src = small_dag.task_ids[0]
        t11 = analytical_costs.redistribution_time(src, 1, 1)
        t44 = analytical_costs.redistribution_time(src, 4, 4)
        assert t44 < t11
        # 4 concurrent port pairs => ~4x faster transfer.
        assert t11 / t44 == pytest.approx(4.0, rel=0.05)

    def test_ports_bounded_by_smaller_side(self, analytical_costs, small_dag):
        src = small_dag.task_ids[0]
        assert analytical_costs.redistribution_time(
            src, 1, 32
        ) == pytest.approx(analytical_costs.redistribution_time(src, 32, 1))

    def test_num_procs(self, analytical_costs, platform):
        assert analytical_costs.num_procs == platform.num_nodes
