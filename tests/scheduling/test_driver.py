"""Tests for the schedule_dag driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generator import DagParameters, generate_dag
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import ALGORITHMS, schedule_dag


class TestDriver:
    def test_unknown_algorithm_rejected(self, small_dag, platform):
        costs = SchedulingCosts(small_dag, platform, AnalyticalTaskModel(platform))
        with pytest.raises(ValueError, match="unknown algorithm"):
            schedule_dag(small_dag, costs, "heft")

    def test_registry_contents(self):
        assert {"cpa", "hcpa", "mcpa", "seq", "maxpar"} <= set(ALGORITHMS)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_algorithms_produce_valid_schedules(
        self, small_dag, platform, algorithm
    ):
        costs = SchedulingCosts(small_dag, platform, AnalyticalTaskModel(platform))
        sched = schedule_dag(small_dag, costs, algorithm)
        sched.validate(small_dag, platform)
        assert sched.algorithm == algorithm

    def test_algorithms_differ_in_makespan_estimates(self, platform):
        params = DagParameters(
            num_input_matrices=8, add_ratio=0.5, n=3000, seed=2
        )
        graph = generate_dag(params)
        costs = SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))
        estimates = {
            alg: schedule_dag(graph, costs, alg).makespan_estimate
            for alg in ("seq", "cpa", "maxpar")
        }
        # CPA should beat the pure-task-parallel baseline on a 10-task
        # DAG over 32 nodes (data parallelism matters).
        assert estimates["cpa"] < estimates["seq"]

    @given(
        seed=st.integers(min_value=0, max_value=200),
        v=st.sampled_from((2, 4, 8)),
        alg=st.sampled_from(("cpa", "hcpa", "mcpa")),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_dags_always_schedulable(self, seed, v, alg):
        platform = bayreuth_cluster()
        graph = generate_dag(
            DagParameters(num_input_matrices=v, add_ratio=0.75, seed=seed)
        )
        costs = SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))
        sched = schedule_dag(graph, costs, alg)
        sched.validate(graph, platform)
        assert len(sched) == len(graph)
