"""Tests for the MCPA (level-bounded) allocation phase."""

import pytest

from repro.dag.analysis import precedence_levels
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.cpa import cpa_allocate
from repro.scheduling.mcpa import mcpa_allocate


def costs_for(graph, num_nodes=32):
    platform = bayreuth_cluster(num_nodes)
    return SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))


def level_sums(graph, alloc):
    levels = precedence_levels(graph)
    sums = {}
    for t, lvl in levels.items():
        sums[lvl] = sums.get(lvl, 0) + alloc[t]
    return sums


@pytest.fixture
def wide_dag():
    """One source feeding eight parallel multiplications."""
    g = TaskGraph(name="wide")
    g.add_task(Task(task_id=0, kernel=MATMUL, n=3000))
    for i in range(1, 9):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=3000))
        g.add_edge(0, i)
    return g


class TestLevelConstraint:
    def test_level_sums_never_exceed_p(self, wide_dag):
        costs = costs_for(wide_dag, num_nodes=16)
        alloc = mcpa_allocate(wide_dag, costs)
        for lvl, total in level_sums(wide_dag, alloc).items():
            assert total <= 16

    def test_constraint_holds_on_paper_dags(self):
        from repro.dag.generator import generate_paper_dags

        for params, graph in generate_paper_dags(seed=0, sizes=(2000,))[:6]:
            costs = costs_for(graph)
            alloc = mcpa_allocate(graph, costs)
            for lvl, total in level_sums(graph, alloc).items():
                assert total <= 32

    def test_mcpa_never_allocates_more_total_than_cpa_on_tight_levels(
        self, wide_dag
    ):
        costs = costs_for(wide_dag, num_nodes=16)
        cpa = cpa_allocate(wide_dag, costs)
        mcpa = mcpa_allocate(wide_dag, costs)
        # CPA may violate the level budget; MCPA may not.
        assert sum(mcpa.values()) <= sum(cpa.values())

    def test_reduces_to_cpa_for_chain(self, chain_dag):
        # Every level holds one task, so the budget never binds.
        costs = costs_for(chain_dag)
        assert mcpa_allocate(chain_dag, costs) == cpa_allocate(chain_dag, costs)

    def test_allocations_valid(self, small_dag):
        costs = costs_for(small_dag)
        alloc = mcpa_allocate(small_dag, costs)
        assert set(alloc) == set(small_dag.task_ids)
        assert all(1 <= a <= 32 for a in alloc.values())

    def test_deterministic(self, small_dag):
        costs = costs_for(small_dag)
        assert mcpa_allocate(small_dag, costs) == mcpa_allocate(small_dag, costs)
