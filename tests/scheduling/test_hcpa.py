"""Tests for the HCPA allocation phase."""

import math

import pytest

from repro.dag.analysis import precedence_levels
from repro.dag.graph import Task, TaskGraph
from repro.dag.kernels import MATMUL
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.cpa import cpa_allocate
from repro.scheduling.hcpa import ReferenceCluster, hcpa_allocate


def costs_for(graph, num_nodes=32):
    platform = bayreuth_cluster(num_nodes)
    return SchedulingCosts(graph, platform, AnalyticalTaskModel(platform))


@pytest.fixture
def wide_dag():
    g = TaskGraph(name="wide")
    g.add_task(Task(task_id=0, kernel=MATMUL, n=3000))
    for i in range(1, 5):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=3000))
        g.add_edge(0, i)
    return g


class TestConcurrencyCap:
    def test_cap_is_even_share_of_level(self, wide_dag):
        costs = costs_for(wide_dag, num_nodes=32)
        alloc = hcpa_allocate(wide_dag, costs)
        levels = precedence_levels(wide_dag)
        # The 4-task level: each task capped at ceil(32 / 4) = 8.
        for t, lvl in levels.items():
            if lvl == 1:
                assert alloc[t] <= 8

    def test_chain_uncapped(self, chain_dag):
        # |level| = 1 everywhere: HCPA with beta=1 is exactly CPA.
        costs = costs_for(chain_dag)
        assert hcpa_allocate(chain_dag, costs) == cpa_allocate(chain_dag, costs)

    def test_caps_curb_cpa_overallocation_within_levels(self, wide_dag):
        costs = costs_for(wide_dag, num_nodes=32)
        cpa = cpa_allocate(wide_dag, costs)
        hcpa = hcpa_allocate(wide_dag, costs)
        levels = precedence_levels(wide_dag)
        children = [t for t, lvl in levels.items() if lvl == 1]
        # Within the crowded level, HCPA never exceeds the even share,
        # and never allocates more to a task than unconstrained CPA.
        assert max(hcpa[t] for t in children) <= 8
        assert max(hcpa[t] for t in children) <= max(cpa[t] for t in children)

    def test_valid_allocations(self, small_dag):
        costs = costs_for(small_dag)
        alloc = hcpa_allocate(small_dag, costs)
        assert set(alloc) == set(small_dag.task_ids)
        assert all(1 <= a <= 32 for a in alloc.values())

    def test_differs_from_mcpa_somewhere(self):
        # HCPA and MCPA must produce genuinely different schedules on the
        # paper's DAG population ("leading to different schedules").
        from repro.dag.generator import generate_paper_dags
        from repro.scheduling.mcpa import mcpa_allocate

        differs = False
        for params, graph in generate_paper_dags(seed=0, sizes=(2000,))[:9]:
            costs = costs_for(graph)
            if hcpa_allocate(graph, costs) != mcpa_allocate(graph, costs):
                differs = True
                break
        assert differs


class TestBetaDamping:
    def test_larger_beta_allocates_no_more(self, small_dag):
        costs = costs_for(small_dag)
        relaxed = hcpa_allocate(small_dag, costs, beta=1.0)
        damped = hcpa_allocate(small_dag, costs, beta=2.0)
        assert sum(damped.values()) <= sum(relaxed.values())

    def test_invalid_beta_rejected(self, small_dag):
        costs = costs_for(small_dag)
        with pytest.raises(ValueError):
            hcpa_allocate(small_dag, costs, beta=0.5)


class TestReferenceCluster:
    def test_identity_on_homogeneous_platform(self):
        ref = ReferenceCluster(reference_flops=250e6, target_flops=250e6)
        for p in (1, 5, 32):
            assert ref.translate(p) == p

    def test_slower_target_gets_more_processors(self):
        ref = ReferenceCluster(reference_flops=500e6, target_flops=250e6)
        assert ref.translate(4) == 8

    def test_faster_target_still_gets_at_least_one(self):
        ref = ReferenceCluster(reference_flops=100e6, target_flops=1e9)
        assert ref.translate(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceCluster(reference_flops=0.0, target_flops=1.0)
        ref = ReferenceCluster(reference_flops=1.0, target_flops=1.0)
        with pytest.raises(ValueError):
            ref.translate(0)
