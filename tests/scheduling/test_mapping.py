"""Tests for the list-scheduling mapping phase."""

import pytest

from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import bayreuth_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.mapping import map_allocations
from repro.util.errors import InvalidScheduleError


def costs_for(graph, num_nodes=32):
    platform = bayreuth_cluster(num_nodes)
    return SchedulingCosts(graph, platform, AnalyticalTaskModel(platform)), platform


class TestMapping:
    def test_schedule_validates(self, small_dag):
        costs, platform = costs_for(small_dag)
        alloc = {t: 2 for t in small_dag.task_ids}
        sched = map_allocations(small_dag, costs, alloc, algorithm="x")
        sched.validate(small_dag, platform)
        assert sched.algorithm == "x"

    def test_allocation_respected(self, small_dag):
        costs, _ = costs_for(small_dag)
        alloc = {t: 3 for t in small_dag.task_ids}
        sched = map_allocations(small_dag, costs, alloc)
        assert all(sched.allocation(t) == 3 for t in small_dag.task_ids)

    def test_order_respects_precedence(self, small_dag):
        costs, _ = costs_for(small_dag)
        alloc = {t: 1 for t in small_dag.task_ids}
        sched = map_allocations(small_dag, costs, alloc)
        pos = {t: i for i, t in enumerate(sched.order)}
        for u, v in small_dag.edges():
            assert pos[u] < pos[v]

    def test_independent_tasks_use_disjoint_hosts(self, diamond_dag):
        costs, _ = costs_for(diamond_dag)
        alloc = {t: 2 for t in diamond_dag.task_ids}
        sched = map_allocations(diamond_dag, costs, alloc)
        h1 = set(sched.hosts(1))
        h2 = set(sched.hosts(2))
        # The parallel branches should not share processors (plenty free).
        assert not (h1 & h2)

    def test_makespan_estimate_positive(self, small_dag):
        costs, _ = costs_for(small_dag)
        alloc = {t: 2 for t in small_dag.task_ids}
        sched = map_allocations(small_dag, costs, alloc)
        assert sched.makespan_estimate > 0
        finishes = [p.est_finish for p in sched.placements.values()]
        assert sched.makespan_estimate == pytest.approx(max(finishes))

    def test_estimates_respect_data_dependencies(self, small_dag):
        costs, _ = costs_for(small_dag)
        alloc = {t: 2 for t in small_dag.task_ids}
        sched = map_allocations(small_dag, costs, alloc)
        for u, v in small_dag.edges():
            assert (
                sched.placements[v].est_start
                >= sched.placements[u].est_finish - 1e-9
            )

    def test_invalid_allocation_rejected(self, small_dag):
        costs, _ = costs_for(small_dag)
        with pytest.raises(InvalidScheduleError):
            map_allocations(small_dag, costs, {t: 0 for t in small_dag.task_ids})
        with pytest.raises(InvalidScheduleError):
            map_allocations(small_dag, costs, {t: 99 for t in small_dag.task_ids})

    def test_sequential_allocation_on_one_node_cluster(self, chain_dag):
        costs, platform = costs_for(chain_dag, num_nodes=1)
        alloc = {t: 1 for t in chain_dag.task_ids}
        sched = map_allocations(chain_dag, costs, alloc)
        sched.validate(chain_dag, platform)
        assert all(sched.hosts(t) == (0,) for t in chain_dag.task_ids)

    def test_locality_tiebreak_prefers_predecessor_hosts(self, chain_dag):
        # All hosts free at t=0: the chain should stay where its data is.
        costs, _ = costs_for(chain_dag)
        alloc = {t: 4 for t in chain_dag.task_ids}
        sched = map_allocations(chain_dag, costs, alloc)
        assert set(sched.hosts(1)) == set(sched.hosts(0))
        assert set(sched.hosts(2)) == set(sched.hosts(1))
