"""Sanity checks of the public API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.util",
    "repro.platform",
    "repro.dag",
    "repro.simgrid",
    "repro.models",
    "repro.scheduling",
    "repro.testbed",
    "repro.profiling",
    "repro.experiments",
    "repro.cache",
]


class TestImports:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackage_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", SUBPACKAGES + ["repro"])
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_version(self):
        # Sourced from package metadata when installed, with a pinned
        # fallback for PYTHONPATH=src use; either way it must be a
        # non-empty dotted version string.
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])

    def test_quickstart_docstring_example(self):
        # The package docstring promises this snippet works.
        from repro import StudyContext, figures

        ctx = StudyContext(seed=0)
        comparison = figures.figure1(ctx, n=2000)
        assert comparison.num_wrong <= comparison.num_dags

    def test_key_entry_points_exposed(self):
        for name in (
            "TaskGraph",
            "generate_dag",
            "schedule_dag",
            "ApplicationSimulator",
            "TGridEmulator",
            "bayreuth_cluster",
            "heterogeneous_cluster",
        ):
            assert hasattr(repro, name) or hasattr(
                importlib.import_module("repro.platform"), name
            )

    def test_every_public_item_documented(self):
        """Every name in each subpackage's __all__ has a docstring."""
        for module in SUBPACKAGES:
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{module}.{name} lacks a docstring"
