"""Extension bench: computational root-cause analysis (Section V-C).

The paper identifies the analytical simulator's three error culprits by
manual schedule inspection.  This bench runs the counterfactual
build-up decomposition over a DAG sample and reports each culprit's
average share of the simulation gap — reproducing the section's
conclusion quantitatively: unmodelled kernel behaviour dominates, task
startup is the biggest *environment* overhead, redistribution setup is
real but smaller.
"""

import numpy as np

from repro.experiments.attribution import attribute_gap
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.util.text import format_table


def test_ext_gap_attribution(benchmark, ctx, emit):
    dags = [d for d in ctx.dags if d[0].sample == 0]
    suite = ctx.analytic_suite
    truth = ctx.profile_suite

    def run():
        attributions = []
        for params, graph in dags:
            costs = SchedulingCosts(
                graph,
                ctx.platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            schedule = schedule_dag(graph, costs, "mcpa")
            attributions.append(
                attribute_gap(graph, schedule, suite, truth, ctx.emulator)
            )
        return attributions

    attributions = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for att in attributions:
        fr = att.fractions()
        rows.append(
            [
                att.dag_label,
                att.base_makespan,
                att.exp_makespan,
                fr["kernel time"],
                fr["startup overhead"],
                fr["redistribution"],
                att.residual / max(att.exp_makespan - att.base_makespan, 1e-9),
            ]
        )
    table = format_table(
        ["dag", "sim [s]", "exp [s]", "kernel", "startup", "redist",
         "residual"],
        rows,
        float_fmt="{:.2f}",
    )
    mean_fr = {
        k: float(np.mean([att.fractions()[k] for att in attributions]))
        for k in ("kernel time", "startup overhead", "redistribution")
    }
    summary = "\nmean shares: " + ", ".join(
        f"{k} {100 * v:.0f} %" for k, v in mean_fr.items()
    )
    emit(
        "ext_gap_attribution",
        "Gap attribution: analytic sim vs experiment (Section V-C, "
        "computed)\n" + table + summary,
    )

    # Section V-C's ranking, quantified.
    assert mean_fr["kernel time"] > mean_fr["startup overhead"]
    assert mean_fr["startup overhead"] > 0.02
    assert mean_fr["redistribution"] > 0.0
    # The three culprits explain the bulk of the gap on average.
    assert sum(mean_fr.values()) > 0.75
