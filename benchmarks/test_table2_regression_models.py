"""Table II bench: calibrate the empirical models from sparse samples.

Paper rows: the piecewise multiplication models, the addition models,
and the linear startup/redistribution-overhead regressions — here
refitted against the testbed and printed next to the printed paper
coefficients.
"""

from repro.experiments import figures
from repro.experiments.reporting import render_table2
from repro.profiling.calibration import build_empirical_suite


def test_table2_regression_models(benchmark, ctx, emit):
    suite = benchmark.pedantic(
        build_empirical_suite, args=(ctx.emulator,), rounds=1, iterations=1
    )
    assert suite.name == "empirical"
    t2 = figures.table2(ctx)
    emit("table2_regression_models", render_table2(t2))
    # The testbed is generated from the paper's coefficients, so the
    # refits land near them (fluctuation-level tolerance).
    mm = t2.row("matmul n=3000 hyp")
    assert abs(mm.fitted[0] - mm.paper[0]) / mm.paper[0] < 0.35
    startup = t2.row("task startup")
    assert abs(startup.fitted[0] - 0.03) < 0.02
    assert abs(startup.fitted[1] - 0.65) < 0.25
    redist = t2.row("redistribution startup")
    assert abs(redist.fitted[0] - 0.00788) / 0.00788 < 0.5
