"""Table I bench: regenerate the 54-DAG random workload set."""

from repro.dag.generator import generate_paper_dags
from repro.experiments import figures
from repro.experiments.reporting import render_table1


def test_table1_dag_generation(benchmark, ctx, emit):
    dags = benchmark(generate_paper_dags, seed=0)
    assert len(dags) == 54
    t1 = figures.table1(ctx)
    emit("table1_dag_generation", render_table1(t1))
    assert t1.total_instances == 54
    # Every instance follows the Table I parameter grid.
    assert all(d.num_tasks == 10 for d in t1.dags)
    assert {d.n for d in t1.dags} == {2000, 3000}
