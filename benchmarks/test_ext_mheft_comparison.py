"""Extension bench: M-HEFT joins the HCPA/MCPA comparison.

A three-way comparison over the n = 2000 workload under the profile
simulator, with testbed validation — extending the paper's two-way
study with the one-phase contender from the same literature.
"""

import numpy as np

from repro.experiments.runner import run_study
from repro.util.text import format_table


def test_ext_mheft_comparison(benchmark, ctx, emit):
    dags = [(p, g) for p, g in ctx.dags if p.n == 2000]
    suite = ctx.profile_suite

    def run():
        return run_study(
            dags, [suite], ctx.emulator, algorithms=("hcpa", "mcpa", "mheft")
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = {alg: 0 for alg in ("hcpa", "mcpa", "mheft")}
    rows = []
    for label in study.dag_labels():
        exp = {
            alg: study.record(label, alg, "profile").exp_makespan
            for alg in wins
        }
        best = min(exp, key=exp.get)
        wins[best] += 1
        rows.append([label, exp["hcpa"], exp["mcpa"], exp["mheft"], best])
    table = format_table(
        ["dag", "HCPA [s]", "MCPA [s]", "M-HEFT [s]", "winner"],
        rows,
        float_fmt="{:.1f}",
    )
    summary = "\nexperimental wins: " + ", ".join(
        f"{a} {w}" for a, w in wins.items()
    )
    errors = [r.error_pct for r in study.select(algorithm="mheft")]
    summary += f"\nM-HEFT profile-sim error: mean {np.mean(errors):.1f} %"
    emit("ext_mheft_comparison",
         "Three-way comparison under the profile simulator (n = 2000)\n"
         + table + summary)

    # The simulator stays accurate for the new algorithm too...
    assert np.mean(errors) < 10.0
    # ...and every algorithm wins somewhere (no strict dominance).
    assert all(w > 0 for w in wins.values())
