"""Fig 4 bench: redistribution-overhead grid measurement.

Paper result: the subnet-manager overhead grows with the number of
participating processes and "depends mostly on p(dst)".
"""

from repro.experiments import figures
from repro.experiments.reporting import render_figure4


def test_fig4_redistribution_overhead(benchmark, ctx, emit):
    f4 = benchmark.pedantic(
        figures.figure4, args=(ctx,), kwargs={"trials": 3}, rounds=1,
        iterations=1,
    )
    emit("fig4_redistribution_overhead", render_figure4(f4))
    assert len(f4.grid) == 32 * 32
    dst_slope, src_slope = f4.dst_slope_vs_src_slope()
    assert dst_slope > 3 * abs(src_slope)
