"""Fig 2 bench: relative error of the analytical task-time model.

Paper result: the Java 1D multiplication's error "fluctuates without
clear patterns up to 60 %"; even tuned PDGEMM on a Cray XT4 averages
~10 % error (up to 20 %).
"""

from repro.experiments import figures
from repro.experiments.reporting import render_figure2


def test_fig2_analytical_error(benchmark, ctx, emit):
    f2 = benchmark.pedantic(
        figures.figure2, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig2_analytical_error", render_figure2(f2))
    assert f2.max_java_error() > 0.4
    assert 0.05 < f2.mean_cray_error() < 0.15
    assert f2.max_cray_error() <= 0.25
