"""Extension bench: is the sign-flip phenomenon just measurement noise?

The paper executes each schedule once.  Re-running each schedule five
times on the emulated cluster separates the analytical simulator's
wrong comparisons into noise-dominated DAGs (whose true winner is
itself unstable across runs) and model-dominated flips (a stable
experimental winner the simulator still gets wrong).  The paper's
conclusion survives: most flips are the model's fault.
"""

from repro.experiments.variance import run_variance_study
from repro.util.text import format_table


def test_ext_variance_analysis(benchmark, ctx, emit):
    dags = [d for d in ctx.dags if d[0].n == 2000]

    def run():
        return run_variance_study(
            dags, ctx.analytic_suite, ctx.emulator, runs=5, n=2000
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            d.dag_label,
            d.rel_sim,
            d.rel_exp_mean,
            d.rel_exp_std,
            f"{d.winner_stability:.2f}",
            "noise" if d.noise_dominated else (
                "FLIP" if d.sign_flipped_vs_mean else ""
            ),
        ]
        for d in study.dags
    ]
    table = format_table(
        ["dag", "rel sim", "rel exp (mean)", "std", "stability", ""],
        rows,
        float_fmt="{:+.3f}",
    )
    summary = (
        f"\nnoise-dominated DAGs: {study.num_noise_dominated} / {len(study.dags)}"
        f"\nflips vs mean outcome: {study.num_flips_vs_mean}"
        f"\n  of which model-dominated: {study.num_model_dominated_flips}"
    )
    emit(
        "ext_variance_analysis",
        "Run-to-run variance of the analytic simulator's flips (n = 2000)\n"
        + table
        + summary,
    )

    # The paper's conclusion must survive repeated measurement: a solid
    # majority of the flips concern DAGs whose experimental winner is
    # stable — the model, not the noise, is wrong.
    assert study.num_model_dominated_flips >= study.num_flips_vs_mean * 0.5
    assert study.num_model_dominated_flips >= 5
