"""Fig 6 bench: regression fits with and without the outlier points.

Paper result: fitting through p = {1, 2, 4, 8, 16} is wrecked by the
p = 8 / p = 16 outliers of the n = 3000 multiplication; replacing them
with p = 7 / p = 15 yields a usable model from only 6 measurements.
"""

from repro.experiments import figures
from repro.experiments.reporting import render_figure6


def test_fig6_regression_fit(benchmark, ctx, emit):
    f6 = benchmark.pedantic(
        figures.figure6, args=(ctx,), kwargs={"n": 3000}, rounds=1,
        iterations=1,
    )
    emit("fig6_regression_fit", render_figure6(f6))
    assert f6.final_rmse < f6.naive_rmse
    assert f6.naive_fit_goes_nonphysical()
    # The final fit tracks the Table II hyperbola.
    assert abs(f6.final_fit.a - 537.91) / 537.91 < 0.35
