"""Fig 8 bench: simulation-error distributions for all three simulators.

Paper result: "the purely analytical version leads to errors larger
than the two other versions by orders of magnitude, while the empirical
version provides a reasonable alternative to the profile-based version".
"""

from repro.experiments import figures
from repro.experiments.reporting import render_figure8


def test_fig8_error_boxplot(benchmark, ctx, emit):
    f8 = benchmark.pedantic(figures.figure8, args=(ctx,), rounds=1,
                            iterations=1)
    emit("fig8_error_boxplot", render_figure8(f8))
    for alg in ("hcpa", "mcpa"):
        analytic = f8.median("analytic", alg)
        profile = f8.median("profile", alg)
        empirical = f8.median("empirical", alg)
        assert analytic > 8 * profile
        assert analytic > 4 * empirical
        assert profile < empirical
        assert f8.boxes[("profile", alg)].mean < 10.0  # "under 10% error"
