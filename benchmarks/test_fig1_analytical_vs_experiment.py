"""Fig 1 bench: HCPA vs MCPA under the analytical simulator.

Paper result: the simulation outcome is the opposite of the experiment
for 16/27 DAGs at n = 2000 (60 %) and 7/27 at n = 3000 (26 %) — the
analytical simulator "simply does not produce meaningful results".
"""

import pytest

from repro.experiments.comparison import compare_algorithms
from repro.experiments.reporting import render_comparison
from repro.experiments.runner import run_study


@pytest.mark.parametrize("n,paper_wrong", [(2000, 16), (3000, 7)])
def test_fig1_analytical_vs_experiment(benchmark, ctx, emit, n, paper_wrong):
    dags = [(p, g) for p, g in ctx.dags if p.n == n]

    def run():
        study = run_study(dags, [ctx.analytic_suite], ctx.emulator)
        return compare_algorithms(study, simulator="analytic", n=n)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"fig1_analytic_n{n}", render_comparison(cmp, paper_wrong=paper_wrong))
    assert cmp.num_dags == 27
    # Shape: a large fraction of comparisons comes out wrong.
    if n == 2000:
        assert cmp.num_wrong >= 8
    else:
        assert 3 <= cmp.num_wrong <= 12
