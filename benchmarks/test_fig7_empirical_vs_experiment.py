"""Fig 7 bench: HCPA vs MCPA under the empirical simulator.

Paper result: 1/27 wrong at n = 2000 and 6/27 at n = 3000 — the
n = 3000 errors trace back to schedules allocating p = 16, where the
regression is a poor fit to the outlier-laden reality.
"""

import pytest

from repro.experiments.comparison import compare_algorithms
from repro.experiments.reporting import render_comparison
from repro.experiments.runner import run_study


@pytest.mark.parametrize("n,paper_wrong", [(2000, 1), (3000, 6)])
def test_fig7_empirical_vs_experiment(benchmark, ctx, emit, n, paper_wrong):
    dags = [(p, g) for p, g in ctx.dags if p.n == n]
    suite = ctx.empirical_suite

    def run():
        study = run_study(dags, [suite], ctx.emulator)
        return compare_algorithms(study, simulator="empirical", n=n)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"fig7_empirical_n{n}", render_comparison(cmp, paper_wrong=paper_wrong))
    if n == 2000:
        assert cmp.num_wrong <= 8
    else:
        # The outliers make n = 3000 harder for the regression model.
        assert 3 <= cmp.num_wrong <= 9
