"""Ablation: SimGrid's network contention model.

The paper notes that "SimGrid simulates contention between network
communications that share a network link".  This bench compares the
fair-sharing simulator against a contention-free variant (every
transfer sees the full link bandwidth) on redistribution-heavy
schedules, quantifying how much of the simulated makespan the
contention model accounts for.
"""

import numpy as np

from repro.experiments.runner import run_study
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.util.text import format_table


def test_ablation_contention(benchmark, ctx, emit):
    suite = ctx.analytic_suite
    dags = [d for d in ctx.dags if d[0].n == 3000 and d[0].sample == 0]

    def run():
        rows = []
        for params, graph in dags:
            costs = SchedulingCosts(
                graph,
                ctx.platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            schedule = schedule_dag(graph, costs, "mcpa")
            shared = ApplicationSimulator(
                ctx.platform, suite.task_model, contention=True
            ).run(graph, schedule).makespan
            free = ApplicationSimulator(
                ctx.platform, suite.task_model, contention=False
            ).run(graph, schedule).makespan
            rows.append((graph.name, shared, free))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dag", "fair-sharing makespan [s]", "contention-free [s]", "ratio"],
        [[name, s, f, s / f] for name, s, f in rows],
        float_fmt="{:.3f}",
    )
    emit("ablation_contention", "Contention-model ablation (analytic sim)\n" + table)

    # Removing contention can only shorten transfers, never lengthen
    # the simulation.
    for _name, shared, free in rows:
        assert free <= shared + 1e-9
    # And on at least some redistribution-heavy DAG it visibly matters.
    ratios = [s / f for _n, s, f in rows]
    assert max(ratios) > 1.0005
