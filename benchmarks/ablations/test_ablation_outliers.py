"""Ablation: outlier handling in the empirical sampling plan.

Section VII side-steps the p = 8 / p = 16 outliers by sampling p = 7 and
p = 15 instead.  This bench quantifies that choice end-to-end: the
empirical suite is calibrated from both plans and the resulting
sign-flip counts and simulation errors are compared on the n = 3000
DAGs (where the outliers live).
"""

import numpy as np

from repro.experiments.comparison import compare_algorithms
from repro.experiments.runner import run_study
from repro.profiling.calibration import build_empirical_suite
from repro.profiling.sparse import NAIVE_POWER_OF_TWO_PLAN, PAPER_PLAN
from repro.util.text import format_table


def test_ablation_sampling_plans(benchmark, ctx, emit):
    dags = [(p, g) for p, g in ctx.dags if p.n == 3000]

    def run():
        out = {}
        for label, plan in (
            ("power-of-two plan (hits outliers)", NAIVE_POWER_OF_TWO_PLAN),
            ("paper plan (avoids outliers)", PAPER_PLAN),
        ):
            suite = build_empirical_suite(ctx.emulator, plan=plan)
            study = run_study(dags, [suite], ctx.emulator)
            cmp = compare_algorithms(study, simulator="empirical", n=3000)
            err = float(np.mean([r.error_pct for r in study.records]))
            out[label] = (cmp.num_wrong, err)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["sampling plan", "wrong comparisons / 27", "mean error [%]"],
        [[k, v[0], v[1]] for k, v in results.items()],
        float_fmt="{:.2f}",
    )
    emit("ablation_sampling_plans", "Sampling-plan ablation (n = 3000)\n" + table)

    naive_err = results["power-of-two plan (hits outliers)"][1]
    paper_err = results["paper plan (avoids outliers)"][1]
    # Chasing the outliers degrades the simulator's overall accuracy.
    assert paper_err < naive_err


def test_ablation_testbed_outliers(benchmark, ctx, emit):
    """Counterfactual: a testbed without the p = 8/16 outliers.

    Separates the two failure modes of the power-of-two plan: (a) the
    environmental outliers it samples, and (b) its point placement
    (anchoring the hyperbola at the p = 1 extreme and fitting the
    overhead regime from only {16, 32}).  Removing the outliers from
    the environment isolates (b); the paper plan must stay accurate in
    both worlds.
    """
    from repro.testbed.tgrid import TGridEmulator

    clean_emulator = TGridEmulator(
        ctx.platform, seed=ctx.seed, with_outliers=False
    )
    dags = [(p, g) for p, g in ctx.dags if p.n == 3000][:9]

    def run():
        out = {}
        for world, emulator in (
            ("with outliers", ctx.emulator),
            ("outlier-free", clean_emulator),
        ):
            for label, plan in (
                ("power-of-two plan", NAIVE_POWER_OF_TWO_PLAN),
                ("paper plan", PAPER_PLAN),
            ):
                suite = build_empirical_suite(emulator, plan=plan)
                study = run_study(dags, [suite], emulator)
                out[(world, label)] = float(
                    np.mean([r.error_pct for r in study.records])
                )
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["testbed", "sampling plan", "mean error [%]"],
        [[w, p, v] for (w, p), v in errors.items()],
        float_fmt="{:.2f}",
    )
    emit(
        "ablation_testbed_outliers",
        "Outlier counterfactual (n = 3000, 9 DAGs)\n" + table,
    )
    # The paper plan is accurate in both worlds; the power-of-two plan
    # is worse in both (placement effect) and should not improve when
    # outliers are added to the points it samples.
    for world in ("with outliers", "outlier-free"):
        assert errors[(world, "paper plan")] < errors[(world, "power-of-two plan")]
    assert errors[("outlier-free", "paper plan")] < 10.0
