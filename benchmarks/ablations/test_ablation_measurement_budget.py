"""Ablation: how many measurement trials does calibration need?

The paper averages 3 kernel trials, 20 startup trials and 3
redistribution trials.  This bench sweeps the kernel-trial budget and
measures the profile simulator's end-to-end accuracy — quantifying the
diminishing returns that justify the paper's small budgets (execution
noise is a few percent; the model error floor comes from elsewhere).
"""

import numpy as np

from repro.experiments.runner import run_study
from repro.profiling.calibration import build_profile_suite
from repro.util.text import format_table


def test_ablation_measurement_budget(benchmark, ctx, emit):
    dags = [d for d in ctx.dags if d[0].sample == 0]

    def run():
        out = {}
        for trials in (1, 3, 10):
            suite = build_profile_suite(
                ctx.emulator,
                kernel_trials=trials,
                startup_trials=max(2, trials),
                redistribution_trials=trials,
            )
            study = run_study(dags, [suite], ctx.emulator)
            out[trials] = float(np.mean([r.error_pct for r in study.records]))
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["kernel trials", "mean makespan error [%]"],
        [[k, v] for k, v in errors.items()],
        float_fmt="{:.2f}",
    )
    emit(
        "ablation_measurement_budget",
        "Measurement-budget ablation (profile suite)\n" + table,
    )

    # All budgets land in the refined-simulator class; the paper's 3
    # trials sit within one point of the 10-trial result.
    assert all(err < 10.0 for err in errors.values())
    assert abs(errors[3] - errors[10]) < 2.0
