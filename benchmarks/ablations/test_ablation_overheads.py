"""Ablation: which refinement carries the profile simulator's accuracy?

The refined simulator of Section VI adds three corrections on top of
the analytical one: measured kernel profiles, startup overheads and
redistribution overheads.  This bench knocks each overhead out of the
profile suite and measures the accuracy lost — quantifying the paper's
claim that "to be meaningful a simulator must account for specifics of
the environment".
"""

import numpy as np
import pytest

from repro.experiments.runner import run_study
from repro.models.overheads import (
    ZeroRedistributionOverheadModel,
    ZeroStartupModel,
)
from repro.profiling.calibration import SimulatorSuite
from repro.util.text import format_table


def _mean_error(study, simulator):
    return float(np.mean([r.error_pct for r in study.select(simulator=simulator)]))


@pytest.fixture(scope="module")
def subset(ctx):
    """A 12-DAG slice (both sizes) to keep the ablation quick."""
    return [d for d in ctx.dags if d[0].sample == 0][:12]


def test_ablation_overheads(benchmark, ctx, emit, subset):
    full = ctx.profile_suite
    variants = {
        "full profile suite": full,
        "no startup overhead": SimulatorSuite(
            name="no-startup",
            task_model=full.task_model,
            startup_model=ZeroStartupModel(),
            redistribution_model=full.redistribution_model,
        ),
        "no redistribution overhead": SimulatorSuite(
            name="no-redist",
            task_model=full.task_model,
            startup_model=full.startup_model,
            redistribution_model=ZeroRedistributionOverheadModel(),
        ),
        "no overheads at all": SimulatorSuite(
            name="no-overheads",
            task_model=full.task_model,
            startup_model=ZeroStartupModel(),
            redistribution_model=ZeroRedistributionOverheadModel(),
        ),
    }

    def run():
        return {
            label: _mean_error(
                run_study(subset, [suite], ctx.emulator), suite.name
            )
            for label, suite in variants.items()
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["variant", "mean makespan error [%]"],
        [[k, v] for k, v in errors.items()],
        float_fmt="{:.2f}",
    )
    emit("ablation_overheads", "Overhead-model ablation (profile suite)\n" + table)

    # Removing a correction can only hurt; startup is the dominant one.
    assert errors["full profile suite"] < errors["no overheads at all"]
    assert errors["no startup overhead"] > errors["full profile suite"]
    assert (
        errors["no startup overhead"] >= errors["no redistribution overhead"]
    )
