"""Extension bench: automatic outlier handling vs the manual plans.

The paper handled its outliers *manually* ("replacing 8 and 16 by 7 and
15") and suggested automating the step.  This bench compares three
calibration strategies for the n = 3000 multiplication model:

* the naive power-of-two plan (hits the outliers),
* the paper's hand-tuned plan (human-in-the-loop),
* the adaptive detector (``repro.profiling.adaptive``) that finds and
  validates outliers by itself with a few extra measurements.
"""

import numpy as np

from repro.profiling.adaptive import adaptive_kernel_model
from repro.profiling.sparse import NAIVE_POWER_OF_TWO_PLAN, PAPER_PLAN
from repro.models.empirical import PiecewiseKernelModel
from repro.util.text import format_table


def _model_error(model, emulator, n=3000):
    """Mean relative error against the clean mean curve (2 <= p <= 16)."""
    errs = []
    for p in range(2, 17):
        if p in (8, 16):
            continue
        truth = emulator.kernels.mean_time("matmul", n, p)
        errs.append(abs(model(p) - truth) / truth)
    return float(np.mean(errs))


def _plan_model(emulator, plan, n=3000, trials=3):
    samples = {
        p: float(np.mean(emulator.measure_kernel("matmul", n, p, trials)))
        for p in plan.matmul_low
    }
    high = {
        p: float(np.mean(emulator.measure_kernel("matmul", n, p, trials)))
        for p in plan.matmul_high
    }
    return PiecewiseKernelModel.from_samples(samples, high, split=plan.split)


def test_ablation_adaptive_calibration(benchmark, ctx, emit):
    emulator = ctx.emulator

    def run():
        naive = _plan_model(emulator, NAIVE_POWER_OF_TWO_PLAN)
        paper = _plan_model(emulator, PAPER_PLAN)
        adaptive = adaptive_kernel_model(emulator, "matmul", 3000)
        return {
            "naive power-of-two": (_model_error(naive, emulator), 6, "-"),
            "paper (manual outlier dodge)": (
                _model_error(paper, emulator),
                PAPER_PLAN.total_measurements,
                "-",
            ),
            "adaptive (automatic)": (
                _model_error(adaptive.model, emulator),
                adaptive.measurements_used,
                ",".join(map(str, sorted(adaptive.flagged))) or "none",
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["strategy", "mean rel. model error", "measurements", "outliers found"],
        [[k, v[0], v[1], v[2]] for k, v in results.items()],
        float_fmt="{:.3f}",
    )
    emit(
        "ablation_adaptive_calibration",
        "Adaptive outlier-aware calibration (matmul, n = 3000)\n" + table,
    )

    naive_err = results["naive power-of-two"][0]
    adaptive_err = results["adaptive (automatic)"][0]
    # The automatic procedure must beat the outlier-blind plan...
    assert adaptive_err < naive_err
    # ...and land in the same accuracy class as the manual dodge.
    paper_err = results["paper (manual outlier dodge)"][0]
    assert adaptive_err < 2.0 * paper_err + 0.05
