"""Ablation: data-locality tie-break in the mapping phase.

The mapping phase picks, among equally-early host sets, those already
holding the task's input data.  This bench disables that tie-break and
measures the experimental makespan inflation caused by the extra
redistributions — a design choice the paper's TGrid runtime makes
expensive (every redistribution pays the subnet-manager overhead).
"""

import numpy as np

from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import ALGORITHMS
from repro.scheduling.mapping import map_allocations
from repro.util.text import format_table


def test_ablation_mapping_locality(benchmark, ctx, emit):
    suite = ctx.profile_suite
    dags = [d for d in ctx.dags if d[0].sample == 0]

    def run():
        inflations = []
        for params, graph in dags:
            costs = SchedulingCosts(
                graph,
                ctx.platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            alloc = ALGORITHMS["mcpa"](graph, costs)
            local = map_allocations(
                graph, costs, alloc, algorithm="mcpa", locality_tiebreak=True
            )
            blind = map_allocations(
                graph, costs, alloc, algorithm="mcpa", locality_tiebreak=False
            )
            m_local = ctx.emulator.makespan(graph, local)
            m_blind = ctx.emulator.makespan(graph, blind)
            inflations.append((graph.name, m_local, m_blind))
        return inflations

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dag", "locality-aware [s]", "locality-blind [s]", "blind/aware"],
        [[n, a, b, b / a] for n, a, b in rows],
        float_fmt="{:.2f}",
    )
    emit("ablation_mapping_locality", "Mapping locality ablation\n" + table)

    ratios = np.array([b / a for _n, a, b in rows])
    # On average the locality-aware mapping is at least as good, and on
    # some DAGs clearly better.
    assert ratios.mean() > 0.98
    assert ratios.max() > 1.01
