"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures, prints the
rows/series in text form and writes them under ``benchmarks/output/``.
The study context is session-scoped so the (deliberately expensive)
calibration and study sweeps are shared across benches.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.context import StudyContext

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def ctx():
    """The fully-wired study (seed 0, 32 nodes, paper trial counts)."""
    return StudyContext(seed=0)


@pytest.fixture(scope="session")
def emit():
    """Write a rendered figure to benchmarks/output/ and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} ({path}) =====")
        print(text)

    return _emit
