"""Extension bench: causal check — failure tracks overhead magnitude.

The paper *attributes* the analytical simulator's failure to unmodelled
environment specifics.  The emulated testbed lets us test that claim
causally: scale the startup and redistribution overheads down (0.25x)
and up (4x) and watch the analytical simulator's error and sign-flip
rate respond.  If the paper's attribution is right, the failure rate
must track the dial — and it does.
"""

from repro.experiments.sensitivity import overhead_sensitivity
from repro.util.text import format_table


def test_ext_overhead_sensitivity(benchmark, ctx, emit):
    dags = [d for d in ctx.dags if d[0].n == 2000]

    def run():
        return overhead_sensitivity(
            ctx.platform, dags, scales=(0.25, 0.5, 1.0, 2.0, 4.0),
            seed=ctx.seed,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["overhead scale", "wrong comparisons", "mean error [%]"],
        [
            [p.scale, f"{p.num_wrong} / {p.num_dags}", p.mean_error_pct]
            for p in sweep.points
        ],
        float_fmt="{:.2f}",
    )
    emit(
        "ext_overhead_sensitivity",
        "Analytic-simulator failure vs environment overhead magnitude "
        "(n = 2000)\n" + table,
    )

    assert sweep.errors_increase_with_scale()
    # More unmodelled overhead => at least as many wrong comparisons at
    # the heavy end as at the light end.
    assert sweep.point(4.0).num_wrong >= sweep.point(0.25).num_wrong
