"""Extension bench: do the paper's conclusions generalise beyond Table I?

The case study draws all its evidence from one workload family (10-task
matrix DAGs).  This bench re-runs the analytic-vs-profile comparison on
daggen-style workloads — bigger (20-30 tasks), wider, denser, with
level-skipping edges — and checks the methodological conclusion is not
an artefact of the Table I generator: the analytic simulator stays
unreliable, the profile simulator stays accurate.
"""

import numpy as np

from repro.dag.daggen import DaggenParameters, generate_daggen
from repro.experiments.comparison import compare_algorithms
from repro.experiments.runner import run_study
from repro.util.text import format_table


def _daggen_workload(seed=31):
    out = []
    for num_tasks in (20, 30):
        for fat in (0.3, 0.8):
            for density in (0.3, 0.7):
                for n in (2000, 3000):
                    params = DaggenParameters(
                        num_tasks=num_tasks,
                        fat=fat,
                        density=density,
                        jump=2,
                        add_ratio=0.5,
                        n=n,
                        seed=seed,
                    )
                    out.append((params, generate_daggen(params)))
    return out


def test_ext_daggen_robustness(benchmark, ctx, emit):
    dags = _daggen_workload()

    def run():
        out = {}
        for suite in (ctx.analytic_suite, ctx.profile_suite):
            study = run_study(dags, [suite], ctx.emulator)
            errors = [r.error_pct for r in study.records]
            flips = sum(
                1
                for n in (2000, 3000)
                for d in compare_algorithms(
                    study, simulator=suite.name, n=n
                ).dags
                if d.sign_flipped
            )
            out[suite.name] = (float(np.mean(errors)), flips, len(dags))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["simulator", "mean makespan error [%]", "sign flips", "DAGs"],
        [[k, v[0], v[1], v[2]] for k, v in results.items()],
        float_fmt="{:.1f}",
    )
    emit(
        "ext_daggen_robustness",
        "Generalisation to daggen workloads (20-30 tasks, jump=2)\n" + table,
    )

    analytic_err, analytic_flips, _ = results["analytic"]
    profile_err, profile_flips, _ = results["profile"]
    # The conclusion is workload-independent: analytic errors dominate
    # profile errors by an order of magnitude, and the profile
    # simulator keeps ranking the algorithms right far more often.
    assert analytic_err > 8 * profile_err
    assert profile_err < 10.0
    assert profile_flips <= analytic_flips
