"""Fig 3 bench: task startup overhead measurement.

Paper result: 0.8-1.6 s over p = 1..32, averaged over 20 trials, and
"surprisingly, the average startup time is not monotonically increasing
with the number of processors".
"""

from repro.experiments import figures
from repro.experiments.reporting import render_figure3


def test_fig3_startup_overhead(benchmark, ctx, emit):
    f3 = benchmark(figures.figure3, ctx, trials=20)
    emit("fig3_startup_overhead", render_figure3(f3))
    lo, hi = f3.bounds()
    assert 0.5 < lo < 1.0
    assert 1.2 < hi < 2.0
    assert not f3.is_monotone
