"""Extension bench: scheduling on a heterogeneous cluster.

HCPA exists because of heterogeneous platforms (N'takpé, Suter &
Casanova 2007); the paper's case study only exercised its homogeneous
specialisation.  This bench runs the algorithm suite on a half-upgraded
cluster (16 full-speed + 16 half-speed nodes) and checks the simulator
and testbed stay consistent there too — plus that schedulers actually
route work to the fast half.
"""

import numpy as np

from repro.dag.generator import DagParameters, generate_dag
from repro.models.analytical import AnalyticalTaskModel
from repro.platform.personalities import heterogeneous_cluster
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator
from repro.util.text import format_table


def test_ext_heterogeneous_cluster(benchmark, ctx, emit):
    plat = heterogeneous_cluster(
        (1.0,) * 16 + (0.5,) * 16, name="bayreuth"
    )
    emulator = TGridEmulator(plat, seed=ctx.seed)
    model = AnalyticalTaskModel(plat)
    dag_specs = [
        DagParameters(num_input_matrices=v, add_ratio=0.75, n=2000,
                      sample=s, seed=17)
        for v in (2, 4, 8)
        for s in range(2)
    ]

    def run():
        rows = []
        for params in dag_specs:
            graph = generate_dag(params)
            costs = SchedulingCosts(graph, plat, model)
            per_alg = {}
            for alg in ("cpa", "hcpa", "mcpa"):
                sched = schedule_dag(graph, costs, alg)
                sim = ApplicationSimulator(plat, model).run(graph, sched)
                exp = emulator.makespan(graph, sched)
                fast = sum(
                    1 for t in graph.task_ids for h in sched.hosts(t) if h < 16
                )
                total = sum(len(sched.hosts(t)) for t in graph.task_ids)
                per_alg[alg] = (sim.makespan, exp, fast / total)
            rows.append((graph.name, per_alg))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    flat = []
    for name, per_alg in rows:
        for alg, (sim, exp, fast_frac) in per_alg.items():
            flat.append([name, alg, sim, exp, fast_frac])
    table = format_table(
        ["dag", "algorithm", "sim [s]", "exp [s]", "fast-host fraction"],
        flat,
        float_fmt="{:.2f}",
    )
    emit("ext_heterogeneous", "Heterogeneous cluster (16 fast + 16 half-speed)\n"
         + table)

    fast_fracs = [f for _n, _a, _s, _e, f in flat]
    # Fast nodes hold >16/32 = 50% of the machine's slots; schedulers
    # must use them disproportionately.
    assert np.mean(fast_fracs) > 0.6
    # Analytic sim still underestimates reality on the het platform too.
    for _n, _a, sim, exp, _f in flat:
        assert exp > sim
