"""Pipeline stage benchmark: where does the wall-clock time go?

Uses the observability layer (an in-memory recorder with ``span()``
timers) to time the four stages every study run goes through —
DAG generation, scheduling, simulation, testbed execution — and writes
the aggregate to ``BENCH_pipeline.json`` at the repository root.  This
seeds the benchmark trajectory every future performance PR measures
against.

Run directly (``python benchmarks/bench_pipeline.py``) or via pytest
(``pytest benchmarks/bench_pipeline.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script use without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.dag.generator import generate_paper_dags  # noqa: E402
from repro.obs import Recorder, recording  # noqa: E402
from repro.platform.personalities import bayreuth_cluster  # noqa: E402
from repro.profiling.calibration import build_analytical_suite  # noqa: E402
from repro.scheduling.costs import SchedulingCosts  # noqa: E402
from repro.scheduling.driver import schedule_dag  # noqa: E402
from repro.simgrid.simulator import ApplicationSimulator  # noqa: E402
from repro.testbed.tgrid import TGridEmulator  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

#: Study subset: enough work to time meaningfully, small enough to run
#: in CI (first N of the 54 Table I DAGs, both algorithms).
NUM_DAGS = 12
ALGORITHMS = ("hcpa", "mcpa")


def run_benchmark(num_dags: int = NUM_DAGS) -> dict:
    """Time each pipeline stage; returns the BENCH payload."""
    recorder = Recorder.to_memory()
    with recording(recorder):
        with recorder.span("pipeline.dag_generation"):
            dags = generate_paper_dags(seed=0)[:num_dags]

        platform = bayreuth_cluster(32)
        emulator = TGridEmulator(platform, seed=0)
        suite = build_analytical_suite(platform)

        schedules = []
        with recorder.span("pipeline.scheduling"):
            for _params, graph in dags:
                costs = SchedulingCosts(
                    graph,
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
                for algorithm in ALGORITHMS:
                    schedules.append(
                        (graph, schedule_dag(graph, costs, algorithm))
                    )

        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        with recorder.span("pipeline.simulation"):
            for graph, schedule in schedules:
                simulator.run(graph, schedule)

        with recorder.span("pipeline.testbed_execution"):
            for graph, schedule in schedules:
                emulator.execute(graph, schedule)

    metrics = recorder.metrics()
    stage_names = [
        "pipeline.dag_generation",
        "pipeline.scheduling",
        "pipeline.simulation",
        "pipeline.testbed_execution",
    ]
    units = {
        "pipeline.dag_generation": num_dags,
        "pipeline.scheduling": len(schedules),
        "pipeline.simulation": len(schedules),
        "pipeline.testbed_execution": len(schedules),
    }
    stages = {}
    for name in stage_names:
        span = metrics["spans"][name]
        n = units[name]
        stages[name.removeprefix("pipeline.")] = {
            "seconds": round(span["total_s"], 6),
            "units": n,
            "seconds_per_unit": round(span["total_s"] / n, 6),
        }
    return {
        "bench": "pipeline",
        "version": __version__,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "config": {
            "num_dags": num_dags,
            "algorithms": list(ALGORITHMS),
            "num_nodes": 32,
            "simulator": "analytic",
        },
        "stages": stages,
        "counters": {
            k: v
            for k, v in metrics["counters"].items()
            if k.startswith(("engine.", "sim.", "sched.", "testbed."))
        },
    }


def test_bench_pipeline():
    """Pytest entry: the bench runs and every stage takes positive time."""
    payload = run_benchmark(num_dags=3)
    assert set(payload["stages"]) == {
        "dag_generation", "scheduling", "simulation", "testbed_execution",
    }
    for stage in payload["stages"].values():
        assert stage["seconds"] >= 0.0
        assert stage["units"] > 0
    assert payload["counters"]["engine.steps"] > 0


def main() -> int:
    payload = run_benchmark()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    total = sum(s["seconds"] for s in payload["stages"].values())
    print(f"wrote {OUTPUT}")
    for name, stage in payload["stages"].items():
        share = 100.0 * stage["seconds"] / total if total else 0.0
        print(
            f"  {name:<18} {stage['seconds']:8.3f} s "
            f"({share:5.1f} %, {1e3 * stage['seconds_per_unit']:8.3f} ms/unit)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
