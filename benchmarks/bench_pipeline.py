"""Pipeline stage benchmark: where does the wall-clock time go?

Thin entry point over :mod:`repro.experiments.bench`, which times the
four stages every study run goes through — DAG generation, scheduling
(an object-vs-array allocation-phase pair), simulation, testbed
execution — plus a cold/warm full-study pair through the
content-addressed result cache, cold studies on the array engine and
array scheduler backends, a study-throughput quartet (the cold study
through the chunked executor at 1/2/4 workers plus per-cell dispatch
at 4 workers), a timeline-tracing on/off overhead pair, a
live-telemetry on/off overhead pair (the two-worker study with the
streaming progress bus detached vs attached), and
a scalar-vs-vectorized max-min solver micro-benchmark, and writes the
aggregate to ``BENCH_pipeline.json`` at the repository root.  This
seeds the benchmark trajectory every future performance PR measures
against.

Run directly (``python benchmarks/bench_pipeline.py``) or via pytest
(``pytest benchmarks/bench_pipeline.py``); ``repro bench`` is the same
entry point through the CLI.

Flags::

    --compare           compare against the committed baseline instead
                        of overwriting it; exit 1 on regression
    --threshold FRAC    relative slowdown tolerated per stage (0.25)
    --repeat N          run N passes, keep the per-stage minimum
    --update            rewrite BENCH_pipeline.json (default when no
                        --compare is given)
    --engine NAME       simulation backend for the pipeline stages
                        (object | array; default honors REPRO_ENGINE)
    --sched NAME        scheduler backend for the study stages
                        (object | array; default honors REPRO_SCHED)
    --assert-solver     exit 1 if the vectorized solver is slower than
                        the scalar kernel on the dense instance, or
                        slower on the sparse instance when the measured
                        crossover says it should win there
    --assert-sched      exit 1 if the object and array scheduler
                        backends diverge on any allocation, event,
                        counter, timeline line or profile structure
                        under forced kernel dispatch
    --assert-chunk      exit 1 if the chunked study executor diverges
                        from the serial loop on any record, event,
                        counter, timeline line or profile structure
                        (per-cell, small and single-chunk sizes, plus
                        a cold/warm cache pair)
    --assert-live       exit 1 if attaching the live telemetry bus
                        perturbs any record, event, counter, timeline
                        line or profile structure (serial and 4-worker
                        sweeps), or the bus loses cell events

Every payload also carries a ``crossovers`` section: the measured
scalar/vectorized crossover of the solver, step-scan, critical-path-DP
and allocation-grow kernel pairs (see ``repro profile --what wall``
and docs/performance.md).  Rolling per-machine regression tracking
lives in ``repro bench --check``
(:mod:`repro.experiments.bench_history`), not here.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script use without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.bench import (  # noqa: E402
    NUM_DAGS,
    assert_chunk_identity,
    assert_live_identity,
    assert_sched_identity,
    cache_speedup,
    compare_to_baseline,
    live_overhead,
    obs_overhead,
    render_comparison,
    run_pipeline_bench,
    sched_speedup,
    solver_speedup,
    study_cells_per_sec,
    study_throughput_speedup,
)

OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def run_benchmark(num_dags: int = NUM_DAGS) -> dict:
    """Back-compat alias for :func:`run_pipeline_bench`."""
    return run_pipeline_bench(num_dags)


def test_bench_pipeline():
    """Pytest entry: the bench runs and every stage takes positive time."""
    payload = run_pipeline_bench(num_dags=3, engine="object", sched="object")
    assert set(payload["stages"]) == {
        "dag_generation", "scheduling", "scheduling_array",
        "simulation", "testbed_execution",
        "study_cold", "study_cold_array", "study_cold_sched_array",
        "study_throughput_w1", "study_throughput_w2",
        "study_throughput_w4", "study_throughput_w4_percell",
        "cached_rerun", "obs_overhead_off", "obs_overhead_on",
        "obs_live_overhead_off", "obs_live_overhead_on",
        "solver_dense_scalar", "solver_dense_vectorized",
        "solver_sparse_scalar", "solver_sparse_vectorized",
    }
    for stage in payload["stages"].values():
        assert stage["seconds"] >= 0.0
        assert stage["units"] > 0
    # Each simulation-bearing stage records which backend produced it.
    assert payload["stages"]["study_cold"]["engine"] == "object"
    assert payload["stages"]["study_cold_array"]["engine"] == "array"
    assert "engine" not in payload["stages"]["dag_generation"]
    assert payload["config"]["engine"] == "object"
    # Allocation-phase stages record the scheduler backend likewise.
    assert payload["stages"]["scheduling"]["sched"] == "object"
    assert payload["stages"]["scheduling_array"]["sched"] == "array"
    assert payload["stages"]["study_cold_sched_array"]["sched"] == "array"
    assert payload["stages"]["study_cold_sched_array"]["engine"] == "array"
    assert "sched" not in payload["stages"]["dag_generation"]
    assert payload["config"]["sched"] == "object"
    assert payload["counters"]["engine.steps"] > 0
    # The warm re-run replayed every cell from the cache.
    assert payload["counters"]["cache.hits"] > 0
    assert cache_speedup(payload) is not None
    assert obs_overhead(payload) is not None
    assert live_overhead(payload) is not None
    # The live pair runs the study stages like every other study stage.
    for name in ("obs_live_overhead_off", "obs_live_overhead_on"):
        assert payload["stages"][name]["engine"] == "object"
        assert payload["stages"][name]["sched"] == "object"
    assert solver_speedup(payload) is not None
    assert solver_speedup(payload, "sparse") is not None
    assert sched_speedup(payload) is not None
    assert study_throughput_speedup(payload) is not None
    assert study_cells_per_sec(payload) is not None
    # Throughput stages pin their worker count and chunk size and
    # record the backends like every other study stage.
    for name in ("study_throughput_w1", "study_throughput_w4_percell"):
        assert payload["stages"][name]["engine"] == "object"
        assert payload["stages"][name]["sched"] == "object"
    # The payload records the host that produced it — wall-clock
    # trajectories are only comparable on similar machines.
    host = payload["host"]
    assert host["cpus"] >= 1
    assert host["platform"] and host["python"]
    # The measured-crossover section covers every kernel pair and
    # yields a usable dispatch threshold for each.
    assert set(payload["crossovers"]) == {
        "solver", "step_scan", "critical_path_dp", "alloc_grow",
    }
    for pair in payload["crossovers"].values():
        assert pair["unit"] in ("entries", "actions", "tasks", "candidates")
        assert pair["threshold"] >= 0


def _print_stages(payload: dict) -> None:
    total = sum(s["seconds"] for s in payload["stages"].values())
    for name, stage in payload["stages"].items():
        share = 100.0 * stage["seconds"] / total if total else 0.0
        print(
            f"  {name:<24} {stage['seconds']:8.3f} s "
            f"({share:5.1f} %, {1e3 * stage['seconds_per_unit']:8.3f} ms/unit)"
        )
    speedup = cache_speedup(payload)
    if speedup is not None:
        print(f"  warm-cache study re-run: {speedup:.1f}x faster than cold")
    overhead = obs_overhead(payload)
    if overhead is not None:
        print(f"  timeline tracing overhead: {overhead:.2f}x vs disabled")
    live_ratio = live_overhead(payload)
    if live_ratio is not None:
        print(
            f"  live telemetry overhead: {live_ratio:.2f}x vs disabled"
        )
    for instance in ("dense", "sparse"):
        ratio = solver_speedup(payload, instance)
        if ratio is not None:
            print(
                f"  vectorized solver ({instance}): "
                f"{ratio:.2f}x vs scalar kernel"
            )
    sched_ratio = sched_speedup(payload)
    if sched_ratio is not None:
        print(
            f"  array scheduler: {sched_ratio:.2f}x vs object "
            "allocation loop"
        )
    throughput = study_cells_per_sec(payload)
    chunk_ratio = study_throughput_speedup(payload)
    if throughput is not None and chunk_ratio is not None:
        print(
            f"  study throughput: {throughput:.1f} cells/s chunked at 4 "
            f"workers ({chunk_ratio:.2f}x vs per-cell dispatch)"
        )
    for pair, info in payload.get("crossovers", {}).items():
        cross = info.get("crossover")
        where = (
            f"vectorized wins from ~{cross} {info['unit']}"
            if cross is not None
            else f"scalar wins at every measured size ({info['unit']})"
        )
        print(
            f"  {pair} crossover: {where} "
            f"(dispatch threshold {info['threshold']})"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dags", type=int, default=NUM_DAGS)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline (implied when --compare is absent)",
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array"),
        default=None,
        help="simulation backend for the pipeline stages "
        "(default honors REPRO_ENGINE)",
    )
    parser.add_argument(
        "--sched",
        choices=("object", "array"),
        default=None,
        help="scheduler backend for the study stages "
        "(default honors REPRO_SCHED)",
    )
    parser.add_argument(
        "--assert-solver",
        action="store_true",
        help="exit 1 if the vectorized solver is slower than the "
        "scalar kernel on the dense instance",
    )
    parser.add_argument(
        "--assert-sched",
        action="store_true",
        help="exit 1 if the scheduler backends diverge under forced "
        "kernel dispatch",
    )
    parser.add_argument(
        "--assert-chunk",
        action="store_true",
        help="exit 1 if the chunked study executor diverges from the "
        "serial loop",
    )
    parser.add_argument(
        "--assert-live",
        action="store_true",
        help="exit 1 if attaching the live telemetry bus perturbs the "
        "study or loses cell events",
    )
    args = parser.parse_args(argv)

    payload = run_pipeline_bench(
        num_dags=args.dags,
        repeat=args.repeat,
        engine=args.engine,
        sched=args.sched,
    )

    def check_sched() -> int:
        if not args.assert_sched:
            return 0
        try:
            checked = assert_sched_identity(args.dags)
        except RuntimeError as exc:
            print(f"sched assertion FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"sched assertion passed: {checked} cases bit-identical "
            "across backends"
        )
        return 0

    def check_chunk() -> int:
        if not args.assert_chunk:
            return 0
        try:
            checked = assert_chunk_identity(args.dags)
        except RuntimeError as exc:
            print(f"chunk assertion FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"chunk assertion passed: {checked} configurations "
            "bit-identical with the serial loop"
        )
        return 0

    def check_live() -> int:
        if not args.assert_live:
            return 0
        try:
            checked = assert_live_identity(args.dags)
        except RuntimeError as exc:
            print(f"live assertion FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"live assertion passed: {checked} configurations "
            "bit-identical with telemetry detached"
        )
        return 0

    def check_solver() -> int:
        if not args.assert_solver:
            return 0
        ratio = solver_speedup(payload, "dense")
        if ratio is None or ratio < 1.0:
            print(
                "solver assertion FAILED: vectorized kernel is "
                f"{'missing' if ratio is None else f'{ratio:.2f}x'} "
                "vs scalar on the dense instance",
                file=sys.stderr,
            )
            return 1
        print(f"solver assertion passed: vectorized {ratio:.2f}x vs scalar")
        # Sparse instance: only assert where the measured crossover says
        # the vectorized kernel should win.  The sparse bench instance
        # is 192 entries; when the measured crossover lies above it (or
        # does not exist — today's honest state, see docs/performance.md)
        # the adaptive dispatch keeps the instance scalar and the slower
        # vectorized time is expected, not a regression.
        sparse_ratio = solver_speedup(payload, "sparse")
        info = payload.get("crossovers", {}).get("solver", {})
        cross = info.get("crossover")
        sparse_entries = 48 * 4  # _SOLVER_SPARSE actions x entries
        if cross is not None and sparse_entries >= cross:
            if sparse_ratio is None or sparse_ratio < 1.0:
                print(
                    "solver assertion FAILED: measured crossover is "
                    f"{cross} entries but the vectorized kernel is "
                    f"{'missing' if sparse_ratio is None else f'{sparse_ratio:.2f}x'} "
                    f"vs scalar on the {sparse_entries}-entry sparse "
                    "instance",
                    file=sys.stderr,
                )
                return 1
            print(
                "solver assertion passed: vectorized "
                f"{sparse_ratio:.2f}x vs scalar on the sparse instance "
                f"(crossover {cross} entries)"
            )
        else:
            print(
                "solver sparse note: vectorized "
                f"{sparse_ratio:.2f}x vs scalar at {sparse_entries} "
                "entries; measured crossover "
                f"{'absent' if cross is None else cross} — dispatch "
                f"keeps the instance scalar (threshold "
                f"{info.get('threshold')})"
            )
        return 0

    if args.compare:
        try:
            baseline = json.loads(OUTPUT.read_text(encoding="utf-8"))
        except FileNotFoundError:
            print(f"no baseline at {OUTPUT}; run without --compare first")
            return 2
        try:
            comparisons = compare_to_baseline(
                payload, baseline, threshold=args.threshold
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _print_stages(payload)
        print(render_comparison(comparisons))
        if args.update:
            OUTPUT.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {OUTPUT}")
        if any(c.regressed for c in comparisons):
            return 1
        return (
            check_solver() or check_sched() or check_chunk() or check_live()
        )

    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT}")
    _print_stages(payload)
    return check_solver() or check_sched() or check_chunk() or check_live()


if __name__ == "__main__":
    raise SystemExit(main())
