"""Fig 5 bench: HCPA vs MCPA under the profile-based simulator.

Paper result: only 2/27 wrong at n = 2000 and 3/27 at n = 3000, with
the wrong cases "well below 10 %" apart; HCPA produces shorter
schedules than MCPA for n = 2000.
"""

import pytest

from repro.experiments.comparison import compare_algorithms
from repro.experiments.reporting import render_comparison
from repro.experiments.runner import run_study


@pytest.mark.parametrize("n,paper_wrong", [(2000, 2), (3000, 3)])
def test_fig5_profile_vs_experiment(benchmark, ctx, emit, n, paper_wrong):
    dags = [(p, g) for p, g in ctx.dags if p.n == n]
    suite = ctx.profile_suite  # calibration outside the timed region

    def run():
        study = run_study(dags, [suite], ctx.emulator)
        return compare_algorithms(study, simulator="profile", n=n)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"fig5_profile_n{n}", render_comparison(cmp, paper_wrong=paper_wrong))
    assert cmp.num_wrong <= 3
