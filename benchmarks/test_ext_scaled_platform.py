"""Extension bench: scaling calibrated models to a hypothetical machine.

The paper's conclusion: empirical models "could be instantiated for an
existing execution environment and scaled to simulate an hypothetical
execution environment".  Here the profile suite calibrated on the
(emulated) Bayreuth cluster is scaled to a machine with 2x faster nodes
and a 2x snappier runtime, and its predictions are validated against a
testbed configured the same way — including whether it still picks the
right algorithm.
"""

import dataclasses

import numpy as np

from repro.experiments.comparison import compare_algorithms
from repro.experiments.runner import run_study
from repro.models.scaled import scale_suite
from repro.testbed.tgrid import TGridEmulator
from repro.util.text import format_table


def test_ext_scaled_platform(benchmark, ctx, emit):
    dags = [(p, g) for p, g in ctx.dags if p.n == 2000]

    def run():
        scaled_suite = dataclasses.replace(
            scale_suite(
                ctx.profile_suite,
                compute_speedup=2.0,
                startup_factor=0.5,
                redistribution_factor=0.5,
            ),
            name="profile-scaled",
        )
        hypothetical = TGridEmulator(
            ctx.platform,
            seed=ctx.seed,
            kernel_time_scale=0.5,
            startup_scale=0.5,
            redistribution_scale=0.5,
        )
        study = run_study(dags, [scaled_suite], hypothetical)
        cmp = compare_algorithms(study, simulator="profile-scaled", n=2000)
        err = float(np.mean([r.error_pct for r in study.records]))
        return cmp, err

    cmp, err = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["metric", "value"],
        [
            ["mean makespan error on hypothetical machine [%]", err],
            ["wrong HCPA-vs-MCPA comparisons", f"{cmp.num_wrong} / {cmp.num_dags}"],
        ],
        float_fmt="{:.2f}",
    )
    emit(
        "ext_scaled_platform",
        "Scaled-suite prediction of a 2x-faster hypothetical machine\n" + table,
    )
    # The scaled suite must stay in the refined-simulator accuracy class
    # and keep ranking the algorithms correctly most of the time.
    assert err < 10.0
    assert cmp.num_wrong <= 5
