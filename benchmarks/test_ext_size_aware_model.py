"""Extension bench: matrix size as an independent model variable.

The paper stops short of this ("for practical uses one would have to
include the matrix size into the model as an independent variable,
which we did not do").  Here the size-aware empirical suite — calibrated
only at n = 2000 and n = 3000 — simulates workloads at the *unmeasured*
size n = 2500, and its makespan predictions are scored against the
testbed.  An oracle suite calibrated directly at 2500 gives the
attainable floor.
"""

import numpy as np

from repro.dag.generator import DagParameters, generate_dag
from repro.experiments.runner import run_study
from repro.profiling.calibration import build_empirical_suite, build_size_aware_suite
from repro.util.text import format_table


def _dags(seed, n, count=9):
    out = []
    for v in (2, 4, 8):
        for sample in range(count // 3):
            params = DagParameters(
                num_input_matrices=v, add_ratio=0.75, n=n, sample=sample,
                seed=seed,
            )
            out.append((params, generate_dag(params)))
    return out


def test_ext_size_aware_model(benchmark, ctx, emit):
    dags = _dags(seed=11, n=2500)

    def run():
        size_aware = build_size_aware_suite(ctx.emulator)  # 2000 & 3000 only
        oracle = build_empirical_suite(ctx.emulator, sizes=(2500,))
        out = {}
        for label, suite in (
            ("size-aware (never measured 2500)", size_aware),
            ("oracle (calibrated at 2500)", oracle),
        ):
            study = run_study(dags, [suite], ctx.emulator)
            out[label] = float(np.mean([r.error_pct for r in study.records]))
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["suite", "mean makespan error [%] at n = 2500"],
        [[k, v] for k, v in errors.items()],
        float_fmt="{:.2f}",
    )
    emit("ext_size_aware_model", "Size-aware empirical model (extension)\n" + table)

    size_aware_err = errors["size-aware (never measured 2500)"]
    oracle_err = errors["oracle (calibrated at 2500)"]
    # The interpolated model must stay usable — within the refined-
    # simulator accuracy class, not the analytical one.
    assert size_aware_err < 25.0
    assert size_aware_err < 3.0 * oracle_err + 10.0
