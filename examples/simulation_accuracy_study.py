#!/usr/bin/env python
"""The paper's full case study: can simulation pick the better scheduler?

Reproduces the headline experiment end-to-end (Figs 1, 5, 7 and 8):
for all 54 Table I DAGs, each of the three simulator versions

* computes HCPA and MCPA schedules (with its own cost models),
* predicts each schedule's makespan,
* then the testbed "runs the experiment" for the same schedules,

and we count how often the simulated HCPA-vs-MCPA comparison comes out
with the wrong sign, plus the raw makespan-error distributions.

Run:  python examples/simulation_accuracy_study.py
(~15 s: 54 DAGs x 2 algorithms x 3 simulators, plus calibration)
"""

from repro import StudyContext, figures
from repro.experiments.reporting import render_comparison, render_figure8

PAPER_WRONG = {
    ("analytic", 2000): 16,
    ("analytic", 3000): 7,
    ("profile", 2000): 2,
    ("profile", 3000): 3,
    ("empirical", 2000): 1,
    ("empirical", 3000): 6,
}


def main() -> None:
    ctx = StudyContext(seed=0)

    for simulator, figure in (
        ("analytic", figures.figure1),
        ("profile", figures.figure5),
        ("empirical", figures.figure7),
    ):
        for n in (2000, 3000):
            cmp = figure(ctx, n=n)
            print("=" * 78)
            print(
                render_comparison(
                    cmp, paper_wrong=PAPER_WRONG[(simulator, n)]
                )
            )
            print()

    print("=" * 78)
    print(render_figure8(figures.figure8(ctx)))
    print()
    print(
        "Conclusion (matches the paper): the analytical simulator cannot\n"
        "be trusted to rank the two algorithms; brute-force profiles fix\n"
        "that; sparse-measurement regressions are a practical compromise."
    )


if __name__ == "__main__":
    main()
