#!/usr/bin/env python
"""Comparing mixed-parallel scheduling algorithms across workload shapes.

The paper's introduction motivates mixed parallelism: combining task
parallelism (the workflow's width) with data parallelism (moldable
tasks) "increases potential parallelism and can thus lead to higher
scalability and performance".  This example quantifies that on the
emulated cluster: the CPA-family algorithms against two pure baselines
(SEQ = task parallelism only, MAXPAR = each task on its standalone-
optimal allocation, tasks otherwise serialised), across DAG widths and
computation/communication mixes.

The outcome is nuanced, and deliberately so: for the multiplication-
heavy workloads (r = 0.5) the environment's flattening speedup curve
and startup overheads punish the critical-path-driven allocation growth
of the CPA family — the very over-allocation problem that motivated
HCPA and MCPA — so a per-task-optimal schedule is hard to beat.  For
the addition-heavy workloads (r = 1.0), where tasks are small and
overheads dominate, the mixed-parallel algorithms win clearly.

Run:  python examples/scheduling_algorithms.py
"""

from repro import (
    DagParameters,
    SchedulingCosts,
    StudyContext,
    generate_dag,
    schedule_dag,
)
from repro.util.text import format_table

ALGORITHMS = ("seq", "maxpar", "cpa", "mcpa", "hcpa")


def main() -> None:
    ctx = StudyContext(seed=0)
    suite = ctx.profile_suite  # schedule with realistic cost estimates
    emulator = ctx.emulator

    rows = []
    for width in (2, 4, 8):
        for ratio in (0.5, 1.0):
            params = DagParameters(
                num_input_matrices=width,
                add_ratio=ratio,
                n=2000,
                sample=0,
                seed=123,
            )
            graph = generate_dag(params)
            costs = SchedulingCosts(
                graph,
                ctx.platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            makespans = {}
            for alg in ALGORITHMS:
                schedule = schedule_dag(graph, costs, alg)
                makespans[alg] = emulator.makespan(graph, schedule)
            best = min(makespans, key=makespans.get)
            rows.append(
                [f"v={width} r={ratio}"]
                + [makespans[a] for a in ALGORITHMS]
                + [best]
            )

    print("Experimental makespans [s] on the emulated cluster (n = 2000)")
    print(
        format_table(
            ["workload"] + [a.upper() for a in ALGORITHMS] + ["best"],
            rows,
            float_fmt="{:.1f}",
        )
    )
    print(
        "\nSEQ (pure task parallelism) is 5-20x off everywhere.  On the\n"
        "multiplication-heavy workloads (r = 0.5) the CPA family's\n"
        "critical-path-driven allocations overshoot the environment's\n"
        "scaling knee — the over-allocation problem HCPA and MCPA were\n"
        "designed to soften — so the per-task-optimal MAXPAR baseline\n"
        "holds its ground.  On the overhead-dominated workloads\n"
        "(r = 1.0) mixed parallelism wins outright."
    )


if __name__ == "__main__":
    main()
