#!/usr/bin/env python
"""Tour of the extensions beyond the paper's case study.

Five capabilities the paper names but does not build:

1. **Automatic outlier handling** — calibrate the empirical model with
   the adaptive detector instead of the paper's manual point dodge;
2. **Matrix size as a model variable** — simulate a workload at
   n = 2500, a size never measured;
3. **Scaled hypothetical platforms** — predict schedules on a machine
   with 2x faster nodes before it exists;
4. **Heterogeneous clusters** — the setting HCPA was designed for;
5. **Calibration persistence** — save the expensive profile to JSON and
   reload it.

Run:  python examples/beyond_the_paper.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro import (
    DagParameters,
    SchedulingCosts,
    StudyContext,
    generate_dag,
    schedule_dag,
)
from repro.models.scaled import scale_suite
from repro.platform import heterogeneous_cluster
from repro.profiling.adaptive import adaptive_kernel_model
from repro.profiling.calibration import build_size_aware_suite
from repro.profiling.persistence import load_suite, save_suite
from repro.testbed import TGridEmulator


def main() -> None:
    ctx = StudyContext(seed=0)

    print("1) adaptive outlier-aware calibration (matmul, n = 3000)")
    result = adaptive_kernel_model(ctx.emulator, "matmul", 3000)
    print(f"   outliers confirmed at p = {sorted(result.flagged)} "
          f"(paper dodged 8 and 16 by hand)")
    print(f"   replacements: {result.replacements}, "
          f"{result.measurements_used} measurements total\n")

    print("2) size-aware empirical model: schedule a n = 2500 workload")
    suite = build_size_aware_suite(ctx.emulator)
    graph = generate_dag(
        DagParameters(num_input_matrices=4, add_ratio=0.5, n=2500, seed=9)
    )
    costs = SchedulingCosts(
        graph, ctx.platform, suite.task_model,
        startup_model=suite.startup_model,
        redistribution_model=suite.redistribution_model,
    )
    sched = schedule_dag(graph, costs, "hcpa")
    exp = ctx.emulator.makespan(graph, sched)
    print(f"   scheduled and executed at an unmeasured size: "
          f"experimental makespan {exp:.1f} s\n")

    print("3) scaled suite: predict a machine with 2x faster nodes")
    hypothetical = TGridEmulator(
        ctx.platform, seed=ctx.seed, kernel_time_scale=0.5
    )
    scaled = dataclasses.replace(
        scale_suite(ctx.profile_suite, compute_speedup=2.0), name="scaled"
    )
    graph2 = generate_dag(
        DagParameters(num_input_matrices=4, add_ratio=0.5, n=2000, seed=9)
    )
    costs2 = SchedulingCosts(
        graph2, ctx.platform, scaled.task_model,
        startup_model=scaled.startup_model,
        redistribution_model=scaled.redistribution_model,
    )
    sched2 = schedule_dag(graph2, costs2, "mcpa")
    from repro.simgrid import ApplicationSimulator

    predicted = ApplicationSimulator(
        ctx.platform, scaled.task_model,
        startup_model=scaled.startup_model,
        redistribution_model=scaled.redistribution_model,
    ).run(graph2, sched2).makespan
    actual = hypothetical.makespan(graph2, sched2)
    print(f"   predicted {predicted:.1f} s vs {actual:.1f} s on the "
          f"hypothetical machine "
          f"({100 * abs(predicted - actual) / actual:.1f} % error)\n")

    print("4) heterogeneous cluster (16 fast + 16 half-speed nodes)")
    het = heterogeneous_cluster((1.0,) * 16 + (0.5,) * 16, name="bayreuth")
    het_emu = TGridEmulator(het, seed=ctx.seed)
    from repro.models.analytical import AnalyticalTaskModel

    het_costs = SchedulingCosts(graph2, het, AnalyticalTaskModel(het))
    het_sched = schedule_dag(graph2, het_costs, "hcpa")
    fast_slots = sum(
        1 for t in graph2.task_ids for h in het_sched.hosts(t) if h < 16
    )
    total_slots = sum(len(het_sched.hosts(t)) for t in graph2.task_ids)
    print(f"   HCPA routes {100 * fast_slots / total_slots:.0f} % of "
          f"processor slots to the fast half; makespan "
          f"{het_emu.makespan(graph2, het_sched):.1f} s\n")

    print("5) calibration persistence")
    with tempfile.TemporaryDirectory() as tmp:
        path = save_suite(ctx.profile_suite, Path(tmp) / "bayreuth.json")
        clone = load_suite(path)
        print(f"   saved {path.stat().st_size} bytes; reloaded suite "
              f"{clone.name!r} predicts identically: "
              f"{clone.task_model.duration(graph2.task(0), 8):.2f} s")


if __name__ == "__main__":
    main()
