#!/usr/bin/env python
"""Scheduling a hand-built scientific workflow (no random generator).

Builds the kind of mixed-parallel workflow the paper's introduction
describes — a reduction tree of matrix products feeding a chain of
updates — directly against the public DAG API, then schedules it with
each CPA-family algorithm and inspects the resulting traces, including
the JSON export a downstream tool would consume.

Run:  python examples/custom_workflow.py
"""

import json

from repro import (
    SchedulingCosts,
    StudyContext,
    Task,
    TaskGraph,
    schedule_dag,
)
from repro.dag.kernels import MATADD, MATMUL
from repro.simgrid.trace_tools import render_gantt, trace_to_json


def build_workflow(n: int = 2000) -> TaskGraph:
    """A reduction tree (4 multiplies -> 2 multiplies -> 1 add chain)."""
    g = TaskGraph(name="reduction-tree")
    # Leaves: four independent products of input matrices.
    for i in range(4):
        g.add_task(Task(task_id=i, kernel=MATMUL, n=n, name=f"leaf{i}"))
    # Middle: pairwise combination.
    g.add_task(Task(task_id=4, kernel=MATMUL, n=n, name="combine01"))
    g.add_task(Task(task_id=5, kernel=MATMUL, n=n, name="combine23"))
    g.add_edge(0, 4)
    g.add_edge(1, 4)
    g.add_edge(2, 5)
    g.add_edge(3, 5)
    # Root: accumulate, then two update sweeps.
    g.add_task(Task(task_id=6, kernel=MATADD, n=n, name="accumulate"))
    g.add_edge(4, 6)
    g.add_edge(5, 6)
    g.add_task(Task(task_id=7, kernel=MATADD, n=n, name="update1"))
    g.add_task(Task(task_id=8, kernel=MATADD, n=n, name="update2"))
    g.add_edge(6, 7)
    g.add_edge(7, 8)
    g.validate()
    return g


def main() -> None:
    ctx = StudyContext(seed=0)
    graph = build_workflow()
    suite = ctx.profile_suite
    costs = SchedulingCosts(
        graph,
        ctx.platform,
        suite.task_model,
        startup_model=suite.startup_model,
        redistribution_model=suite.redistribution_model,
    )

    print(f"workflow: {graph.name}, {len(graph)} tasks, {graph.num_edges} edges")
    best = None
    for alg in ("cpa", "hcpa", "mcpa"):
        schedule = schedule_dag(graph, costs, alg)
        trace = ctx.emulator.execute(graph, schedule)
        print(
            f"{alg.upper():>5}: allocations "
            f"{[schedule.allocation(t) for t in sorted(graph.task_ids)]} "
            f"-> experimental makespan {trace.makespan:.2f} s"
        )
        if best is None or trace.makespan < best[2].makespan:
            best = (alg, schedule, trace)

    alg, schedule, trace = best
    print(f"\nbest: {alg.upper()}\n")
    print(render_gantt(trace, num_hosts=ctx.platform.num_nodes, width=60))

    payload = json.loads(trace_to_json(trace))
    print(
        f"\nJSON trace export: {len(payload['tasks'])} task records, "
        f"{len(payload['redistributions'])} redistribution records, "
        f"makespan {payload['makespan']:.2f} s"
    )


if __name__ == "__main__":
    main()
