#!/usr/bin/env python
"""Calibrating a simulator against a target environment.

Walks the measurement story of Sections V-VII (Figs 2, 3, 4, 6 and
Table II):

1. quantify how wrong the flop-count model is (Fig 2);
2. measure the environment overheads the analytical simulator ignores —
   JVM/SSH task startup (Fig 3) and subnet-manager redistribution setup
   (Fig 4);
3. fit sparse-measurement regression models, showing how the p = 8/16
   outliers wreck a naive power-of-two sampling plan (Fig 6);
4. print the fitted Table II next to the paper's printed coefficients.

Run:  python examples/calibrate_simulator.py
"""

from repro import StudyContext, figures
from repro.experiments.reporting import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure6,
    render_table2,
)


def main() -> None:
    ctx = StudyContext(seed=0)

    print(render_figure2(figures.figure2(ctx)))
    print("\n" + "=" * 78 + "\n")
    print(render_figure3(figures.figure3(ctx)))
    print("\n" + "=" * 78 + "\n")
    print(render_figure4(figures.figure4(ctx)))
    print("\n" + "=" * 78 + "\n")
    print(render_figure6(figures.figure6(ctx, n=3000)))
    print("\n" + "=" * 78 + "\n")
    print(render_table2(figures.table2(ctx)))


if __name__ == "__main__":
    main()
