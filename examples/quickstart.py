#!/usr/bin/env python
"""Quickstart: schedule one mixed-parallel DAG, simulate it, "run" it.

This walks the library's core loop in ~40 lines:

1. describe the cluster (the paper's 32-node Bayreuth machine);
2. generate a random mixed-parallel application (Table I generator);
3. schedule it with HCPA using analytical cost estimates;
4. simulate the schedule (SimGrid-like, analytical models);
5. execute the same schedule on the emulated real cluster;
6. compare the two makespans — the paper's whole story in one number.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalTaskModel,
    ApplicationSimulator,
    DagParameters,
    SchedulingCosts,
    TGridEmulator,
    bayreuth_cluster,
    generate_dag,
    schedule_dag,
)
from repro.simgrid.trace_tools import render_gantt


def main() -> None:
    platform = bayreuth_cluster()
    print(f"platform: {platform.num_nodes} nodes @ {platform.flops / 1e6:.0f} MFlop/s")

    params = DagParameters(
        num_input_matrices=4, add_ratio=0.5, n=2000, sample=0, seed=42
    )
    graph = generate_dag(params)
    print(f"application: {graph.name} ({len(graph)} tasks, {graph.num_edges} edges)")

    model = AnalyticalTaskModel(platform)
    costs = SchedulingCosts(graph, platform, model)
    schedule = schedule_dag(graph, costs, "hcpa")
    print(f"schedule (HCPA): allocations {schedule.allocations()}")
    print(f"scheduler's estimate: {schedule.makespan_estimate:.2f} s")

    simulator = ApplicationSimulator(platform, model)
    sim_trace = simulator.run(graph, schedule)
    print(f"\nsimulated makespan (analytical models): {sim_trace.makespan:.2f} s")

    emulator = TGridEmulator(platform, seed=7)
    exp_trace = emulator.execute(graph, schedule)
    print(f"experimental makespan (testbed):        {exp_trace.makespan:.2f} s")
    gap = exp_trace.makespan / sim_trace.makespan
    print(f"reality / simulation = {gap:.2f}x  <- the gap the paper studies\n")

    print(render_gantt(exp_trace, num_hosts=platform.num_nodes, width=64))


if __name__ == "__main__":
    main()
