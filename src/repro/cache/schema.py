"""Cache schema version: the code-generation fingerprint of every entry.

Every on-disk cache entry embeds this string; an entry whose embedded
version differs from the running code's is *stale* and is discarded on
read (see :class:`repro.cache.store.CacheStore`).  Bump it whenever the
semantics of any cached computation change — a scheduling algorithm
tweak, a simulator fix, a calibration change, a serialization change —
so old entries can never masquerade as fresh results.

CI keys its persisted ``.repro-cache`` on a hash of this file, so a
bump also invalidates the cache carried between workflow runs.
"""

from __future__ import annotations

__all__ = ["CACHE_SCHEMA_VERSION"]

#: Bump on any semantic change to cached computations (see module doc).
CACHE_SCHEMA_VERSION = "repro-cache-1"
