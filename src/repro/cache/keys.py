"""Canonical, content-addressed cache keys.

The cache's correctness rests on one property: **two computations get
the same key if and only if their semantically meaningful inputs are
equal**.  :func:`canonical_bytes` therefore defines a deterministic,
type-tagged binary encoding of plain Python data:

* dict entries are sorted by their encoded keys, so insertion order
  never matters;
* floats are encoded by their IEEE-754 bits (``struct.pack('>d')``),
  so formatting (``1.5`` vs ``1.50`` vs ``15e-1``) never matters while
  genuinely different values — even ones that print identically —
  always differ;
* every value carries a type tag and every composite a length prefix,
  so distinct structures can never collide by concatenation
  (``["ab"]`` vs ``["a", "b"]``) and distinct types can never collide
  by repr (``1`` vs ``1.0`` vs ``"1"``);
* dataclasses encode as (class name, field dict) and model objects as
  (class name, ``__dict__``), letting the calibrated simulator suites —
  profile tables, regression fits — act as their own fingerprints.

Objects the encoding cannot handle deterministically (open files, RNGs,
arbitrary callables) raise :class:`CacheKeyError` — the cache refuses
to guess rather than risk a wrong hit.

Mutable-state caveat: the generic object rule hashes ``__dict__``, so
classes carrying derived mutable state (memo tables, topo-order caches)
need an explicit fingerprint here instead — :func:`dag_fingerprint` and
:func:`schedule_fingerprint` exist precisely because :class:`TaskGraph`
and :class:`Schedule` are such classes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
from typing import Any

from repro.util.errors import ReproError

__all__ = [
    "CacheKeyError",
    "canonical_bytes",
    "canonical_hash",
    "dag_fingerprint",
    "schedule_fingerprint",
    "suite_fingerprint",
    "emulator_fingerprint",
    "costs_fingerprint",
]


class CacheKeyError(ReproError):
    """An object cannot be canonically encoded into a cache key."""


def _join(tag: bytes, parts: list[bytes]) -> bytes:
    """Unambiguous composite: tag, child count, length-prefixed children."""
    out = [tag, struct.pack(">I", len(parts))]
    for part in parts:
        out.append(struct.pack(">I", len(part)))
        out.append(part)
    return b"".join(out)


def _encode(obj: Any, stack: tuple[int, ...]) -> bytes:
    if obj is None:
        return b"N"
    if obj is True:
        return b"T"
    if obj is False:
        return b"F"
    cls = type(obj)
    if cls is int:
        return b"i" + repr(obj).encode("ascii")
    if cls is float:
        return b"f" + struct.pack(">d", obj)
    if cls is str:
        return b"s" + obj.encode("utf-8")
    if cls is bytes:
        return b"b" + obj
    # Containers: guard against cycles via the identity stack.
    if id(obj) in stack:
        raise CacheKeyError("cannot encode a cyclic structure into a cache key")
    sub = stack + (id(obj),)
    if cls in (list, tuple):
        return _join(b"L", [_encode(item, sub) for item in obj])
    if cls is dict:
        entries = sorted(
            (_encode(k, sub), _encode(v, sub)) for k, v in obj.items()
        )
        return _join(b"D", [kv for pair in entries for kv in pair])
    if cls in (set, frozenset):
        return _join(b"S", sorted(_encode(item, sub) for item in obj))
    if isinstance(obj, enum.Enum):
        return _join(
            b"E",
            [cls.__qualname__.encode("utf-8"), _encode(obj.value, sub)],
        )
    # numpy scalars and arrays (profile tables, comm matrices) without a
    # hard numpy dependency at import time.
    item = getattr(obj, "item", None)
    if item is not None and getattr(obj, "shape", None) == ():
        return _encode(obj.item(), sub)
    if hasattr(obj, "shape") and hasattr(obj, "tolist"):
        return _join(
            b"A",
            [
                _encode(list(getattr(obj, "shape")), sub),
                _encode(obj.tolist(), sub),
            ],
        )
    # Protocol hook: objects may define their own semantic fingerprint.
    fp = getattr(obj, "cache_fingerprint", None)
    if callable(fp):
        return _join(
            b"P",
            [cls.__qualname__.encode("utf-8"), _encode(fp(), sub)],
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        return _join(
            b"C",
            [cls.__qualname__.encode("utf-8"), _encode(fields, sub)],
        )
    state = getattr(obj, "__dict__", None)
    if isinstance(state, dict):
        return _join(
            b"O",
            [cls.__qualname__.encode("utf-8"), _encode(dict(state), sub)],
        )
    raise CacheKeyError(
        f"cannot canonically encode {cls.__module__}.{cls.__qualname__} "
        "into a cache key; give it a cache_fingerprint() method or build "
        "the key from plain data"
    )


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte encoding of ``obj`` (see module doc)."""
    return _encode(obj, ())


def canonical_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


# ----------------------------------------------------------------------
# domain fingerprints
# ----------------------------------------------------------------------
def dag_fingerprint(graph) -> dict:
    """Semantic content of a :class:`~repro.dag.graph.TaskGraph`.

    Explicit (rather than the generic object rule) because the graph
    carries derived mutable state (the memoised topological order) that
    must not leak into the key, and because edge insertion order is not
    semantically meaningful.
    """
    return {
        "name": graph.name,
        "tasks": [
            (t.task_id, t.kernel.name, t.n, t.name)
            for t in sorted(graph, key=lambda t: t.task_id)
        ],
        "edges": sorted(graph.edges()),
    }


def schedule_fingerprint(schedule) -> dict:
    """Semantic content of a :class:`~repro.scheduling.schedule.Schedule`."""
    return {
        "algorithm": schedule.algorithm,
        "order": list(schedule.order),
        "placements": {
            task_id: (p.hosts, p.est_start, p.est_finish)
            for task_id, p in schedule.placements.items()
        },
    }


def suite_fingerprint(suite) -> dict:
    """Semantic content of a calibrated simulator suite.

    The three model objects encode via the generic rules (tables,
    regression fits, platform parameters), so any change to any fitted
    coefficient or measured entry changes the fingerprint.
    """
    return {
        "name": suite.name,
        "task_model": suite.task_model,
        "startup_model": suite.startup_model,
        "redistribution_model": suite.redistribution_model,
    }


def costs_fingerprint(costs) -> dict:
    """Semantic content of a :class:`SchedulingCosts` estimate provider.

    Built from its constituent models — never from the object itself,
    whose memo tables are derived state.
    """
    return {
        "platform": costs.platform,
        "task_model": costs.task_model,
        "startup_model": costs.startup_model,
        "redistribution_model": costs.redistribution_model,
    }


def emulator_fingerprint(emulator) -> dict:
    """Semantic content of the testbed emulator.

    The declared dataclass fields (platform, seed, noise configuration,
    scaling knobs) fully determine every execution — the ground-truth
    generators are themselves derived from the seed — so the fields are
    the fingerprint; the derived generator objects never enter the key.
    """
    return {
        "fields": {
            f.name: getattr(emulator, f.name)
            for f in dataclasses.fields(emulator)
        },
    }
