"""Content-addressed on-disk entry store with an in-process LRU tier.

Layout: ``<root>/<namespace>/<hash[:2]>/<hash>.pkl`` — one file per
entry, fanned out over 256 subdirectories.  Each file holds a pickled
envelope ``{"schema", "namespace", "key", "value"}``; the embedded
schema version and key hash are verified on every read, so a stale
(old-schema) or corrupted (truncated, bit-flipped, misplaced) entry is
*detected, counted, deleted and reported as a miss* — it can never
crash a study or smuggle wrong data into one.

Writes are atomic: the envelope goes to a unique temporary file in the
same directory and is published with :func:`os.replace`.  Concurrent
writers (the study runner's fork pool) can therefore race on the same
entry safely — both compute the same value, the last rename wins, and
no reader ever observes a half-written file.

The LRU tier keeps recently touched values in memory so repeated
lookups within one process (e.g. the 27-cell grid re-querying one
calibration suite) skip deserialisation entirely.
"""

from __future__ import annotations

import io
import os
import pickle
import shutil
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cache.schema import CACHE_SCHEMA_VERSION
from repro.obs.recorder import get_recorder

__all__ = ["CacheEntryStatus", "CacheStoreInfo", "CacheStore"]

_SUFFIX = ".pkl"
#: Pickle protocol pinned for portability across the supported Pythons.
_PICKLE_PROTOCOL = 4

#: Sentinel distinguishing "miss" from a cached None value.
_MISS = object()


class CacheEntryStatus:
    """Read outcomes (internal, used for counters and tests)."""

    HIT = "hit"
    MISS = "miss"
    STALE = "stale"
    CORRUPT = "corrupt"


@dataclass
class CacheStoreInfo:
    """Aggregate statistics of one store scan."""

    root: str
    schema: str
    entries: int = 0
    bytes: int = 0
    stale_entries: int = 0
    corrupt_entries: int = 0
    namespaces: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "schema": self.schema,
            "entries": self.entries,
            "bytes": self.bytes,
            "stale_entries": self.stale_entries,
            "corrupt_entries": self.corrupt_entries,
            "namespaces": dict(self.namespaces),
        }


class CacheStore:
    """File-per-entry store, safe under concurrent forked writers."""

    def __init__(
        self,
        root: str | Path,
        *,
        schema: str = CACHE_SCHEMA_VERSION,
        lru_entries: int = 512,
    ) -> None:
        if lru_entries < 0:
            raise ValueError(f"lru_entries must be >= 0, got {lru_entries}")
        self.root = Path(root)
        self.schema = schema
        self._lru_entries = lru_entries
        self._lru: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._tmp_counter = 0

    # -- paths ---------------------------------------------------------
    def _entry_path(self, namespace: str, key_hash: str) -> Path:
        return self.root / namespace / key_hash[:2] / (key_hash + _SUFFIX)

    # -- read ----------------------------------------------------------
    def get(self, namespace: str, key_hash: str) -> tuple[bool, Any]:
        """Look up an entry; returns ``(found, value)``.

        A stale-schema or corrupt file counts as a miss: it is deleted,
        a ``cache.discard`` event is recorded, and the caller recomputes.
        """
        lru_key = (namespace, key_hash)
        cached = self._lru.get(lru_key, _MISS)
        if cached is not _MISS:
            self._lru.move_to_end(lru_key)
            return True, cached
        path = self._entry_path(namespace, key_hash)
        value, status, nbytes = self._read_entry(path, namespace, key_hash)
        if status == CacheEntryStatus.HIT:
            self._remember(lru_key, value)
            obs = get_recorder()
            if obs.enabled:
                obs.count("cache.bytes_read", nbytes)
            return True, value
        if status in (CacheEntryStatus.STALE, CacheEntryStatus.CORRUPT):
            self._discard(path, namespace, status)
        return False, None

    def peek(self, namespace: str, key_hash: str) -> tuple[bool, Any]:
        """Side-effect-free lookup; returns ``(found, value)``.

        Unlike :meth:`get`, a peek never disturbs the state the counted
        path owns: the LRU is consulted without reordering, a disk hit
        is neither counted (``cache.bytes_read``) nor remembered in the
        LRU, and stale or corrupt files are left in place — the counted
        read that follows a real hit still discards and counts them.
        The study planner's batched cache front-end probes with this,
        so probing leaves every counter and every LRU position exactly
        as if the probe had never happened.
        """
        cached = self._lru.get((namespace, key_hash), _MISS)
        if cached is not _MISS:
            return True, cached
        path = self._entry_path(namespace, key_hash)
        value, status, _nbytes = self._read_entry(path, namespace, key_hash)
        if status == CacheEntryStatus.HIT:
            return True, value
        return False, None

    def contains(self, namespace: str, key_hash: str) -> bool:
        """Cheap existence hint: LRU membership or an entry file on disk.

        Purely advisory — the file is not read or validated, so a stale
        or corrupt entry answers True and the counted read that follows
        discovers the truth.  Callers must treat a wrong hint as "fall
        back to the normal path", never as data.
        """
        if (namespace, key_hash) in self._lru:
            return True
        return self._entry_path(namespace, key_hash).exists()

    def _read_entry(
        self, path: Path, namespace: str, key_hash: str
    ) -> tuple[Any, str, int]:
        try:
            blob = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None, CacheEntryStatus.MISS, 0
        try:
            envelope = pickle.load(io.BytesIO(blob))
        except Exception:
            # Truncated writes, bit rot, or non-pickle garbage.
            return None, CacheEntryStatus.CORRUPT, 0
        if not isinstance(envelope, dict) or "value" not in envelope:
            return None, CacheEntryStatus.CORRUPT, 0
        if envelope.get("schema") != self.schema:
            return None, CacheEntryStatus.STALE, 0
        if (
            envelope.get("namespace") != namespace
            or envelope.get("key") != key_hash
        ):
            # A file placed under the wrong name can never be trusted.
            return None, CacheEntryStatus.CORRUPT, 0
        return envelope["value"], CacheEntryStatus.HIT, len(blob)

    def _discard(self, path: Path, namespace: str, status: str) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone or unwritable
            pass
        obs = get_recorder()
        if obs.enabled:
            obs.count(f"cache.discarded.{status}")
            obs.event(
                "cache.discard",
                namespace=namespace,
                path=str(path),
                reason=status,
            )

    def _remember(self, lru_key: tuple[str, str], value: Any) -> None:
        if not self._lru_entries:
            return
        self._lru[lru_key] = value
        self._lru.move_to_end(lru_key)
        while len(self._lru) > self._lru_entries:
            self._lru.popitem(last=False)

    # -- write ---------------------------------------------------------
    def put(self, namespace: str, key_hash: str, value: Any) -> int:
        """Atomically persist an entry; returns the bytes written."""
        envelope = {
            "schema": self.schema,
            "namespace": namespace,
            "key": key_hash,
            "value": value,
        }
        blob = pickle.dumps(envelope, protocol=_PICKLE_PROTOCOL)
        path = self._entry_path(namespace, key_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp_counter += 1
        tmp = path.parent / (
            f".{key_hash}.{os.getpid()}.{self._tmp_counter}.tmp"
        )
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on replace failure
                tmp.unlink(missing_ok=True)
        self._remember((namespace, key_hash), value)
        obs = get_recorder()
        if obs.enabled:
            obs.count("cache.bytes_written", len(blob))
        return len(blob)

    # -- maintenance ---------------------------------------------------
    def _iter_entry_paths(self):
        if not self.root.is_dir():
            return
        for namespace_dir in sorted(self.root.iterdir()):
            if not namespace_dir.is_dir():
                continue
            for path in sorted(namespace_dir.glob(f"*/*{_SUFFIX}")):
                yield namespace_dir.name, path

    def info(self) -> CacheStoreInfo:
        """Scan the store: entry counts, sizes, stale/corrupt tallies."""
        info = CacheStoreInfo(root=str(self.root), schema=self.schema)
        for namespace, path in self._iter_entry_paths():
            _value, status, _nbytes = self._read_entry(
                path, namespace, path.stem
            )
            size = path.stat().st_size
            ns = info.namespaces.setdefault(
                namespace, {"entries": 0, "bytes": 0}
            )
            if status == CacheEntryStatus.HIT:
                info.entries += 1
                info.bytes += size
                ns["entries"] += 1
                ns["bytes"] += size
            elif status == CacheEntryStatus.STALE:
                info.stale_entries += 1
            else:
                info.corrupt_entries += 1
        return info

    def prune(self) -> int:
        """Delete stale-schema and corrupt entries; returns the count."""
        removed = 0
        for namespace, path in self._iter_entry_paths():
            _value, status, _nbytes = self._read_entry(
                path, namespace, path.stem
            )
            if status in (CacheEntryStatus.STALE, CacheEntryStatus.CORRUPT):
                self._discard(path, namespace, status)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry (and the store directory); returns the count."""
        removed = sum(1 for _ in self._iter_entry_paths())
        self._lru.clear()
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return removed
