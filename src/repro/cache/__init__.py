"""Content-addressed result cache with incremental study re-execution.

The study methodology is iterative: the same comparison grid is re-run
across simulator variants, matrix sizes and calibration sweeps.  This
package makes re-runs incremental — any grid cell whose inputs are
unchanged is replayed bit-identically from disk instead of recomputed,
and editing one parameter recomputes only the cells it reaches.

Pieces
------
:mod:`repro.cache.keys`
    Canonical hashing: a deterministic type-tagged encoding (dict-order
    and float-formatting insensitive) plus domain fingerprints for
    DAGs, schedules, suites, cost models and the emulator.
:mod:`repro.cache.store`
    Atomic file-per-entry store (write-temp-then-rename, fork-pool
    safe) with an in-process LRU tier and corruption/version-skew
    detection.
:mod:`repro.cache.result_cache`
    The :class:`ResultCache` facade the pipeline calls, with per-layer
    hit/miss counters through the observability Recorder.
:data:`CACHE_SCHEMA_VERSION`
    The code-generation fingerprint embedded in every entry; bumping it
    invalidates all previously persisted results.

Usage
-----
>>> from repro.cache import ResultCache
>>> cache = ResultCache(".repro-cache")
>>> cache.get_or_compute("simulation", {"answer": 42}, lambda: "slow")
'slow'
>>> cache.get_or_compute("simulation", {"answer": 42}, lambda: 1 / 0)
'slow'
"""

from repro.cache.keys import (
    CacheKeyError,
    canonical_bytes,
    canonical_hash,
    costs_fingerprint,
    dag_fingerprint,
    emulator_fingerprint,
    schedule_fingerprint,
    suite_fingerprint,
)
from repro.cache.result_cache import ResultCache
from repro.cache.schema import CACHE_SCHEMA_VERSION
from repro.cache.store import CacheEntryStatus, CacheStore, CacheStoreInfo

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntryStatus",
    "CacheKeyError",
    "CacheStore",
    "CacheStoreInfo",
    "ResultCache",
    "canonical_bytes",
    "canonical_hash",
    "costs_fingerprint",
    "dag_fingerprint",
    "emulator_fingerprint",
    "schedule_fingerprint",
    "suite_fingerprint",
]
