"""The memoization facade the pipeline integrates against.

A :class:`ResultCache` wraps one :class:`~repro.cache.store.CacheStore`
and exposes :meth:`get_or_compute` over named *layers* — the study
pipeline uses three:

``calibration``
    Fitted simulator suites, keyed by the emulator's configuration and
    the measurement plan.  Shared across every study on the same
    environment.
``schedule``
    One :class:`Schedule` per (platform, DAG, cost models, algorithm).
``simulation``
    One :class:`SimulationTrace` per (schedule, executor) — the
    executor being either a simulator suite or the testbed emulator
    with its run label.

Every key additionally includes the cache schema version (via the
store's envelope), so a code-semantics bump invalidates everything at
once.  Hit/miss tallies are recorded per layer through the global
:class:`~repro.obs.recorder.Recorder` as ``cache.hits`` /
``cache.misses`` / ``cache.<layer>.hits`` / ``cache.<layer>.misses``
counters, alongside the store's ``cache.bytes_read`` /
``cache.bytes_written``; ``repro report`` turns them into per-layer
hit rates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.cache.keys import canonical_hash
from repro.cache.schema import CACHE_SCHEMA_VERSION
from repro.cache.store import CacheStore, CacheStoreInfo
from repro.obs.recorder import get_recorder

__all__ = ["ResultCache"]

T = TypeVar("T")

#: The integrated pipeline layers (other namespaces are allowed; these
#: are the ones the study runner and calibration use).
LAYERS = ("calibration", "schedule", "simulation")


class ResultCache:
    """Content-addressed memoization over a directory.

    Safe to share with forked pool workers: lookups and stores go
    through the store's atomic file protocol, and each process keeps
    its own in-memory LRU tier.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        schema: str = CACHE_SCHEMA_VERSION,
        lru_entries: int = 512,
    ) -> None:
        self.store = CacheStore(root, schema=schema, lru_entries=lru_entries)

    @property
    def root(self) -> Path:
        return self.store.root

    # -- the memoization primitive -------------------------------------
    def key_hash(self, key: Any) -> str:
        """Canonical content hash of a key structure."""
        return canonical_hash(key)

    def get_or_compute(
        self, layer: str, key: Any, compute: Callable[[], T]
    ) -> T:
        """Return the cached value for ``(layer, key)`` or compute it.

        ``key`` is any canonically-encodable structure (see
        :mod:`repro.cache.keys`); ``compute`` runs only on a miss and
        its result is persisted before being returned.
        """
        key_hash = canonical_hash(key)
        found, value = self.store.get(layer, key_hash)
        obs = get_recorder()
        if found:
            if obs.enabled:
                obs.count("cache.hits")
                obs.count(f"cache.{layer}.hits")
            return value
        if obs.enabled:
            obs.count("cache.misses")
            obs.count(f"cache.{layer}.misses")
        value = compute()
        self.store.put(layer, key_hash, value)
        return value

    def peek(self, layer: str, key: Any) -> tuple[bool, Any]:
        """Side-effect-free probe of ``(layer, key)``; ``(found, value)``.

        Records no hit/miss counters, warms no LRU tier and discards no
        stale files (see :meth:`CacheStore.peek`): the study planner
        uses it to decide *where* a cell should run, and every value a
        study actually consumes still flows through the counted
        :meth:`get_or_compute` path afterwards.
        """
        return self.store.peek(layer, canonical_hash(key))

    def contains(self, layer: str, key: Any) -> bool:
        """Existence hint for ``(layer, key)`` without reading the entry.

        Advisory only — a stale entry answers True; callers must treat
        a wrong hint as "use the normal path", never as data.
        """
        return self.store.contains(layer, canonical_hash(key))

    # -- maintenance (the ``repro cache`` command) ---------------------
    def info(self) -> CacheStoreInfo:
        return self.store.info()

    def prune(self) -> int:
        return self.store.prune()

    def clear(self) -> int:
        return self.store.clear()
