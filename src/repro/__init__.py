"""repro — reproduction of "From Simulation to Experiment: A Case Study
on Multiprocessor Task Scheduling" (Hunold, Casanova & Suter, APDCM 2011).

The library contains everything the case study needs, built from
scratch:

* a mixed-parallel application model and the paper's random DAG
  generator (:mod:`repro.dag`);
* a SimGrid-like discrete-event simulator with the ``ptask_L07``
  parallel-task model (:mod:`repro.simgrid`);
* the CPA / HCPA / MCPA scheduling algorithms (:mod:`repro.scheduling`);
* three simulator cost-model families — analytical, profile-based,
  empirical (:mod:`repro.models`);
* a high-fidelity testbed emulator standing in for the paper's physical
  cluster (:mod:`repro.testbed`);
* the profiling/calibration harness (:mod:`repro.profiling`);
* the study driver reproducing every table and figure
  (:mod:`repro.experiments`);
* a structured observability layer — event tracing, metrics, run
  provenance — spanning all of the above (:mod:`repro.obs`);
* a content-addressed result cache memoising calibrations, schedules
  and traces for incremental study re-execution (:mod:`repro.cache`).

Quickstart
----------
>>> from repro import StudyContext, figures
>>> ctx = StudyContext(seed=0)
>>> comparison = figures.figure1(ctx, n=2000)   # analytic sim vs experiment
>>> comparison.num_wrong <= comparison.num_dags
True
"""

from importlib import metadata as _metadata

#: Fallback when the package is used straight off PYTHONPATH=src without
#: installed distribution metadata; kept in sync with pyproject.toml.
_FALLBACK_VERSION = "1.9.0"

try:
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover - env dependent
    __version__ = _FALLBACK_VERSION

from repro import obs
from repro.cache import ResultCache
from repro.dag import (
    DagParameters,
    Task,
    TaskGraph,
    generate_dag,
    generate_paper_dags,
)
from repro.experiments import StudyContext, figures, run_study
from repro.models import (
    AnalyticalTaskModel,
    EmpiricalTaskModel,
    ProfileTaskModel,
)
from repro.platform import (
    ClusterPlatform,
    bayreuth_cluster,
    cray_xt4,
    heterogeneous_cluster,
)
from repro.profiling import (
    build_empirical_suite,
    build_profile_suite,
)
from repro.scheduling import ALGORITHMS, Schedule, SchedulingCosts, schedule_dag
from repro.simgrid import ApplicationSimulator, SimulationTrace
from repro.testbed import TGridEmulator

__all__ = [
    "DagParameters",
    "Task",
    "TaskGraph",
    "generate_dag",
    "generate_paper_dags",
    "StudyContext",
    "figures",
    "run_study",
    "AnalyticalTaskModel",
    "EmpiricalTaskModel",
    "ProfileTaskModel",
    "ClusterPlatform",
    "bayreuth_cluster",
    "cray_xt4",
    "heterogeneous_cluster",
    "build_empirical_suite",
    "build_profile_suite",
    "ALGORITHMS",
    "Schedule",
    "SchedulingCosts",
    "schedule_dag",
    "ApplicationSimulator",
    "SimulationTrace",
    "TGridEmulator",
    "ResultCache",
    "obs",
    "__version__",
]
