"""The TGrid testbed emulator — the reproduction's "real cluster".

:class:`TGridEmulator` plays the role of the physical Bayreuth cluster
plus the TGrid runtime.  It executes schedules with the same execution
discipline as the simulator (so the comparison isolates *model* error,
exactly like the paper's methodology) but with the environment's true
behaviour:

* kernel times from the generative ground-truth curves of
  :mod:`repro.testbed.kernels_rt` (fluctuation + outliers + noise);
* JVM/SSH startup overhead per task (:mod:`repro.testbed.jvm`);
* subnet-manager overhead per redistribution
  (:mod:`repro.testbed.subnet`);
* data transfers over the real network, which only achieves a fraction
  of nominal Gigabit bandwidth (TCP/IP + MPIJava serialisation);
* lognormal per-execution noise everywhere.

It also exposes the microbenchmark hooks the profiling harness drives
(Sections VI-A/B/C): timing one kernel, one no-op task startup, one
empty-matrix redistribution.  The profile and empirical simulators are
calibrated exclusively through these hooks — they never see the
generative curves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.dag.graph import Task, TaskGraph
from repro.models.base import ModelKind, TaskTimeModel
from repro.models.overheads import RedistributionOverheadModel, StartupOverheadModel
from repro.obs.recorder import get_recorder
from repro.platform.cluster import ClusterPlatform
from repro.scheduling.schedule import Schedule
from repro.simgrid.arena import ActionArena, resolve_engine
from repro.simgrid.simulator import ApplicationSimulator, SimulationTrace
from repro.testbed.jvm import JvmStartupGroundTruth
from repro.testbed.kernels_rt import GroundTruthKernels
from repro.testbed.noise import lognormal_noise
from repro.testbed.subnet import SubnetManagerGroundTruth
from repro.util.rng import derive_seed, spawn_rng

__all__ = ["TGridEmulator", "DEFAULT_KERNEL_NOISE"]

#: Per-execution kernel-noise log-std by matrix size.
DEFAULT_KERNEL_NOISE = {2000: 0.05, 3000: 0.025}
#: Fallback for sizes outside the paper's grid.
FALLBACK_KERNEL_NOISE = 0.03


class _GroundTruthTaskModel(TaskTimeModel):
    """Adapter: samples the ground-truth kernel time per task execution."""

    name = "ground-truth"

    def __init__(
        self,
        kernels: GroundTruthKernels,
        rng: np.random.Generator,
        sigma_of_n,
        scale: float = 1.0,
    ) -> None:
        self._kernels = kernels
        self._rng = rng
        self._sigma_of_n = sigma_of_n
        self._scale = scale

    @property
    def kind(self) -> ModelKind:
        return ModelKind.MEASURED

    def duration(self, task: Task, p: int) -> float:
        mean = self._kernels.mean_time(task.kernel.name, task.n, p)
        return self._scale * mean * lognormal_noise(
            self._rng, self._sigma_of_n(task.n)
        )


class _GroundTruthStartup(StartupOverheadModel):
    name = "ground-truth-startup"

    def __init__(
        self,
        jvm: JvmStartupGroundTruth,
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> None:
        self._jvm = jvm
        self._rng = rng
        self._scale = scale

    def startup(self, p: int) -> float:
        self._check(p)
        return self._scale * self._jvm.sample(p, self._rng)


class _GroundTruthRedistribution(RedistributionOverheadModel):
    name = "ground-truth-redistribution"

    def __init__(
        self,
        subnet: SubnetManagerGroundTruth,
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> None:
        self._subnet = subnet
        self._rng = rng
        self._scale = scale

    def overhead(self, p_src: int, p_dst: int) -> float:
        self._check(p_src, p_dst)
        return self._scale * self._subnet.sample(p_src, p_dst, self._rng)


@dataclass
class TGridEmulator:
    """The emulated cluster + TGrid runtime.

    Parameters
    ----------
    platform:
        Nominal platform description (what the simulator also sees).
    seed:
        Environment seed: fixes fluctuation patterns and all noise
        streams.
    bandwidth_efficiency:
        Fraction of nominal link bandwidth the runtime actually achieves
        for redistribution payloads (TCP + serialisation overhead).
    kernel_noise_sigma:
        Log-std of per-execution kernel time noise, keyed by matrix
        size.  Short tasks are proportionally noisier (JIT warm-up, GC
        pauses amortise less), which is part of why the paper's n = 2000
        comparisons were harder to predict.  Sizes missing from the dict
        fall back to :data:`DEFAULT_KERNEL_NOISE`.
    with_outliers / with_noise:
        Ablation switches (disable the Fig 6 outliers or all stochastic
        noise).
    """

    platform: ClusterPlatform
    seed: int = 0
    bandwidth_efficiency: float = 0.8
    kernel_noise_sigma: dict[int, float] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_KERNEL_NOISE)
    )
    with_outliers: bool = True
    with_noise: bool = True
    #: Hypothetical-machine scaling knobs (paper conclusion: models
    #: "could be instantiated for an existing execution environment and
    #: scaled to simulate an hypothetical execution environment").
    #: kernel_time_scale = 0.5 emulates nodes twice as fast; the
    #: overhead scales cover a faster runtime (newer JVM, better subnet
    #: manager).  All default to 1 (the measured Bayreuth machine).
    kernel_time_scale: float = 1.0
    startup_scale: float = 1.0
    redistribution_scale: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.bandwidth_efficiency <= 1.0):
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        for attr in ("kernel_time_scale", "startup_scale", "redistribution_scale"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        env_seed = derive_seed(self.seed, "testbed", self.platform.name)
        self.kernels = GroundTruthKernels(
            seed=env_seed, with_outliers=self.with_outliers
        )
        noise_off = 0.0
        self.jvm = JvmStartupGroundTruth(
            seed=env_seed,
            noise_sigma=0.06 if self.with_noise else noise_off,
        )
        self.subnet = SubnetManagerGroundTruth(
            seed=env_seed,
            noise_sigma=0.08 if self.with_noise else noise_off,
        )
        self._env_seed = env_seed
        # Reusable array-engine arena, shared by every execution on this
        # emulator (plain attribute, not a dataclass field, so it stays
        # out of emulator_fingerprint — backends are bit-identical and
        # must not split the cache).
        self._arena: ActionArena | None = None
        # The network as the application experiences it.
        self.effective_platform = dataclasses.replace(
            self.platform,
            link_bandwidth=self.platform.link_bandwidth * self.bandwidth_efficiency,
            backbone_bandwidth=(
                self.platform.backbone_bandwidth * self.bandwidth_efficiency
            ),
        )

    # ------------------------------------------------------------------
    # schedule execution ("running the experiment")
    # ------------------------------------------------------------------
    def execute(
        self,
        graph: TaskGraph,
        schedule: Schedule,
        run_label: object = 0,
        *,
        engine: str | None = None,
    ) -> SimulationTrace:
        """Execute a schedule on the emulated cluster.

        Deterministic for identical ``(graph, schedule, run_label)``
        regardless of the engine backend (both backends are
        bit-identical); vary ``run_label`` to emulate repeated
        real-world runs.
        """
        rng = spawn_rng(
            self._env_seed, "execute", graph.name, schedule.algorithm, run_label
        )
        engine = resolve_engine(engine)
        arena = None
        if engine == "array":
            arena = self._arena
            if arena is None:
                arena = self._arena = ActionArena()
        executor = ApplicationSimulator(
            self.effective_platform,
            _GroundTruthTaskModel(
                self.kernels, rng, self._kernel_sigma, self.kernel_time_scale
            ),
            startup_model=_GroundTruthStartup(self.jvm, rng, self.startup_scale),
            redistribution_model=_GroundTruthRedistribution(
                self.subnet, rng, self.redistribution_scale
            ),
            engine=engine,
            arena=arena,
        )
        obs = get_recorder()
        if obs.enabled:
            obs.count("testbed.executions")
        tl = obs.timeline if obs.enabled else None
        with obs.span(
            "testbed.execute", dag=graph.name, algorithm=schedule.algorithm
        ):
            if tl is None:
                return executor.run(graph, schedule)
            # Tag the emulated run's timeline as the experiment side, so
            # `repro diff` can pair it against (or apart from) pure-sim
            # runs of the same cell.
            with tl.context(role="experiment"):
                return executor.run(graph, schedule)

    def makespan(
        self, graph: TaskGraph, schedule: Schedule, run_label: object = 0
    ) -> float:
        """Convenience: the experimental makespan of one run."""
        return self.execute(graph, schedule, run_label).makespan

    def _kernel_sigma(self, n: int) -> float:
        """Per-execution kernel-noise log-std for matrix size ``n``."""
        if not self.with_noise:
            return 0.0
        return self.kernel_noise_sigma.get(n, FALLBACK_KERNEL_NOISE)

    # ------------------------------------------------------------------
    # microbenchmark hooks (what the profiler drives)
    # ------------------------------------------------------------------
    def measure_kernel(
        self, kernel_name: str, n: int, p: int, trials: int = 1
    ) -> list[float]:
        """Time ``trials`` standalone executions of a kernel (seconds)."""
        if trials < 1:
            raise ValueError("trials must be >= 1")
        obs = get_recorder()
        if obs.enabled:
            obs.count("testbed.bench_kernel_trials", trials)
        sigma = self._kernel_sigma(n)
        rng = spawn_rng(self._env_seed, "bench-kernel", kernel_name, n, p)
        mean = self.kernel_time_scale * self.kernels.mean_time(kernel_name, n, p)
        return [mean * lognormal_noise(rng, sigma) for _ in range(trials)]

    def measure_startup(self, p: int, trials: int = 20) -> list[float]:
        """Time ``trials`` no-op task startups on ``p`` processors.

        Mirrors the paper's measurement: "the execution time of an
        application that consists of p no-op processes", 20 trials.
        """
        if trials < 1:
            raise ValueError("trials must be >= 1")
        obs = get_recorder()
        if obs.enabled:
            obs.count("testbed.bench_startup_trials", trials)
        rng = spawn_rng(self._env_seed, "bench-startup", p)
        return [self.startup_scale * self.jvm.sample(p, rng) for _ in range(trials)]

    def measure_redistribution_overhead(
        self, p_src: int, p_dst: int, trials: int = 3
    ) -> list[float]:
        """Time ``trials`` near-empty redistributions (paper: 3 trials).

        The measured quantity is the protocol overhead: the payload is a
        mostly-empty matrix whose transfer time is negligible, but every
        processor sends at least one byte so the full protocol runs.
        """
        if trials < 1:
            raise ValueError("trials must be >= 1")
        obs = get_recorder()
        if obs.enabled:
            obs.count("testbed.bench_redistribution_trials", trials)
        rng = spawn_rng(self._env_seed, "bench-redist", p_src, p_dst)
        return [
            self.redistribution_scale * self.subnet.sample(p_src, p_dst, rng)
            for _ in range(trials)
        ]
