"""JVM/SSH task startup overhead of the emulated TGrid runtime.

TGrid starts a task by SSH-ing to every allocated node, launching a JVM
and a task container, registering it with the TGrid server and shipping
byte code (paper, Section VI-B).  The measured overhead (Fig 3) lies
between ~0.8 s and ~1.6 s for p = 1..32, grows roughly linearly
(Table II fit: 0.03 p + 0.65) but is *not monotone* — concurrent SSH
handshakes, DNS caches and JVM warm-up interact unpredictably.

The ground truth is therefore the Table II line plus a deterministic
non-monotone wiggle (a fixed property of the environment), and each
execution adds lognormal noise (Fig 3 averages 20 trials per point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.testbed.noise import lognormal_noise, structural_uniform

__all__ = ["JvmStartupGroundTruth"]

#: Table II regression of the measured startup overhead.
STARTUP_SLOPE = 0.03
STARTUP_INTERCEPT = 0.65


@dataclass(frozen=True)
class JvmStartupGroundTruth:
    """Mean task startup overhead per allocation size.

    Parameters
    ----------
    seed:
        Environment seed; fixes the non-monotone wiggle.
    wiggle:
        Half-width of the deterministic deviation from the linear trend.
    noise_sigma:
        Log-std of the per-execution noise.
    """

    seed: int = 0
    wiggle: float = 0.12
    noise_sigma: float = 0.06

    def mean_overhead(self, p: int) -> float:
        """Mean startup seconds for a task on ``p`` processors."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        trend = STARTUP_SLOPE * p + STARTUP_INTERCEPT
        deviation = structural_uniform(self.seed, "jvm-startup", p)
        return max(0.05, trend + self.wiggle * deviation)

    def sample(self, p: int, rng: np.random.Generator) -> float:
        """One noisy startup measurement/execution."""
        return self.mean_overhead(p) * lognormal_noise(rng, self.noise_sigma)
