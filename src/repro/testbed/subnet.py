"""Subnet-manager redistribution overhead of the emulated TGrid runtime.

Before a TGrid redistribution can move data, every process of the source
and destination tasks registers with a *single, central* subnet manager
and queries it for its peers' endpoints (paper, Section V-C).  The
measured overhead (Fig 4) "depends mostly on p(dst)": destination
processes each pull the full source-side contact table, and the central
manager serialises those lookups.

The ground truth mean is built so the paper's Table II fit is recovered
by construction: averaged over the source count, the overhead is
``7.88 ms * p_dst + 108.58 ms`` exactly; a small source-count term
(zero-mean over p_src = 1..32) and a deterministic wiggle keep the
surface realistically non-flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.testbed.noise import lognormal_noise, structural_uniform

__all__ = ["SubnetManagerGroundTruth"]

#: Table II regression of the redistribution startup overhead (seconds).
REDIST_SLOPE = 0.00788
REDIST_INTERCEPT = 0.10858

#: Mild dependence on the source count, zero-mean over p_src = 1..32 so
#: the averaged fit recovers the intercept above.
SRC_SLOPE = 0.0008
SRC_MEAN = 16.5


@dataclass(frozen=True)
class SubnetManagerGroundTruth:
    """Mean redistribution overhead per (source, destination) counts."""

    seed: int = 0
    wiggle: float = 0.006
    noise_sigma: float = 0.08

    def mean_overhead(self, p_src: int, p_dst: int) -> float:
        """Mean protocol overhead in seconds (no data transfer)."""
        if p_src < 1 or p_dst < 1:
            raise ValueError(
                f"processor counts must be >= 1, got {p_src}, {p_dst}"
            )
        base = REDIST_SLOPE * p_dst + REDIST_INTERCEPT
        src_term = SRC_SLOPE * (p_src - SRC_MEAN)
        deviation = structural_uniform(self.seed, "subnet", p_src, p_dst)
        return max(0.01, base + src_term + self.wiggle * deviation)

    def sample(self, p_src: int, p_dst: int, rng: np.random.Generator) -> float:
        """One noisy redistribution-overhead measurement/execution."""
        return self.mean_overhead(p_src, p_dst) * lognormal_noise(
            rng, self.noise_sigma
        )
