"""Ground-truth kernel execution times of the emulated cluster.

The mean curves are taken from the paper's own Table II — the published
regressions *of the real measurements* — so the testbed reproduces the
measured reality as closely as the paper lets us:

===============  =======================  ==========================
kernel, n        p <= 16                  p > 16
===============  =======================  ==========================
matmul, 2000     239.44 / (2p) + 3.43     0.08 p + d  (d: continuous)
matmul, 3000     537.91 / p - 25.55       -0.09 p + 11.47
matadd, 2000     22.99 / p + 0.03         (same hyperbola)
matadd, 3000     73.59 / p + 0.38         (same hyperbola)
===============  =======================  ==========================

Reconciliation note: the printed linear coefficients for n = 2000
(c = 0.08, d = 1.93) are inconsistent with the hyperbolic branch at the
regime boundary (11 s vs 3 s at p = 16) — almost certainly a typo in the
paper, since the n = 3000 branches *are* continuous at p = 15.  We keep
the printed slope and shift the intercept for continuity at p = 16.

On top of the mean curves the testbed adds what the paper identified as
the sources of analytical-model error (Sections V-C and VII-A):

* a deterministic pattern-less **fluctuation** per (kernel, n, p) —
  "the error fluctuates without clear patterns up to 60 %" (Fig 2);
* the **p = 8 outlier** for n = 3000 (memory-hierarchy effects: "the
  computation of the local matrix updates ... are simply slower");
* the **p = 16 outlier** for n = 3000 (load imbalance of the vanilla 1D
  distribution: "the last processor is simply allocated too many matrix
  rows/columns");
* multiplicative per-execution **noise** (applied by the caller via
  :func:`~repro.testbed.noise.lognormal_noise`).

A second personality, :class:`CrayPdgemmGroundTruth`, models the tuned
PDGEMM kernel on the Cray XT4 of Fig 2 (right): close to the analytical
model, with a 2-20 % fluctuating error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dag.distributions import BlockDistribution
from repro.testbed.noise import structural_factor, structural_uniform
from repro.util.errors import SimulationError

__all__ = [
    "GroundTruthKernels",
    "CrayPdgemmGroundTruth",
    "TABLE2_CURVES",
    "REGIME_SPLIT",
]

#: Boundary between the strong-scaling and overhead-dominated regimes.
REGIME_SPLIT = 16

#: Matrix sizes the emulated environment supports (the paper measured
#: 2000 and 3000; interpolation covers the range between and slightly
#: beyond, see :meth:`GroundTruthKernels._curve_params`).
SIZE_MIN = 1500
SIZE_MAX = 3500

#: The paper's Table II regression coefficients, used generatively.
#: matmul entries: (a, b) of a/p + b for p <= 16 and (c, d) of c*p + d
#: for p > 16 (n = 2000 written as a/(2p) + b in the paper; the factor 2
#: is folded into a here).  matadd entries: (a, b) of a/p + b for all p.
TABLE2_CURVES = {
    ("matmul", 2000): {"hyp": (239.44 / 2.0, 3.43), "lin_slope": 0.08},
    ("matmul", 3000): {"hyp": (537.91, -25.55), "lin": (-0.09, 11.47)},
    ("matadd", 2000): {"hyp": (22.99, 0.03)},
    ("matadd", 3000): {"hyp": (73.59, 0.38)},
}

#: Amplitude of the pattern-less per-(n, p) deviation of the Java
#: kernels.  Smaller matrices are more sensitive to cache geometry and
#: JIT behaviour (the paper's Fig 2 shows wilder errors for its Java
#: kernels than for tuned PDGEMM), so n = 2000 fluctuates harder.
DEFAULT_FLUCTUATION = {
    ("matmul", 2000): 0.35,
    ("matmul", 3000): 0.25,
    ("matadd", 2000): 0.20,
    ("matadd", 3000): 0.12,
}
# (calibrated so the Fig 2 error envelope and the Fig 1/5/7 sign-flip
# rates land in the paper's regime; see EXPERIMENTS.md)

#: Outlier multipliers for n = 3000 (Fig 6 left).
OUTLIER_P8_FACTOR = 1.5
#: Load-imbalance at p = 16 comes from the naive 1D split plus cache
#: effects; the multiplier below lands the measured point visibly above
#: the fitted curve, as in Fig 6.
OUTLIER_P16_FACTOR = 1.6


@dataclass(frozen=True)
class GroundTruthKernels:
    """Mean execution times of the emulated Bayreuth cluster's kernels.

    Parameters
    ----------
    seed:
        Environment seed; fixes the structural fluctuation pattern.
    fluctuation:
        Amplitude of the pattern-less per-p deviation, keyed by
        (kernel, n); see :data:`DEFAULT_FLUCTUATION`.
    with_outliers:
        Inject the paper's p = 8 / p = 16 outliers for n = 3000
        (disable for ablations).
    """

    seed: int = 0
    fluctuation: dict[tuple[str, int], float] = field(
        default_factory=lambda: dict(DEFAULT_FLUCTUATION)
    )
    with_outliers: bool = True

    def _anchor_curve(self, kernel: str, n: int, p: int) -> float:
        """Table II curve value at one of the paper's two measured sizes."""
        spec = TABLE2_CURVES[(kernel, n)]
        a, b = spec["hyp"]
        if kernel == "matadd" or p <= REGIME_SPLIT:
            return a / p + b
        if "lin" in spec:
            c, d = spec["lin"]
        else:
            # Continuity-reconciled branch (see module docstring).
            c = spec["lin_slope"]
            d = (a / REGIME_SPLIT + b) - c * REGIME_SPLIT
        return c * p + d

    def _base_curve(self, kernel: str, n: int, p: int) -> float:
        """Generative mean curve for any supported matrix size.

        At the paper's sizes this is exactly the (reconciled) Table II
        curve.  For other sizes the curve *value* is interpolated
        log-linearly in ``log n`` between the two anchors: both anchor
        curves are positive, so the interpolant is positive and
        monotone in n at every p, and execution times scale with a
        locally-constant polynomial exponent — the natural behaviour of
        an O(n^3)-with-overheads kernel.  This extends the emulated
        environment to arbitrary matrix sizes so the size-aware
        empirical models (a paper "future work" item) have something to
        predict.
        """
        if kernel not in ("matmul", "matadd"):
            raise SimulationError(
                f"no ground-truth curve for kernel={kernel!r}; the emulated "
                "cluster only runs the paper's kernels"
            )
        if not (SIZE_MIN <= n <= SIZE_MAX):
            raise SimulationError(
                f"matrix size {n} outside the emulated cluster's validated "
                f"range [{SIZE_MIN}, {SIZE_MAX}]"
            )
        lo = max(self._anchor_curve(kernel, 2000, p), 1e-3)
        hi = max(self._anchor_curve(kernel, 3000, p), 1e-3)
        if n == 2000:
            return lo
        if n == 3000:
            return hi
        w = (math.log(n) - math.log(2000)) / (math.log(3000) - math.log(2000))
        return math.exp((1 - w) * math.log(lo) + w * math.log(hi))

    def _fluct_amplitude(self, kernel: str, n: int) -> float:
        """Fluctuation amplitude, interpolated in n between listed sizes.

        Unlisted kernels — or an entirely empty mapping — fluctuate not
        at all, yielding the pure Table II curves (used by ablations).
        """
        exact = self.fluctuation.get((kernel, n))
        if exact is not None:
            return exact
        lo = self.fluctuation.get((kernel, 2000))
        hi = self.fluctuation.get((kernel, 3000))
        if lo is None or hi is None:
            return 0.0
        w = min(1.0, max(0.0, (n - 2000) / 1000.0))
        return (1 - w) * lo + w * hi

    def _outlier_factor(self, kernel: str, n: int, p: int) -> float:
        if not self.with_outliers or kernel != "matmul" or n != 3000:
            return 1.0
        if p == 8:
            return OUTLIER_P8_FACTOR
        if p == 16:
            # The imbalance of the naive splitting contributes part of
            # the outlier; the constant covers the cache-line effects.
            imbalance = BlockDistribution(n, p, naive=True).imbalance()
            return max(OUTLIER_P16_FACTOR, imbalance)
        return 1.0

    def mean_time(self, kernel: str, n: int, p: int) -> float:
        """Mean wall-clock seconds of one kernel execution (no noise)."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        base = self._base_curve(kernel, n, p)
        amplitude = self._fluct_amplitude(kernel, n)
        fluct = structural_factor(self.seed, amplitude, "kernel", kernel, n, p)
        value = base * fluct * self._outlier_factor(kernel, n, p)
        return max(value, 1e-3)


@dataclass(frozen=True)
class CrayPdgemmGroundTruth:
    """PDGEMM on the Cray XT4 "Franklin" (Fig 2, right).

    The analytical model ``2 n^3 / (p * FLOPS)`` with the measured
    4165.3 MFLOPS rate has a mean error around 10 %, up to 20 %: tuned
    BLAS is predictable but not perfectly so.  The ground truth is the
    analytical time inflated by a fluctuating factor in [1.02, 1.20].
    """

    seed: int = 0
    flops: float = 4165.3e6
    min_error: float = 0.02
    max_error: float = 0.20

    def mean_time(self, n: int, p: int) -> float:
        if p < 1 or n < 1:
            raise ValueError("n and p must be >= 1")
        analytical = 2.0 * float(n) ** 3 / (p * self.flops)
        span = self.max_error - self.min_error
        u = structural_uniform(self.seed, "pdgemm", n, p)
        # u is uniform in (-1, 1); map to [min_error, max_error].
        err = self.min_error + span * (u + 1.0) / 2.0
        return analytical * (1.0 + err)
