"""The ground-truth execution environment (substitute for the real cluster).

The paper's "experiments" run on a physical 32-node cluster under the
TGrid runtime.  This package replaces that hardware with a
**high-fidelity emulator** whose behaviour is generated from the paper's
own measurements (Table II curves, Figs 2-4 and 6) and deliberately
includes everything the analytical simulator does not know about:

* Java kernels running far from peak, with pattern-less per-(n, p)
  fluctuation (:mod:`repro.testbed.kernels_rt`);
* the memory-hierarchy outlier at p = 8 and the 1D-distribution load
  imbalance at p = 16 for n = 3000 (the paper's Fig 6 outliers);
* JVM-over-SSH task startup overhead, non-monotone in the processor
  count (:mod:`repro.testbed.jvm`, Fig 3);
* subnet-manager redistribution overhead growing mostly with the
  destination processor count (:mod:`repro.testbed.subnet`, Fig 4);
* sub-nominal achievable network bandwidth and per-execution noise.

:class:`~repro.testbed.tgrid.TGridEmulator` exposes both schedule
execution (the "real" makespan) and the microbenchmark hooks the
profiling harness uses — the profile/empirical simulators only ever see
measurements, never the generative curves.
"""

from repro.testbed.kernels_rt import (
    GroundTruthKernels,
    CrayPdgemmGroundTruth,
)
from repro.testbed.jvm import JvmStartupGroundTruth
from repro.testbed.subnet import SubnetManagerGroundTruth
from repro.testbed.tgrid import TGridEmulator

__all__ = [
    "GroundTruthKernels",
    "CrayPdgemmGroundTruth",
    "JvmStartupGroundTruth",
    "SubnetManagerGroundTruth",
    "TGridEmulator",
]
