"""Reproducible stochastic helpers for the testbed.

Two kinds of variation model what the paper observed:

* **structural fluctuation** — a deterministic, pattern-less deviation
  per (kernel, n, p): real Java kernels are "sensitive to number of
  processors and the size of the matrices" in ways no analytical model
  captures.  This is a fixed property of the environment, so it is a
  hash-derived constant, identical across runs and across testbed
  instances sharing a seed;
* **execution noise** — lognormal multiplicative noise per execution,
  modelling run-to-run variation (JIT, OS jitter, network).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_seed, spawn_rng

__all__ = ["structural_factor", "structural_uniform", "lognormal_noise"]


def structural_uniform(seed: int, *labels: object) -> float:
    """Deterministic draw in ``(-1, 1)`` for a label path.

    The same (seed, labels) always yields the same value; different
    labels are independent.
    """
    return float(spawn_rng(seed, "structural", *labels).uniform(-1.0, 1.0))


def structural_factor(seed: int, amplitude: float, *labels: object) -> float:
    """Deterministic multiplicative factor in ``[1-amplitude, 1+amplitude]``.

    Uniformly distributed over the label space; the same (seed, labels)
    always yields the same factor.
    """
    if not (0.0 <= amplitude < 1.0):
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    return 1.0 + amplitude * structural_uniform(seed, *labels)


def lognormal_noise(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative noise with median 1 and log-std ``sigma``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0.0:
        return 1.0
    return float(np.exp(rng.normal(0.0, sigma)))
