"""Export observability streams to external tooling formats.

Two targets (the ``repro trace export`` command):

* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  that ``chrome://tracing`` and Perfetto load directly.  Timeline
  ``task`` records become complete (``"ph": "X"``) slices on one lane
  per host; ``xfer`` records get their own per-destination lanes; each
  simulated run is a separate process named after its (variant, dag,
  algorithm, role) cell.  Simulated seconds map to microseconds (the
  format's native unit), so viewer timestamps read as seconds / 1e6.
* **OpenMetrics text** — a flat rollup any Prometheus-compatible
  scraper or ``promtool`` can parse: counters and span aggregates from
  a ``--trace-out`` manifest, or per-kind record counts and per-run
  makespan gauges from a ``--timeline-out`` stream.

:func:`validate_chrome_trace` is the schema check CI runs against the
exported artifact; it is hand-rolled (stdlib only) on purpose — the
container has no jsonschema.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Union

from repro.obs.report import TraceReadError, load_trace
from repro.obs.timeline import load_timeline
from repro.util.text import format_table

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "openmetrics_lines",
    "validate_openmetrics",
    "export_file",
    "summarize_file",
]

#: Transfer lanes sit above host lanes in each run's process: host tids
#: are the (small) host indices, xfer tids are offset by this constant.
_XFER_TID_BASE = 1000


def _require_timeline_payload(
    records: list[dict], path: Union[str, Path]
) -> None:
    """Reject empty and header-only timelines with a specific message.

    Both states are legal JSONL (an interrupted run, or a traced
    command that never simulated anything) but exporting them would
    silently produce an empty document — worse than an error.
    """
    if not records:
        raise TraceReadError(
            f"{path}: file is empty — no timeline records to export "
            "(was the traced command interrupted before it ran anything?)"
        )
    if all(r.get("kind") == "meta" for r in records):
        raise TraceReadError(
            f"{path}: timeline holds only its stream header — the traced "
            "command completed no simulated runs (rerun a workload, e.g. "
            "'repro --timeline-out FILE study')"
        )


def _run_label(record: dict) -> str:
    """Process name of one run: its grid-cell coordinates."""
    parts = []
    variant = record.get("variant")
    if variant is not None:
        parts.append(f"{variant}:")
    parts.append(str(record.get("dag", "?")))
    parts.append(str(record.get("algorithm", "?")))
    role = record.get("role")
    if role is not None:
        parts.append(f"[{role}]")
    return " ".join(parts)


def chrome_trace(records: list[dict]) -> dict:
    """Convert timeline records to a Chrome trace-event JSON object."""
    events: list[dict] = []
    procs: dict[int, str] = {}
    for record in records:
        kind = record.get("kind")
        pid = int(record.get("run", -1))
        if kind == "task":
            start = float(record["start"])
            dur = float(record["finish"]) - start
            for host in record["hosts"]:
                events.append(
                    {
                        "name": f"task{record['task']}",
                        "cat": "task",
                        "ph": "X",
                        "ts": start * 1e6,
                        "dur": dur * 1e6,
                        "pid": pid,
                        "tid": int(host),
                        "args": {"startup_s": record.get("startup", 0.0)},
                    }
                )
        elif kind == "xfer":
            start = float(record["start"])
            dur = float(record["finish"]) - start
            events.append(
                {
                    "name": f"redist{record['src']}->{record['dst']}",
                    "cat": "xfer",
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": dur * 1e6,
                    "pid": pid,
                    "tid": _XFER_TID_BASE + int(record["dst"]),
                    "args": {
                        "overhead_s": record.get("overhead", 0.0),
                        "volume_bytes": record.get("volume", 0.0),
                    },
                }
            )
        elif kind == "run":
            procs.setdefault(pid, _run_label(record))
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(procs.items())
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: object) -> None:
    """Raise :class:`ValueError` unless ``obj`` matches the export schema."""

    def fail(msg: str) -> None:
        raise ValueError(f"invalid chrome trace: {msg}")

    if not isinstance(obj, dict):
        fail("top level is not an object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"event {i}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"event {i}: {key} is not an integer")
        if ph == "X":
            if not isinstance(ev.get("name"), str):
                fail(f"event {i}: name is not a string")
            for key in ("ts", "dur"):
                value = ev.get(key)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value)
                    or value < 0
                ):
                    fail(f"event {i}: {key} is not a finite non-negative number")
        else:  # metadata
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                fail(f"event {i}: metadata args.name is not a string")


# ----------------------------------------------------------------------
# OpenMetrics
# ----------------------------------------------------------------------
def _om_escape(value: object) -> str:
    """Escape one label value per the OpenMetrics text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _om_name(name: str) -> str:
    """A counter/span name as a metric label (dots are fine in labels)."""
    return _om_escape(name)


def _openmetrics_from_metrics(metrics: dict) -> list[str]:
    """Counter/span rollup (a manifest's ``metrics``) as OpenMetrics."""
    lines: list[str] = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("# TYPE repro_counter counter")
        for name, value in sorted(counters.items()):
            lines.append(
                f'repro_counter_total{{name="{_om_name(name)}"}} {value:g}'
            )
    spans = metrics.get("spans", {})
    if spans:
        lines.append("# TYPE repro_span_seconds counter")
        for name, agg in sorted(spans.items()):
            label = f'name="{_om_name(name)}"'
            lines.append(
                f"repro_span_seconds_total{{{label}}} {agg['total_s']:.9g}"
            )
            lines.append(
                f"repro_span_seconds_count{{{label}}} {agg['count']:g}"
            )
    return lines


def _openmetrics_from_timeline(records: list[dict]) -> list[str]:
    """Per-kind counts and per-run makespans from a timeline stream."""
    lines: list[str] = []
    kinds: dict[str, int] = {}
    runs: list[dict] = []
    for record in records:
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "run":
            runs.append(record)
    lines.append("# TYPE repro_timeline_records counter")
    for kind, count in sorted(kinds.items()):
        lines.append(
            f'repro_timeline_records_total{{kind="{_om_escape(kind)}"}} '
            f"{count}"
        )
    if runs:
        lines.append("# TYPE repro_run_makespan_seconds gauge")
        for record in runs:
            labels = ",".join(
                f'{key}="{_om_escape(record.get(key, ""))}"'
                for key in ("dag", "algorithm", "role", "run")
            )
            lines.append(
                f"repro_run_makespan_seconds{{{labels}}} "
                f"{float(record.get('makespan', 0.0)):.9g}"
            )
    return lines


def openmetrics_lines(path: Union[str, Path]) -> list[str]:
    """OpenMetrics text exposition of a trace or timeline file.

    Timeline files (records keyed by ``kind``) roll up to per-kind
    record counts plus one makespan gauge per run; ``--trace-out``
    files expose the manifest's counter and span aggregates.  Ends
    with the mandatory ``# EOF`` terminator.
    """
    records = load_timeline_or_trace(path)
    if records and "kind" in records[0]:
        _require_timeline_payload(records, path)
        lines = _openmetrics_from_timeline(records)
    else:
        _, manifest = load_trace(path)
        if manifest is None:
            if not records:
                raise TraceReadError(
                    f"{path}: file is empty — nothing to export (was "
                    "the traced command interrupted before any output?)"
                )
            raise TraceReadError(
                f"{path}: trace has no manifest record to export "
                "(rerun with --trace-out, or pass a --timeline-out file)"
            )
        lines = _openmetrics_from_metrics(manifest.metrics)
    lines.append("# EOF")
    return lines


#: Metric/family names per the exposition format.
_OM_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
#: One sample line: name, optional {labels}, a value (timestamps are
#: not emitted by our exporters and therefore not accepted).
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
#: The full label block: comma-separated name="escaped value" pairs.
_OM_LABELS_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*$'
)
_OM_TYPES = frozenset(
    {
        "counter",
        "gauge",
        "histogram",
        "gaugehistogram",
        "summary",
        "info",
        "stateset",
        "unknown",
    }
)
#: Sample-name suffixes accepted per family type.  Slightly lenient on
#: purpose: our span rollup exposes a ``_count`` next to each counter's
#: ``_total`` (promtool accepts it as an untyped metric; a strict
#: OpenMetrics parser would want a summary family).
_OM_SUFFIXES = {
    "counter": ("_total", "_count", "_created"),
    "gauge": ("",),
    "unknown": ("",),
}


def validate_openmetrics(text: str) -> None:
    """Raise :class:`ValueError` unless ``text`` is a well-formed
    OpenMetrics exposition (the flavor our exporters emit).

    Hand-rolled (stdlib only) like :func:`validate_chrome_trace` — the
    container has no promtool.  Checks: the mandatory final ``# EOF``
    terminator, comment-line structure (``# TYPE`` / ``# HELP`` /
    ``# UNIT``), at most one TYPE per family, declared-before-use
    families with type-appropriate sample-name suffixes, label-block
    syntax, and finite sample values.
    """

    def fail(lineno: int, msg: str) -> None:
        raise ValueError(f"invalid openmetrics (line {lineno}): {msg}")

    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError(
            "invalid openmetrics: missing the mandatory '# EOF' terminator"
        )
    families: dict[str, str] = {}
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                fail(lineno, "content after the '# EOF' terminator")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                fail(lineno, f"malformed comment line {line!r}")
            keyword = parts[1]
            if keyword not in ("TYPE", "HELP", "UNIT"):
                fail(lineno, f"unknown comment keyword {keyword!r}")
            name = parts[2]
            if not _OM_NAME_RE.fullmatch(name):
                fail(lineno, f"invalid metric family name {name!r}")
            if keyword == "TYPE":
                if len(parts) != 4 or parts[3] not in _OM_TYPES:
                    fail(lineno, f"invalid TYPE declaration {line!r}")
                if name in families:
                    fail(lineno, f"duplicate TYPE for family {name!r}")
                families[name] = parts[3]
            continue
        match = _OM_SAMPLE_RE.match(line)
        if match is None:
            fail(lineno, f"malformed sample line {line!r}")
        labels = match.group("labels")
        if labels is not None and not _OM_LABELS_RE.match(labels):
            fail(lineno, f"malformed label block {{{labels}}}")
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(lineno, f"sample value {match.group('value')!r} "
                         "is not a number")
        if not math.isfinite(value):
            fail(lineno, f"sample value {value!r} is not finite")
        name = match.group("name")
        family = None
        for fam in families:
            if name == fam or (
                name.startswith(fam) and name[len(fam):].startswith("_")
            ):
                if family is None or len(fam) > len(family):
                    family = fam
        if family is None:
            fail(lineno, f"sample {name!r} has no preceding TYPE family")
        suffix = name[len(family):]
        allowed = _OM_SUFFIXES.get(families[family])
        if allowed is not None and suffix not in allowed:
            fail(
                lineno,
                f"sample suffix {suffix!r} not valid for "
                f"{families[family]} family {family!r}",
            )


def load_timeline_or_trace(path: Union[str, Path]) -> list[dict]:
    """Records of either stream flavor (timeline ``kind`` / trace ``type``)."""
    try:
        return load_timeline(path)
    except TraceReadError:
        records, _ = load_trace(path)
        return records


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------
def export_file(path: Union[str, Path], fmt: str) -> str:
    """Render ``path`` in ``fmt`` (``"chrome"`` or ``"openmetrics"``)."""
    if fmt == "chrome":
        records = load_timeline(path)
        _require_timeline_payload(records, path)
        trace = chrome_trace(records)
        validate_chrome_trace(trace)
        return json.dumps(trace, indent=1)
    if fmt == "openmetrics":
        return "\n".join(openmetrics_lines(path)) + "\n"
    raise ValueError(f"unknown export format {fmt!r}")


def summarize_file(path: Union[str, Path]) -> str:
    """Per-run table plus record-kind counts (``repro trace summary``)."""
    records = load_timeline_or_trace(path)
    if not records:
        raise TraceReadError(
            f"{path}: no records to summarise — the file is empty "
            "(for a manifest-only --trace-out file use 'repro report')"
        )
    lines: list[str] = [f"records: {len(records)}"]
    if records and "kind" in records[0]:
        kinds: dict[str, int] = {}
        runs: list[dict] = []
        for record in records:
            kind = str(record.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
            if kind == "run":
                runs.append(record)
        lines.append("")
        lines.append("record kinds:")
        lines.append(
            format_table(
                ["kind", "records"],
                [[k, str(v)] for k, v in sorted(kinds.items())],
            )
        )
        if not runs:
            lines.append("")
            lines.append(
                "no run records: the traced command completed no "
                "simulated runs (header-only stream?)"
            )
        if runs:
            lines.append("")
            lines.append("runs:")
            lines.append(
                format_table(
                    [
                        "run",
                        "variant",
                        "role",
                        "dag",
                        "algorithm",
                        "engine",
                        "makespan [s]",
                        "tasks",
                        "xfers",
                    ],
                    [
                        [
                            str(r.get("run", "?")),
                            str(r.get("variant", "-")),
                            str(r.get("role", "-")),
                            str(r.get("dag", "?")),
                            str(r.get("algorithm", "?")),
                            str(r.get("engine", "?")),
                            f"{float(r.get('makespan', 0.0)):.4f}",
                            str(r.get("tasks", "?")),
                            str(r.get("xfers", "?")),
                        ]
                        for r in runs
                    ],
                )
            )
    else:
        types: dict[str, int] = {}
        for record in records:
            t = str(record.get("type", "?"))
            types[t] = types.get(t, 0) + 1
        lines.append("")
        lines.append("record types:")
        lines.append(
            format_table(
                ["type", "records"],
                [[k, str(v)] for k, v in sorted(types.items())],
            )
        )
    return "\n".join(lines)
