"""Profile exporters: collapsed stacks and a Chrome-trace wall lane.

Two render targets for a :class:`~repro.obs.prof.Profiler`:

* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text
  (``path;to;frame <value>``), the input format of ``flamegraph.pl``,
  speedscope and most flamegraph viewers.  Values are integer
  microseconds of *self* time (a frame's total minus its children's),
  so the flamegraph's widths add up correctly.
* :func:`chrome_profile_events` — the aggregate span tree laid out as
  nested ``"X"`` (complete) slices in Chrome-trace format, on its own
  ``pid`` so it composes with the simulated-time timeline lanes of
  :func:`repro.obs.export.chrome_trace` in one Perfetto view
  (``repro profile --what wall --chrome``).  The lane is an *aggregate*
  layout, not a replay: siblings are placed sequentially and a parent
  spans at least its children, so nesting is strict even when clock
  jitter makes children sum past their parent.
"""

from __future__ import annotations

from repro.obs.prof import PATH_SEP, Profiler

__all__ = [
    "chrome_profile_events",
    "chrome_profile_trace",
    "collapsed_stacks",
    "parse_collapsed",
    "paths_from_chrome",
]

#: Process id of the wall-clock lane; the simulated-time timeline
#: export uses pid 1, so the two sort as separate process groups.
PROFILE_PID = 2


def _micros(profiler: Profiler) -> dict[tuple[str, ...], int]:
    """Explicit span totals in integer microseconds, path-keyed."""
    return {
        path: int(round(stats[1] * 1e6))
        for path, stats in profiler.spans.items()
    }


def _children(
    totals: dict[tuple[str, ...], int]
) -> dict[tuple[str, ...], list[tuple[str, ...]]]:
    """Parent -> sorted direct children, including implicit parents.

    A merged profile can hold a path whose prefix was never recorded
    itself (an orphan); implicit parents are materialized so the tree
    walk always reaches every explicit node.
    """
    children: dict[tuple[str, ...], list[tuple[str, ...]]] = {(): []}
    known: set[tuple[str, ...]] = {()}
    for path in sorted(totals):
        for depth in range(1, len(path) + 1):
            node = path[:depth]
            if node in known:
                continue
            known.add(node)
            children.setdefault(node[:-1], []).append(node)
            children.setdefault(node, [])
    return children


def collapsed_stacks(profiler: Profiler) -> str:
    """Collapsed-stack flamegraph text (one sorted line per span path).

    Each recorded path appears exactly once with its *self* time in
    integer microseconds (total minus direct children, clamped at
    zero), so :func:`parse_collapsed` round-trips the mapping exactly.
    """
    totals = _micros(profiler)
    children = _children(totals)
    lines = []
    for path in sorted(totals):
        child_sum = sum(totals.get(c, 0) for c in children.get(path, ()))
        self_us = totals[path] - child_sum
        if self_us < 0:
            self_us = 0
        lines.append(f"{PATH_SEP.join(path)} {self_us}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Inverse of :func:`collapsed_stacks` (used by the round-trip tests).

    Accepts any well-formed collapsed-stack text: one ``path <int>``
    per line, frames separated by ``;``.  Repeated paths accumulate,
    matching how flamegraph tools fold duplicate lines.
    """
    samples: dict[tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(
                f"line {lineno}: expected 'path;to;frame <value>', "
                f"got {line!r}"
            )
        try:
            count = int(value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: sample value {value!r} is not an integer"
            ) from None
        path = tuple(stack.split(PATH_SEP))
        samples[path] = samples.get(path, 0) + count
    return samples


def chrome_profile_events(
    profiler: Profiler, *, pid: int = PROFILE_PID, tid: int = 1
) -> list[dict]:
    """The aggregate span tree as nested Chrome-trace ``"X"`` slices.

    Siblings are laid out sequentially inside their parent starting at
    the parent's timestamp; a parent's duration is widened to cover its
    children when measurement jitter makes them sum past it.  Every
    slice carries its full path and call count in ``args`` so the tree
    is recoverable from the JSON (:func:`paths_from_chrome`).
    """
    totals = _micros(profiler)
    children = _children(totals)

    def duration(path: tuple[str, ...]) -> int:
        own = totals.get(path, 0)
        child_sum = sum(duration(c) for c in children.get(path, ()))
        return own if own >= child_sum else child_sum

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "wall-clock profile"},
        }
    ]

    def emit(path: tuple[str, ...], start: int) -> int:
        dur = duration(path)
        stats = profiler.spans.get(path)
        events.append(
            {
                "name": path[-1],
                "cat": "profile",
                "ph": "X",
                "ts": start,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "path": PATH_SEP.join(path),
                    "count": stats[0] if stats is not None else 0,
                },
            }
        )
        cursor = start
        for child in children.get(path, ()):
            cursor = emit(child, cursor)
        return start + dur

    cursor = 0
    for root in children[()]:
        cursor = emit(root, cursor)
    return events


def chrome_profile_trace(profiler: Profiler) -> dict:
    """A standalone Chrome-trace document holding only the wall lane."""
    return {
        "traceEvents": chrome_profile_events(profiler),
        "displayTimeUnit": "ms",
    }


def paths_from_chrome(events: list[dict]) -> dict[tuple[str, ...], int]:
    """Recover ``{span path: call count}`` from a profile lane's events.

    The inverse the round-trip tests need: metadata events are skipped,
    slice events contribute the path/count recorded in their ``args``.
    """
    paths: dict[tuple[str, ...], int] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        path = args.get("path")
        if path is None:
            raise ValueError(
                f"profile slice {event.get('name')!r} lacks args.path"
            )
        paths[tuple(path.split(PATH_SEP))] = args.get("count", 0)
    return paths
