"""`repro serve-metrics`: a minimal stdlib HTTP metrics endpoint.

The first service-shaped surface on the path to the campaign server
(see ROADMAP): a :class:`MetricsServer` wraps provider callables behind
``http.server.ThreadingHTTPServer`` and exposes

* ``GET /metrics`` — the current OpenMetrics text exposition,
* ``GET /state``  — the raw live snapshot JSON (when the source is a
  :class:`~repro.obs.live.LiveTelemetry` snapshot; ``repro top`` polls
  this when pointed at a URL),
* ``GET /``       — a tiny index.

Providers are called *per scrape*, so a file-backed server tracks a
running study live: point it at the ``--live-out`` snapshot (rewritten
atomically every heartbeat) or at a ``--trace-out`` / ``--timeline-out``
stream (re-rolled through :func:`repro.obs.export.openmetrics_lines`
on every request).  A provider that raises :class:`ProviderError`
yields a 503 — a scrape racing the first snapshot write is a retry,
not a crash.

Stdlib only by design: no WSGI framework, no dependencies, one daemon
thread; ``port=0`` binds an ephemeral port (tests and parallel CI).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Union

from repro.obs.live import live_openmetrics_lines, load_snapshot

__all__ = [
    "MetricsServer",
    "ProviderError",
    "file_metrics_provider",
    "file_state_provider",
]

#: Content type Prometheus-compatible scrapers accept for the text
#: exposition format.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ProviderError(RuntimeError):
    """A provider's source is (temporarily) unavailable — maps to 503."""


def file_metrics_provider(
    path: Union[str, Path]
) -> Callable[[], str]:
    """OpenMetrics text from ``path``, re-read on every call.

    Detects the flavor per scrape: a live telemetry snapshot renders
    through :func:`~repro.obs.live.live_openmetrics_lines`; anything
    else goes through the post-hoc rollups of
    :func:`~repro.obs.export.openmetrics_lines` (trace manifests and
    timeline streams).
    """
    from repro.obs.export import openmetrics_lines
    from repro.obs.report import TraceReadError

    path = Path(path)

    def provide() -> str:
        if not path.exists():
            raise ProviderError(
                f"{path}: no snapshot yet (is the study running with "
                "--live-out / --trace-out pointing here?)"
            )
        try:
            snap = load_snapshot(path)
        except ValueError:
            snap = None
        if snap is not None:
            return "\n".join(live_openmetrics_lines(snap)) + "\n"
        try:
            return "\n".join(openmetrics_lines(path)) + "\n"
        except (TraceReadError, ValueError) as exc:
            raise ProviderError(str(exc)) from None

    return provide


def file_state_provider(
    path: Union[str, Path]
) -> Callable[[], dict]:
    """The raw live snapshot dict from ``path`` (503 when not live)."""
    path = Path(path)

    def provide() -> dict:
        if not path.exists():
            raise ProviderError(f"{path}: no snapshot yet")
        try:
            return load_snapshot(path)
        except ValueError as exc:
            raise ProviderError(str(exc)) from None

    return provide


class MetricsServer:
    """Serve ``/metrics`` (and optionally ``/state``) on a daemon thread."""

    def __init__(
        self,
        metrics_provider: Callable[[], str],
        state_provider: Callable[[], dict] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr chatter
                pass

            def _send(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        text = server.metrics_provider()
                        self._send(
                            200, text.encode(), _METRICS_CONTENT_TYPE
                        )
                    elif path == "/state":
                        if server.state_provider is None:
                            self._send(
                                404,
                                b"no live state behind this server\n",
                                "text/plain; charset=utf-8",
                            )
                            return
                        state = server.state_provider()
                        self._send(
                            200,
                            (json.dumps(state, indent=1) + "\n").encode(),
                            "application/json; charset=utf-8",
                        )
                    elif path == "/":
                        self._send(
                            200,
                            b"repro metrics endpoint: /metrics /state\n",
                            "text/plain; charset=utf-8",
                        )
                    else:
                        self._send(
                            404,
                            b"unknown path (try /metrics)\n",
                            "text/plain; charset=utf-8",
                        )
                except ProviderError as exc:
                    self._send(
                        503,
                        (str(exc) + "\n").encode(),
                        "text/plain; charset=utf-8",
                    )
                except Exception as exc:  # pragma: no cover - safety net
                    self._send(
                        500,
                        (f"internal error: {exc}\n").encode(),
                        "text/plain; charset=utf-8",
                    )

        self.metrics_provider = metrics_provider
        self.state_provider = state_provider
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> str:
        return f"{self.url}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        # shutdown() blocks until the serve loop acknowledges — only
        # meaningful when start() actually spun one up.
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        """Run in the foreground (the ``repro serve-metrics`` loop)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
