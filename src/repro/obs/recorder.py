"""The Recorder: typed events, counters and span timers over a sink.

Design rules (the layer's contract, see ``docs/observability.md``):

* **Disabled by default.**  The process-global recorder starts over a
  :class:`~repro.obs.sinks.NullSink` and reports ``enabled = False``.
  Instrumented hot paths guard every emission with ``if rec.enabled:``
  so a disabled recorder costs one attribute load and a branch — no
  event dicts, no string formatting, no sink calls.
* **Counters are in-memory.**  ``count()`` accumulates into a dict and
  never touches the sink; the rollup travels in the manifest and via
  :meth:`Recorder.metrics`.  (Counters stay live even when the recorder
  is *enabled but span/event volume matters* — they are the cheap tier.)
* **Events and spans stream to the sink** as plain dicts with a
  ``type`` field (``"event"`` / ``"span"``), ready for JSONL.
* **Determinism.**  Nothing here feeds back into simulation state; wall
  clocks only ever appear in trace records and manifests, never in
  simulated quantities.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.sinks import MemorySink, NullSink, Sink

__all__ = [
    "Recorder",
    "SpanStats",
    "get_recorder",
    "set_recorder",
    "recording",
]


class SpanStats:
    """Aggregated timings of one span name (count / total / min / max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        # A zero-count span has no minimum: serialize None (JSON null)
        # rather than the +inf sentinel, which is not valid JSON, or a
        # fake 0.0, which strict consumers would read as a real timing.
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else None,
            "max_s": self.max,
        }


class _NullSpan:
    """Shared no-op context manager for disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Times a ``with`` block; emits a span record and updates stats."""

    __slots__ = ("_recorder", "_name", "_fields", "_t0")

    def __init__(self, recorder: "Recorder", name: str, fields: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._fields = fields
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        prof = self._recorder.profiler
        if prof is not None:
            prof.push(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder._finish_span(
            self._name, time.perf_counter() - self._t0, self._fields
        )
        return False


class Recorder:
    """Emits typed events / counters / spans to a pluggable sink.

    A recorder over a :class:`NullSink` (the default) is *disabled*:
    ``enabled`` is False, ``span()`` returns a shared no-op context
    manager, and ``event()`` / ``count()`` return immediately.  Hot
    paths should still guard with ``if rec.enabled:`` so not even the
    call happens.

    ``timeline`` optionally attaches a simulated-time
    :class:`~repro.obs.timeline.Timeline`; instrumented code reaches it
    via ``rec.timeline`` and guards with ``if tl is not None:``.  A
    recorder with a timeline is enabled even over a null sink (counters
    still accumulate; events are discarded).

    ``profiler`` optionally attaches a wall-clock
    :class:`~repro.obs.prof.Profiler`; every :meth:`span` then also
    nests a profiler span (building the call-path tree) and
    :meth:`timing` feeds profiler leaves.  Kernel probes reach it via
    ``rec.profiler`` and guard with ``if prof is not None:``.  Like a
    timeline, an attached profiler enables the recorder even over a
    null sink.
    """

    def __init__(
        self, sink: Sink | None = None, timeline=None, profiler=None
    ) -> None:
        self.sink: Sink = sink if sink is not None else NullSink()
        self.timeline = timeline
        self.profiler = profiler
        self.enabled: bool = (
            not isinstance(self.sink, NullSink)
            or timeline is not None
            or profiler is not None
        )
        self.counters: dict[str, float] = {}
        self.spans: dict[str, SpanStats] = {}

    # -- construction helpers ------------------------------------------
    @classmethod
    def to_memory(cls) -> "Recorder":
        """An enabled recorder buffering into a :class:`MemorySink`."""
        return cls(MemorySink())

    # -- emission ------------------------------------------------------
    def event(self, name: str, **fields: object) -> None:
        """Emit one typed event record to the sink."""
        if not self.enabled:
            return
        record = {"type": "event", "name": name}
        record.update(fields)
        self.sink.write(record)

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate an in-memory counter (never touches the sink)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def span(self, name: str, **fields: object):
        """Context manager timing a block; records a span on exit."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, fields)

    def timing(self, name: str, seconds: float) -> None:
        """Fold one measured duration into the span aggregates only.

        The cheap tier for hot-path timings called thousands of times
        per run (e.g. ``engine.solve``): it updates the same
        :class:`SpanStats` that :meth:`span` feeds — so the totals show
        up in :meth:`metrics`, manifests and ``repro report`` — but
        writes *no* per-call record to the sink, whose dict-building
        and I/O would otherwise dominate the very path being measured.
        Callers should guard with ``if rec.enabled:`` and time with
        ``time.perf_counter()`` themselves.
        """
        if not self.enabled:
            return
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(seconds)
        prof = self.profiler
        if prof is not None:
            prof.leaf(name, seconds)

    def _finish_span(self, name: str, seconds: float, fields: dict) -> None:
        prof = self.profiler
        if prof is not None:
            prof.pop(seconds)
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(seconds)
        record = {"type": "span", "name": name, "dur_s": seconds}
        record.update(fields)
        self.sink.write(record)

    # -- cross-process merge -------------------------------------------
    def export_state(self) -> dict:
        """Portable snapshot of everything this recorder accumulated.

        Returns a plain-dict payload (picklable, JSON-able) holding the
        buffered sink records (memory sinks only — other sinks stream
        and have nothing to export), the counters and the span
        aggregates.  The parallel study runner ships one such payload
        per worker back to the parent, which folds them in with
        :meth:`absorb`.
        """
        state = {
            "records": list(getattr(self.sink, "records", ())),
            "counters": dict(self.counters),
            "spans": {
                name: stats.to_dict() for name, stats in self.spans.items()
            },
        }
        if self.timeline is not None:
            state["timeline"] = self.timeline.export_state()
        if self.profiler is not None:
            state["profile"] = self.profiler.export_state()
        return state

    def absorb(self, state: dict) -> None:
        """Fold an :meth:`export_state` payload into this recorder.

        Records are replayed into the sink in payload order, counters
        add up, and span aggregates merge (counts/totals sum, min/max
        widen).  Callers control determinism by absorbing worker
        payloads in a fixed order (the study runner uses grid
        submission order, independent of completion order).
        """
        if not self.enabled:
            return
        for record in state["records"]:
            self.sink.write(record)
        counters = self.counters
        for name, value in state["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for name, agg in state["spans"].items():
            if not agg["count"]:
                continue
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = SpanStats()
            stats.count += agg["count"]
            stats.total += agg["total_s"]
            if agg["min_s"] < stats.min:
                stats.min = agg["min_s"]
            if agg["max_s"] > stats.max:
                stats.max = agg["max_s"]
        timeline_state = state.get("timeline")
        if timeline_state is not None and self.timeline is not None:
            self.timeline.absorb(timeline_state)
        profile_state = state.get("profile")
        if profile_state is not None and self.profiler is not None:
            self.profiler.absorb(profile_state)

    # -- rollups -------------------------------------------------------
    def metrics(self) -> dict:
        """Counter values plus per-span aggregate timings.

        With a timeline attached, its per-kind record counts join the
        counters as ``timeline.<kind>`` (plus ``timeline.runs``), so
        manifests and ``repro report`` see the timeline volume without
        reading the timeline file.
        """
        counters = dict(self.counters)
        if self.timeline is not None:
            for kind, count in self.timeline.counts.items():
                name = f"timeline.{kind}"
                counters[name] = counters.get(name, 0) + count
            if self.timeline.run_count:
                counters["timeline.runs"] = (
                    counters.get("timeline.runs", 0)
                    + self.timeline.run_count
                )
        rollup = {
            "counters": dict(sorted(counters.items())),
            "spans": {
                name: stats.to_dict()
                for name, stats in sorted(self.spans.items())
            },
        }
        if self.profiler is not None:
            # Only when attached: recorders without a profiler keep the
            # exact metrics shape older manifests and tests expect.
            rollup["profile"] = self.profiler.export_state()
        return rollup

    def close(self) -> None:
        self.sink.close()
        if self.timeline is not None:
            self.timeline.close()


#: Process-global recorder; disabled (null sink) unless the CLI or a test
#: installs an enabled one.
_ACTIVE = Recorder()


def get_recorder() -> Recorder:
    """The process-global recorder (disabled by default)."""
    return _ACTIVE


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` globally (None resets to disabled); returns it."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else Recorder()
    return _ACTIVE


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` as the global one."""
    previous = get_recorder()
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
