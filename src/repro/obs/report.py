"""Load a JSONL trace and summarise it (the ``repro report`` command).

The report is computed from two complementary sources:

* the trailing ``"manifest"`` record, whose metric rollups (counters,
  span aggregates) are authoritative for the whole run;
* the event stream itself, from which per-(algorithm, simulator)
  makespan breakdowns and event-name frequencies are rebuilt — so a
  trace remains useful even if the process died before the manifest was
  written.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.manifest import RunManifest
from repro.util.errors import ReproError
from repro.util.stats import relative_error
from repro.util.text import format_table

__all__ = [
    "TraceReadError",
    "load_trace",
    "render_report",
    "report_file",
    "report_json",
]


class TraceReadError(ReproError):
    """A trace file is missing or malformed."""


def load_trace(
    path: Union[str, Path]
) -> tuple[list[dict], RunManifest | None]:
    """Parse a JSONL trace into (records, manifest-or-None)."""
    path = Path(path)
    if not path.exists():
        raise TraceReadError(f"trace file not found: {path}")
    records: list[dict] = []
    manifest: RunManifest | None = None
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(
                f"{path}:{lineno}: invalid JSON ({exc.msg})"
            ) from None
        if not isinstance(record, dict):
            raise TraceReadError(f"{path}:{lineno}: record is not an object")
        if record.get("type") == "manifest":
            manifest = RunManifest.from_dict(record)
        else:
            records.append(record)
    return records, manifest


def _event_counts(records: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for rec in records:
        if rec.get("type") == "event":
            name = str(rec.get("name", "?"))
            counts[name] = counts.get(name, 0) + 1
    return counts


def _span_rollup(records: list[dict]) -> dict[str, dict]:
    rollup: dict[str, dict] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        name = str(rec.get("name", "?"))
        dur = float(rec.get("dur_s", 0.0))
        agg = rollup.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
    for agg in rollup.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return rollup


def _cache_rows(counters: dict) -> list[list[object]]:
    """Per-layer hit/miss/hit-rate rows from ``cache.*`` counters.

    Layers are discovered from ``cache.<layer>.hits`` /
    ``cache.<layer>.misses`` counter names; the aggregate
    ``cache.hits`` / ``cache.misses`` pair becomes a ``total`` row.
    """
    layers: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if parts[0] != "cache" or parts[-1] not in ("hits", "misses"):
            continue
        layer = ".".join(parts[1:-1]) or "total"
        layers.setdefault(layer, {})[parts[-1]] = value
    rows: list[list[object]] = []
    for layer in sorted(layers, key=lambda k: (k == "total", k)):
        hits = layers[layer].get("hits", 0)
        misses = layers[layer].get("misses", 0)
        lookups = hits + misses
        rate = 100.0 * hits / lookups if lookups else 0.0
        rows.append([layer, f"{hits:g}", f"{misses:g}", f"{rate:.1f}"])
    return rows


def _study_breakdown(records: list[dict]) -> list[list[object]]:
    """Per-(algorithm, simulator) rows from ``study.record`` events."""
    groups: dict[tuple[str, str], list[dict]] = {}
    for rec in records:
        if rec.get("type") == "event" and rec.get("name") == "study.record":
            key = (str(rec.get("algorithm")), str(rec.get("simulator")))
            groups.setdefault(key, []).append(rec)
    rows: list[list[object]] = []
    for (algorithm, simulator), recs in sorted(groups.items()):
        sims = [float(r["sim_makespan"]) for r in recs]
        exps = [float(r["exp_makespan"]) for r in recs]
        errors = [
            abs(relative_error(s, e)) for s, e in zip(sims, exps) if e > 0
        ]
        rows.append(
            [
                algorithm,
                simulator,
                len(recs),
                sum(sims) / len(sims),
                sum(exps) / len(exps),
                100.0 * sum(errors) / len(errors) if errors else 0.0,
            ]
        )
    return rows


#: The per-cell pipeline phases whose span totals make up a study
#: cell's useful work (the remainder of ``study.grid`` is orchestration
#: and, in parallel sweeps, pool dispatch).
_STUDY_PHASES = ("study.schedule", "study.simulate", "study.execute")


def _study_throughput(counters: dict, spans: dict) -> dict | None:
    """End-to-end study throughput from the runner's grid timings.

    The study runner times its whole grid sweep as ``study.grid`` and
    the time spent blocked on pool futures as ``study.dispatch`` (zero
    for serial sweeps); ``study.runs`` counts the cells.  From those,
    cells/sec end to end and the dispatch share of the sweep.  The
    per-phase totals are summed across processes, so in parallel sweeps
    they can exceed the grid wall-clock — they answer "where did the
    compute go", not "how long did it take".

    Degenerate sweeps stay renderable instead of raising or vanishing:
    a zero-cell study (empty grid) or an instantaneous one (a grid
    wall-clock rounding to zero, or an all-cached replay with a
    missing/zero ``study.dispatch``) yields ``None`` for the ratios —
    rendered as a dash — rather than a division by zero.  The section
    only disappears entirely when the trace recorded no ``study.grid``
    sweep at all.
    """
    grid = spans.get("study.grid")
    if not grid or not grid.get("count"):
        return None
    grid_s = float(grid.get("total_s") or 0.0)
    cells = float(counters.get("study.runs", 0))
    dispatch = spans.get("study.dispatch")
    dispatch_s = (
        float(dispatch.get("total_s") or 0.0)
        if dispatch and dispatch.get("count")
        else None
    )
    phase_s = sum(
        float(spans.get(name, {}).get("total_s", 0.0))
        for name in _STUDY_PHASES
    )
    return {
        "cells": cells,
        "grid_s": grid_s,
        "cells_per_sec": cells / grid_s if cells and grid_s else None,
        "dispatch_s": dispatch_s,
        "dispatch_pct": (
            100.0 * dispatch_s / grid_s
            if dispatch_s is not None and grid_s
            else None
        ),
        "phase_s": phase_s,
    }


def report_json(
    records: list[dict], manifest: RunManifest | None
) -> dict:
    """Machine-readable report of one trace (``repro report --json``).

    The same sources and fallbacks as :func:`render_report` — manifest
    rollups where present, stream-derived aggregates otherwise — but as
    one JSON-serialisable document, so the bench history store and any
    study service consume reports without scraping the text tables.
    """
    counters: dict[str, float] = {}
    if manifest is not None:
        counters.update(manifest.metrics.get("counters", {}))
    if not counters:
        counters = dict(_event_counts(records))

    cache: dict[str, dict] = {}
    for layer, hits, misses, rate in _cache_rows(counters):
        cache[layer] = {
            "hits": float(hits),
            "misses": float(misses),
            "hit_rate_pct": float(rate),
        }

    spans = (
        manifest.metrics.get("spans", {}) if manifest is not None else {}
    ) or _span_rollup(records)

    study = [
        {
            "algorithm": algorithm,
            "simulator": simulator,
            "runs": runs,
            "mean_sim_makespan": mean_sim,
            "mean_exp_makespan": mean_exp,
            "mean_abs_error_pct": err,
        }
        for algorithm, simulator, runs, mean_sim, mean_exp, err
        in _study_breakdown(records)
    ]

    timeline = {
        name[len("timeline."):]: value
        for name, value in counters.items()
        if name.startswith("timeline.")
    }

    return {
        "schema": 1,
        "manifest": manifest.to_dict() if manifest is not None else None,
        "records": len(records),
        "events": _event_counts(records),
        "counters": dict(sorted(counters.items())),
        "cache": cache,
        "spans": spans,
        "timeline": timeline,
        "study": study,
        # End-to-end cells/sec and pool-dispatch share; None for traces
        # without a study sweep.
        "throughput": _study_throughput(counters, spans),
        # Wall-clock profile rollup (span paths + kernel cost table);
        # present only when the run attached a Profiler.
        "profile": (
            manifest.metrics.get("profile")
            if manifest is not None
            else None
        ),
    }


def render_report(
    records: list[dict],
    manifest: RunManifest | None,
    *,
    top: int = 15,
) -> str:
    """Human-readable summary of one trace."""
    lines: list[str] = []
    if manifest is not None:
        lines.append(
            f"run: repro {manifest.version}  seed={manifest.seed}  "
            f"python={manifest.python}  created={manifest.created}"
        )
        if manifest.command:
            lines.append(f"command: {manifest.command}")
        if manifest.platform:
            plat = manifest.platform
            lines.append(
                f"platform: {plat.get('name', '?')} "
                f"({plat.get('num_nodes', '?')} nodes, "
                f"{plat.get('flops', 0) / 1e6:.0f} MFlop/s)"
            )
        if manifest.simulators:
            lines.append(f"simulators: {', '.join(manifest.simulators)}")
        if manifest.algorithms:
            lines.append(f"algorithms: {', '.join(manifest.algorithms)}")
    else:
        lines.append("(no manifest record in trace)")
    lines.append(f"records: {len(records)}")

    # Counters: manifest rollup first, event frequencies as fallback.
    counters: dict[str, float] = {}
    if manifest is not None:
        counters.update(manifest.metrics.get("counters", {}))
    if not counters:
        counters = dict(_event_counts(records))
    if counters:
        lines.append("")
        lines.append(f"top counters (of {len(counters)}):")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append(
            format_table(
                ["counter", "value"],
                [[name, f"{value:g}"] for name, value in ranked[:top]],
            )
        )

    cache_rows = _cache_rows(counters)
    if cache_rows:
        lines.append("")
        lines.append("result cache (per layer):")
        lines.append(
            format_table(
                ["layer", "hits", "misses", "hit rate %"], cache_rows
            )
        )
        for name in ("cache.bytes_read", "cache.bytes_written"):
            if name in counters:
                lines.append(f"{name}: {counters[name]:g}")

    spans = (
        manifest.metrics.get("spans", {}) if manifest is not None else {}
    ) or _span_rollup(records)
    if spans:
        lines.append("")
        lines.append("span timings:")
        rows = [
            [
                name,
                agg["count"],
                f"{agg['total_s']:.4f}",
                f"{1e3 * agg.get('mean_s', 0.0):.3f}",
                f"{1e3 * agg['max_s']:.3f}",
            ]
            for name, agg in sorted(
                spans.items(), key=lambda kv: -kv[1]["total_s"]
            )
        ]
        lines.append(
            format_table(
                ["span", "count", "total [s]", "mean [ms]", "max [ms]"], rows
            )
        )

    profile = (
        manifest.metrics.get("profile") if manifest is not None else None
    )
    if profile:
        prof_spans = profile.get("spans", {})
        kernels = profile.get("kernels", {})
        lines.append("")
        lines.append(
            f"wall-clock profile: {len(prof_spans)} span paths, "
            f"{len(kernels)} kernel rows "
            "(full detail: repro report --json)"
        )
        if kernels:
            rows = [
                [
                    key.rsplit(";", 1)[0],
                    key.rsplit(";", 1)[1],
                    agg["count"],
                    f"{1e6 * agg['total_s'] / agg['count']:.1f}"
                    if agg["count"]
                    else "-",
                ]
                for key, agg in sorted(kernels.items())
            ]
            lines.append(
                format_table(
                    ["kernel", "size<=", "calls", "mean [us]"], rows[:top]
                )
            )

    timeline_counts = {
        name[len("timeline."):]: value
        for name, value in counters.items()
        if name.startswith("timeline.")
    }
    if timeline_counts:
        lines.append("")
        lines.append("simulated-time timeline (see --timeline-out):")
        lines.append(
            format_table(
                ["kind", "records"],
                [
                    [kind, f"{value:g}"]
                    for kind, value in sorted(timeline_counts.items())
                ],
            )
        )

    throughput = _study_throughput(counters, spans)
    if throughput:
        # Ratios are None for degenerate sweeps (zero cells, or a grid
        # wall-clock that rounded to zero): render a dash, never divide.
        rate = throughput["cells_per_sec"]
        rate_s = f"{rate:.1f}" if rate is not None else "-"
        lines.append("")
        lines.append(
            f"study throughput: {throughput['cells']:g} cells in "
            f"{throughput['grid_s']:.3f} s = "
            f"{rate_s} cells/s end to end"
        )
        dispatch_s = throughput["dispatch_s"]
        dispatch_pct = throughput["dispatch_pct"]
        lines.append(
            "  pool dispatch: "
            + (
                f"{dispatch_s:.3f} s" if dispatch_s is not None else "-"
            )
            + " blocked on futures ("
            + (
                f"{dispatch_pct:.1f} %"
                if dispatch_pct is not None
                else "-"
            )
            + f" of the sweep); pipeline phases: "
            f"{throughput['phase_s']:.3f} s summed across processes"
        )

    breakdown = _study_breakdown(records)
    if breakdown:
        lines.append("")
        lines.append("per-(algorithm, simulator) makespans:")
        lines.append(
            format_table(
                [
                    "algorithm",
                    "simulator",
                    "runs",
                    "mean sim [s]",
                    "mean exp [s]",
                    "mean |err| %",
                ],
                [
                    row[:3] + [f"{row[3]:.2f}", f"{row[4]:.2f}", f"{row[5]:.1f}"]
                    for row in breakdown
                ],
            )
        )
    return "\n".join(lines)


def report_file(path: Union[str, Path], *, top: int = 15) -> str:
    """Convenience: load ``path`` and render its report."""
    records, manifest = load_trace(path)
    return render_report(records, manifest, top=top)
