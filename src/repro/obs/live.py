"""Live study telemetry: streaming progress over a side-channel.

Everything built so far in ``repro.obs`` is post-hoc: workers export
their recorder state once per chunk and the parent merges it after the
study returns, so a long campaign is a black box while it runs.  This
module adds the *live* side — a :class:`LiveTelemetry` bus whose pool
workers emit compact progress events (chunk claimed, cell started /
finished, periodic heartbeats) over a dedicated ``multiprocessing``
queue, folded by a parent drain thread into a :class:`LiveStudyState`:
cells done/total, per-worker in-flight cell and age, a cells/sec EWMA,
an ETA, and straggler/stall flags.

The channel is strictly observational.  It never touches results,
caching, or the deterministic Recorder/Timeline merge: live counters
(``runner.stragglers``, ``runner.stalls``) live in the
:class:`LiveStudyState`, not the Recorder, because they depend on wall
clock — folding them into the recorder would break the bit-identity
contract (records, counters, timeline lines equal with telemetry on or
off) that ``assert_live_identity`` enforces.  Dropping every event on
the floor changes nothing but the display.

Event schema (tuples, cheap to pickle through the queue)::

    ("chunk",  pid, t, cells)               worker claimed a chunk
    ("start",  pid, t, pos, label)          cell started
    ("finish", pid, t, pos, label, dur_s)   cell finished
    ("hit",    pid, t, pos, label)          parent replayed a cache hit
    ("hb",     pid, t, pos, age_s)          worker heartbeat

``t`` is ``time.monotonic()`` — on the platforms the pool supports,
the monotonic clock is system-wide, so worker timestamps and parent
ages share a base.  ``pos`` is the cell's grid submission index,
``label`` is ``suite:dag/algorithm``.

Straggler/stall detection (checked every drain tick):

* a worker whose in-flight cell's age exceeds ``straggler_factor``
  (default 4.0) times the rolling median of the last ``window``
  completed cell durations — once at least ``min_samples`` cells have
  finished — is flagged a *straggler* (once per cell);
* a pool worker that has not been heard from (heartbeat cadence
  ``heartbeat_s``, default 0.5 s) for ``stall_after_beats`` (default 6)
  cadences while a cell is in flight is flagged *stalled*.  Parent-side
  (serial / inline cache-hit) cells send no heartbeats and are exempt.

Snapshots: :meth:`LiveTelemetry.snapshot` renders the state as a plain
dict; with ``snapshot_path`` set, the drain thread atomically rewrites
that JSON file every beat — the cross-process handoff ``repro top`` and
``repro serve-metrics`` poll (see :mod:`repro.obs.serve`).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

__all__ = [
    "LiveStudyState",
    "LiveTelemetry",
    "ProgressPrinter",
    "WorkerEmitter",
    "live_openmetrics_lines",
    "load_snapshot",
    "render_progress_line",
    "render_top",
]

#: JSON snapshot schema tag (bump on incompatible layout changes).
SNAPSHOT_SCHEMA = "repro.live/1"


class LiveStudyState:
    """The parent-side fold of the live event stream.

    Mutated only by the telemetry drain thread (and parent-local
    emitters) under the owning :class:`LiveTelemetry`'s lock; read via
    :meth:`snapshot`, which returns a detached plain dict.
    """

    def __init__(
        self,
        *,
        straggler_factor: float = 4.0,
        min_samples: int = 5,
        window: int = 64,
        stall_after_s: float = 3.0,
    ) -> None:
        self.straggler_factor = straggler_factor
        self.min_samples = min_samples
        self.stall_after_s = stall_after_s
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.chunks_claimed = 0
        self.workers_expected = 0
        self.phase = "idle"
        self.started_at: float | None = None  # monotonic
        #: per-worker view: pid -> {cell, pos, since, last_seen, done,
        #: local, straggler, stalled}
        self.workers: dict[int, dict] = {}
        self.durations: deque[float] = deque(maxlen=window)
        self.ewma_rate: float | None = None
        self._last_finish: float | None = None
        #: live counters — kept OUT of the Recorder on purpose (they
        #: are wall-clock-dependent; see the module docstring).
        self.counters: dict[str, int] = {}
        self.events: deque[dict] = deque(maxlen=32)
        self._flagged: set[tuple[int, object]] = set()

    # -- folding ------------------------------------------------------
    def begin_study(self, cells: int, workers: int) -> None:
        self.total += cells
        self.workers_expected = max(self.workers_expected, workers)
        self.phase = "running"
        if self.started_at is None:
            self.started_at = time.monotonic()

    def _worker(self, pid: int, t: float, *, local: bool) -> dict:
        entry = self.workers.get(pid)
        if entry is None:
            entry = self.workers[pid] = {
                "cell": None,
                "pos": None,
                "since": t,
                "last_seen": t,
                "done": 0,
                "local": local,
                "straggler": False,
                "stalled": False,
            }
        entry["last_seen"] = t
        return entry

    def fold(self, event: tuple) -> None:
        """Apply one queue event (see the module docstring schema)."""
        kind, pid, t = event[0], event[1], event[2]
        local = pid == 0
        if kind == "start":
            entry = self._worker(pid, t, local=local)
            entry["cell"] = event[4]
            entry["pos"] = event[3]
            entry["since"] = t
            entry["straggler"] = False
            entry["stalled"] = False
        elif kind == "finish":
            entry = self._worker(pid, t, local=local)
            entry["cell"] = None
            entry["pos"] = None
            entry["straggler"] = False
            entry["stalled"] = False
            entry["done"] += 1
            self.done += 1
            self.durations.append(float(event[5]))
            self._tick_rate(t)
        elif kind == "hit":
            entry = self._worker(pid, t, local=local)
            entry["done"] += 1
            self.done += 1
            self.cache_hits += 1
            self._tick_rate(t)
        elif kind == "chunk":
            self._worker(pid, t, local=local)
            self.chunks_claimed += 1
        elif kind == "hb":
            self._worker(pid, t, local=local)
        if self.total and self.done >= self.total:
            self.phase = "done"

    def _tick_rate(self, t: float) -> None:
        """EWMA of the instantaneous completion rate (cells/sec)."""
        prev = self._last_finish
        self._last_finish = t
        if prev is None:
            return
        dt = t - prev
        if dt <= 0:
            return
        rate = 1.0 / dt
        if self.ewma_rate is None:
            self.ewma_rate = rate
        else:
            self.ewma_rate += 0.3 * (rate - self.ewma_rate)

    # -- health -------------------------------------------------------
    def median_duration(self) -> float | None:
        if len(self.durations) < self.min_samples:
            return None
        ordered = sorted(self.durations)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def check_health(self, now: float) -> list[dict]:
        """Flag stragglers and stalls; returns newly raised live events.

        A straggler is an in-flight cell older than
        ``straggler_factor`` x the rolling median cell duration; a
        stall is a *pool* worker silent past ``stall_after_s`` with a
        cell in flight.  Each (worker, cell) pair is flagged at most
        once per condition.
        """
        raised: list[dict] = []
        med = self.median_duration()
        for pid, entry in self.workers.items():
            if entry["cell"] is None:
                continue
            age = now - entry["since"]
            if (
                med is not None
                and not entry["straggler"]
                and age > self.straggler_factor * med
            ):
                entry["straggler"] = True
                self.counters["runner.stragglers"] = (
                    self.counters.get("runner.stragglers", 0) + 1
                )
                raised.append(
                    {
                        "kind": "straggler",
                        "worker": pid,
                        "cell": entry["cell"],
                        "age_s": round(age, 3),
                        "median_s": round(med, 3),
                    }
                )
            if (
                not entry["local"]
                and not entry["stalled"]
                and now - entry["last_seen"] > self.stall_after_s
            ):
                entry["stalled"] = True
                self.counters["runner.stalls"] = (
                    self.counters.get("runner.stalls", 0) + 1
                )
                raised.append(
                    {
                        "kind": "stall",
                        "worker": pid,
                        "cell": entry["cell"],
                        "silent_s": round(now - entry["last_seen"], 3),
                    }
                )
        for ev in raised:
            ev["t"] = round(time.time(), 3)
            self.events.append(ev)
        return raised

    # -- snapshot -----------------------------------------------------
    def snapshot(self) -> dict:
        now = time.monotonic()
        elapsed = (
            now - self.started_at if self.started_at is not None else 0.0
        )
        overall = self.done / elapsed if elapsed > 0 and self.done else None
        rate = self.ewma_rate if self.ewma_rate is not None else overall
        remaining = max(0, self.total - self.done)
        eta = remaining / rate if rate and remaining else None
        workers = [
            {
                "worker": pid,
                "cell": entry["cell"],
                "pos": entry["pos"],
                "age_s": (
                    round(now - entry["since"], 3)
                    if entry["cell"] is not None
                    else None
                ),
                "last_seen_s": round(now - entry["last_seen"], 3),
                "done": entry["done"],
                "local": entry["local"],
                "straggler": entry["straggler"],
                "stalled": entry["stalled"],
            }
            for pid, entry in sorted(self.workers.items())
        ]
        med = self.median_duration()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "updated": round(time.time(), 3),
            "phase": self.phase,
            "study": {
                "total": self.total,
                "done": self.done,
                "cache_hits": self.cache_hits,
                "in_flight": sum(
                    1 for w in workers if w["cell"] is not None
                ),
                "chunks_claimed": self.chunks_claimed,
                "workers": self.workers_expected,
            },
            "rates": {
                "cells_per_sec_ewma": (
                    round(self.ewma_rate, 4)
                    if self.ewma_rate is not None
                    else None
                ),
                "cells_per_sec_overall": (
                    round(overall, 4) if overall is not None else None
                ),
                "median_cell_s": round(med, 4) if med is not None else None,
                "eta_s": round(eta, 1) if eta is not None else None,
                "elapsed_s": round(elapsed, 3),
            },
            "workers": workers,
            "counters": dict(self.counters),
            "events": list(self.events),
        }


class LiveTelemetry:
    """The parent half of the live channel.

    Owns the :class:`LiveStudyState`, the multiprocessing side-channel
    queue (created lazily per pool context via :meth:`connect`), and a
    daemon drain thread that folds events, runs the straggler/stall
    check every tick, and — with ``snapshot_path`` set — atomically
    rewrites the JSON snapshot file.

    Parent-local emissions (the serial loop, inline cache-hit replays)
    bypass the queue and fold directly under the lock, so serial
    studies get the same state without any IPC.
    """

    def __init__(
        self,
        *,
        heartbeat_s: float = 0.5,
        straggler_factor: float = 4.0,
        min_samples: int = 5,
        window: int = 64,
        stall_after_beats: float = 6.0,
        snapshot_path: str | Path | None = None,
    ) -> None:
        self.heartbeat_s = heartbeat_s
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.state = LiveStudyState(
            straggler_factor=straggler_factor,
            min_samples=min_samples,
            window=window,
            stall_after_s=stall_after_beats * heartbeat_s,
        )
        self._lock = threading.Lock()
        self._queue = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: observers called with each newly raised live event dict
        #: (straggler/stall), from the drain thread.
        self.listeners: list[Callable[[dict], None]] = []

    # -- lifecycle ----------------------------------------------------
    def start(self) -> "LiveTelemetry":
        """Start the drain thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._drain, name="repro-live-drain", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the drain thread and write the final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            if self.state.phase == "running":
                self.state.phase = "done"
            self._write_snapshot()

    def connect(self, ctx) -> "object":
        """The side-channel queue for pool workers (created lazily).

        ``ctx`` is the multiprocessing context the pool uses; the queue
        must come from the same context to ride through the pool
        initializer args.  One queue serves every study this telemetry
        instance observes.
        """
        if self._queue is None:
            self._queue = ctx.Queue()
        return self._queue

    # -- parent-local emission (pid 0 marks "parent") -----------------
    def begin_study(self, cells: int, workers: int) -> None:
        with self._lock:
            self.state.begin_study(cells, workers)

    def cell_started(self, pos: int, label: str) -> None:
        with self._lock:
            self.state.fold(("start", 0, time.monotonic(), pos, label))

    def cell_finished(self, pos: int, label: str, dur_s: float) -> None:
        with self._lock:
            self.state.fold(
                ("finish", 0, time.monotonic(), pos, label, dur_s)
            )

    def cache_hit(self, pos: int, label: str) -> None:
        with self._lock:
            self.state.fold(("hit", 0, time.monotonic(), pos, label))

    # -- reading ------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return self.state.snapshot()

    def openmetrics(self) -> str:
        return "\n".join(live_openmetrics_lines(self.snapshot())) + "\n"

    # -- drain thread -------------------------------------------------
    def _drain(self) -> None:
        tick = self.heartbeat_s
        next_snap = time.monotonic()
        while True:
            stopping = self._stop.is_set()
            queue = self._queue
            drained = False
            if queue is not None:
                try:
                    event = queue.get(timeout=0.0 if stopping else tick)
                    drained = True
                except Exception:
                    # Empty (the common case) or a closed queue during
                    # interpreter teardown; either way, fall through to
                    # the periodic work.
                    drained = False
                if drained:
                    with self._lock:
                        self.state.fold(event)
                    # Opportunistically drain the backlog so a burst of
                    # events does not serialize one tick apiece.
                    for _ in range(512):
                        try:
                            event = queue.get_nowait()
                        except Exception:
                            break
                        with self._lock:
                            self.state.fold(event)
            else:
                self._stop.wait(tick)
            now = time.monotonic()
            with self._lock:
                raised = self.state.check_health(now)
            for event in raised:
                for listener in list(self.listeners):
                    try:
                        listener(event)
                    except Exception:
                        pass
            if now >= next_snap:
                with self._lock:
                    self._write_snapshot()
                next_snap = now + tick
            if stopping and not drained:
                return

    def _write_snapshot(self) -> None:
        """Atomically rewrite the snapshot file (caller holds the lock)."""
        if self.snapshot_path is None:
            return
        snap = self.state.snapshot()
        tmp = self.snapshot_path.with_name(
            self.snapshot_path.name + f".tmp{os.getpid()}"
        )
        try:
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(snap, indent=1) + "\n")
            os.replace(tmp, self.snapshot_path)
        except OSError:
            # Telemetry must never take a study down with it.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


class WorkerEmitter:
    """The worker half: emits events and heartbeats into the queue.

    Built once per pool worker by the pool initializer.  ``put`` never
    blocks and never raises into the study — a full or broken queue
    drops the event (the channel is observational; losing an event
    loses a progress update, nothing else).  A daemon heartbeat thread
    reports the in-flight cell every ``heartbeat_s`` so the parent can
    tell a long cell (straggler) from a dead worker (stall).
    """

    def __init__(self, queue, heartbeat_s: float = 0.5) -> None:
        self._queue = queue
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._current: tuple[int, str, float] | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat,
            args=(heartbeat_s,),
            name="repro-live-heartbeat",
            daemon=True,
        )
        self._thread.start()

    def _put(self, event: tuple) -> None:
        try:
            self._queue.put_nowait(event)
        except Exception:
            pass

    def chunk_claimed(self, cells: int) -> None:
        self._put(("chunk", self.pid, time.monotonic(), cells))

    def cell_started(self, pos: int, label: str) -> None:
        t = time.monotonic()
        with self._lock:
            self._current = (pos, label, t)
        self._put(("start", self.pid, t, pos, label))

    def cell_finished(self, pos: int, label: str) -> None:
        t = time.monotonic()
        with self._lock:
            current = self._current
            self._current = None
        dur = t - current[2] if current is not None else 0.0
        self._put(("finish", self.pid, t, pos, label, dur))

    def _beat(self, heartbeat_s: float) -> None:
        while not self._stop.wait(heartbeat_s):
            with self._lock:
                current = self._current
            t = time.monotonic()
            if current is not None:
                pos, _label, since = current
                self._put(("hb", self.pid, t, pos, t - since))
            else:
                self._put(("hb", self.pid, t, None, 0.0))

    def close(self) -> None:  # pragma: no cover - workers die with pool
        self._stop.set()


# ----------------------------------------------------------------------
# Snapshot consumers: OpenMetrics, progress line, top view
# ----------------------------------------------------------------------
def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot JSON file written by :class:`LiveTelemetry`."""
    with open(path, encoding="utf-8") as fh:
        snap = json.load(fh)
    if not isinstance(snap, dict) or snap.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: not a live telemetry snapshot "
            f"(expected schema {SNAPSHOT_SCHEMA!r})"
        )
    return snap


def live_openmetrics_lines(snap: dict) -> list[str]:
    """A live snapshot as OpenMetrics text exposition lines.

    Complements the post-hoc rollups in :mod:`repro.obs.export` (same
    escaping, same ``# EOF`` terminator, same validator) with gauges
    that move while the study runs.
    """
    from repro.obs.export import _om_escape

    study = snap.get("study", {})
    rates = snap.get("rates", {})
    lines = [
        "# TYPE repro_live_up gauge",
        "repro_live_up 1",
        "# TYPE repro_live_cells gauge",
    ]
    for state in ("total", "done", "cache_hits", "in_flight"):
        lines.append(
            f'repro_live_cells{{state="{state}"}} '
            f"{int(study.get(state) or 0)}"
        )
    lines.append("# TYPE repro_live_chunks_claimed gauge")
    lines.append(
        f"repro_live_chunks_claimed {int(study.get('chunks_claimed') or 0)}"
    )
    lines.append("# TYPE repro_live_cells_per_sec gauge")
    for estimate in ("ewma", "overall"):
        value = rates.get(f"cells_per_sec_{estimate}")
        if value is not None:
            lines.append(
                f'repro_live_cells_per_sec{{estimate="{estimate}"}} '
                f"{float(value):.9g}"
            )
    for key, metric in (
        ("eta_s", "repro_live_eta_seconds"),
        ("elapsed_s", "repro_live_elapsed_seconds"),
        ("median_cell_s", "repro_live_median_cell_seconds"),
    ):
        value = rates.get(key)
        if value is not None:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(value):.9g}")
    workers = snap.get("workers", [])
    if workers:
        lines.append("# TYPE repro_live_worker_cells gauge")
        for w in workers:
            lines.append(
                f'repro_live_worker_cells{{worker="{w["worker"]}"}} '
                f"{int(w.get('done') or 0)}"
            )
        lines.append("# TYPE repro_live_worker_age_seconds gauge")
        for w in workers:
            if w.get("age_s") is not None:
                lines.append(
                    "repro_live_worker_age_seconds"
                    f'{{worker="{w["worker"]}",'
                    f'cell="{_om_escape(w.get("cell") or "")}"}} '
                    f"{float(w['age_s']):.9g}"
                )
        lines.append("# TYPE repro_live_worker_flag gauge")
        for w in workers:
            for flag in ("straggler", "stalled"):
                lines.append(
                    "repro_live_worker_flag"
                    f'{{worker="{w["worker"]}",flag="{flag}"}} '
                    f"{1 if w.get(flag) else 0}"
                )
    counters = snap.get("counters", {})
    if counters:
        lines.append("# TYPE repro_counter counter")
        for name, value in sorted(counters.items()):
            lines.append(
                f'repro_counter_total{{name="{_om_escape(name)}"}} '
                f"{value:g}"
            )
    lines.append("# EOF")
    return lines


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_progress_line(snap: dict) -> str:
    """One-line study status (the ``--progress`` display)."""
    study = snap.get("study", {})
    rates = snap.get("rates", {})
    counters = snap.get("counters", {})
    total = study.get("total") or 0
    done = study.get("done") or 0
    pct = f"{100.0 * done / total:3.0f}%" if total else "  -"
    rate = rates.get("cells_per_sec_ewma") or rates.get(
        "cells_per_sec_overall"
    )
    rate_s = f"{rate:.1f}" if rate is not None else "-"
    parts = [
        f"cells {done}/{total} ({pct})",
        f"{rate_s} cells/s",
        f"eta {_fmt_eta(rates.get('eta_s'))}",
        f"inflight {study.get('in_flight') or 0}",
    ]
    if study.get("cache_hits"):
        parts.append(f"hits {study['cache_hits']}")
    stragglers = counters.get("runner.stragglers", 0)
    stalls = counters.get("runner.stalls", 0)
    if stragglers or stalls:
        parts.append(f"stragglers {stragglers} stalls {stalls}")
    if snap.get("phase") == "done":
        parts.append("done")
    return " | ".join(parts)


def render_top(snap: dict) -> str:
    """Multi-line per-worker view (the ``repro top`` display)."""
    from repro.util.text import format_table

    lines = [render_progress_line(snap)]
    rates = snap.get("rates", {})
    med = rates.get("median_cell_s")
    lines.append(
        f"elapsed {_fmt_eta(rates.get('elapsed_s'))}"
        + (f" | median cell {med:.2f}s" if med is not None else "")
    )
    workers = snap.get("workers", [])
    if workers:
        lines.append("")
        lines.append(
            format_table(
                ["worker", "done", "in-flight cell", "age [s]", "flags"],
                [
                    [
                        "parent" if w.get("local") else str(w["worker"]),
                        str(w.get("done") or 0),
                        str(w.get("cell") or "-"),
                        (
                            f"{w['age_s']:.1f}"
                            if w.get("age_s") is not None
                            else "-"
                        ),
                        " ".join(
                            flag
                            for flag in ("straggler", "stalled")
                            if w.get(flag)
                        )
                        or "-",
                    ]
                    for w in workers
                ],
            )
        )
    events = snap.get("events", [])
    if events:
        lines.append("")
        lines.append("recent events:")
        for ev in events[-8:]:
            detail = (
                f"age {ev['age_s']}s vs median {ev['median_s']}s"
                if ev.get("kind") == "straggler"
                else f"silent {ev.get('silent_s', '?')}s"
            )
            lines.append(
                f"  {ev.get('kind', '?')}: worker {ev.get('worker', '?')} "
                f"on {ev.get('cell', '?')} ({detail})"
            )
    return "\n".join(lines)


class ProgressPrinter:
    """Streams the progress line to stderr while a study runs.

    On a TTY the line redraws in place (carriage return); otherwise —
    CI logs — a full line is printed once per ``interval_s`` so the log
    still shows motion.  Straggler/stall events always get their own
    line.  :meth:`close` prints the final state and a newline.
    """

    def __init__(
        self,
        telemetry: LiveTelemetry,
        *,
        stream=None,
        interval_s: float = 0.5,
    ) -> None:
        self.telemetry = telemetry
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._stop = threading.Event()
        self._last_len = 0
        telemetry.listeners.append(self._on_event)
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-progress", daemon=True
        )
        self._thread.start()

    def _render(self, line: str) -> None:
        try:
            if self._tty:
                pad = " " * max(0, self._last_len - len(line))
                self.stream.write(f"\r{line}{pad}")
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
            self._last_len = len(line)
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def _on_event(self, event: dict) -> None:
        cell = event.get("cell", "?")
        if event.get("kind") == "straggler":
            note = (
                f"straggler: worker {event.get('worker')} on {cell} "
                f"({event.get('age_s')}s > {event.get('median_s')}s median)"
            )
        else:
            note = (
                f"stall: worker {event.get('worker')} on {cell} "
                f"(silent {event.get('silent_s')}s)"
            )
        if self._tty:
            self._render("")  # clear the status line
            self._last_len = 0
        try:
            self.stream.write(note + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover
            pass

    def _loop(self) -> None:
        interval = self.interval_s if self._tty else max(
            self.interval_s, 2.0
        )
        while not self._stop.wait(interval):
            snap = self.telemetry.snapshot()
            if snap["study"]["total"]:
                self._render(render_progress_line(snap))

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self.telemetry.listeners.remove(self._on_event)
        except ValueError:  # pragma: no cover
            pass
        snap = self.telemetry.snapshot()
        if snap["study"]["total"]:
            self._render(render_progress_line(snap))
            if self._tty:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):  # pragma: no cover
                    pass
