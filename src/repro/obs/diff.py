"""Cross-variant discrepancy explorer (the ``repro diff`` command).

Compares two timeline files run for run and answers the paper's core
question — *where* does a simulator's prediction diverge from another
variant's (or from the emulated experiment)?  Makespan deltas are
decomposed into the paper's Section-V attribution categories:

* **exec** — time spent computing inside tasks,
* **startup** — per-task startup overhead (the JVM/process-spawn cost
  the paper measures separately),
* **redist** — data-redistribution transfer time between tasks,
* **other** — residual idle time on the critical chain (zero under the
  engines' gapless execution discipline; non-zero only for truncated
  or foreign timelines).

The decomposition walks the critical chain *backward* from the last
finishing task: the engines start a task at exactly the simulated time
its last gating event (input redistribution or host-order predecessor)
finished, and start a redistribution at exactly its producer's finish —
so chain segments telescope and the per-category times sum to the
makespan **exactly** (floating-point identical, not approximately).
Two runs' category deltas therefore sum to their makespan delta.

The explorer also flags **wrong-sign cells**: (dag, n) cells where the
two timelines disagree about *which algorithm wins* (e.g. A says HCPA
beats MCPA, B says the opposite) — the qualitative failure mode the
paper's simulation-vs-experiment comparison is designed to expose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.obs.report import TraceReadError
from repro.obs.timeline import load_timeline
from repro.util.text import format_table

__all__ = [
    "TimelineRun",
    "split_runs",
    "decompose",
    "diff_timelines",
    "render_diff",
    "diff_files",
]

#: Components of the makespan decomposition, in report order.
COMPONENTS = ("exec", "startup", "redist", "other")


@dataclass
class TimelineRun:
    """One simulated (or emulated) run reassembled from timeline records."""

    run: int
    dag: str
    algorithm: str
    role: str
    variant: str | None = None
    n: int | None = None
    model: str | None = None
    engine: str | None = None
    makespan: float = 0.0
    tasks: dict[int, dict] = field(default_factory=dict)
    xfers: dict[tuple[int, int], dict] = field(default_factory=dict)

    @property
    def cell(self) -> tuple:
        """Grid coordinates used to pair runs across timelines."""
        return (self.variant, self.dag, self.algorithm, self.role, self.n)


def split_runs(records: list[dict]) -> list[TimelineRun]:
    """Group a timeline's records into per-run structures.

    ``task`` / ``xfer`` records are attributed to their ``run`` id; the
    trailing ``run`` summary record supplies the metadata.  Records
    outside any run (scheduler ``alloc`` decisions, the ``meta``
    header) are skipped — the diff works on realised executions.
    """
    tasks: dict[int, dict[int, dict]] = {}
    xfers: dict[int, dict[tuple[int, int], dict]] = {}
    runs: list[TimelineRun] = []
    for record in records:
        kind = record.get("kind")
        run_id = record.get("run")
        if run_id is None:
            continue
        if kind == "task":
            tasks.setdefault(run_id, {})[int(record["task"])] = record
        elif kind == "xfer":
            key = (int(record["src"]), int(record["dst"]))
            xfers.setdefault(run_id, {})[key] = record
        elif kind == "run":
            runs.append(
                TimelineRun(
                    run=int(run_id),
                    dag=str(record.get("dag", "?")),
                    algorithm=str(record.get("algorithm", "?")),
                    role=str(record.get("role", "sim")),
                    variant=record.get("variant"),
                    n=record.get("n"),
                    model=record.get("model"),
                    engine=record.get("engine"),
                    makespan=float(record.get("makespan", 0.0)),
                    tasks=tasks.pop(run_id, {}),
                    xfers=xfers.pop(run_id, {}),
                )
            )
    return runs


def _links_close(a: float, b: float) -> bool:
    return a == b or math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


def decompose(run: TimelineRun) -> dict[str, float]:
    """Split ``run``'s makespan into the paper's attribution categories.

    Walks the critical chain backward from the last-finishing task
    (ties broken toward the smallest task id, so the walk is
    deterministic).  At each task, the gating event is the input
    redistribution — preferred, since transfers are what the paper
    attributes — or the host-order predecessor whose finish equals the
    task's start; the engines make that equality exact.  Category times
    sum to the makespan exactly; any residual (foreign timelines only)
    lands in ``other``.
    """
    out = {name: 0.0 for name in COMPONENTS}
    if not run.tasks:
        return out
    # Host-order predecessors: for each host, tasks sorted by finish.
    by_host: dict[int, list[dict]] = {}
    for rec in run.tasks.values():
        for host in rec.get("hosts", ()):
            by_host.setdefault(int(host), []).append(rec)
    # Inbound transfers per destination task.
    inbound: dict[int, list[tuple[tuple[int, int], dict]]] = {}
    for key, rec in run.xfers.items():
        inbound.setdefault(key[1], []).append((key, rec))

    current = min(
        run.tasks.values(),
        key=lambda r: (-float(r["finish"]), int(r["task"])),
    )
    visited: set[int] = set()
    while True:
        task_id = int(current["task"])
        if task_id in visited:
            break
        visited.add(task_id)
        start = float(current["start"])
        dur = float(current["finish"]) - start
        startup = min(float(current.get("startup", 0.0)), dur)
        out["startup"] += startup
        out["exec"] += dur - startup
        if start <= 0.0:
            break
        # Gating input redistribution (finish == this task's start)?
        gate_xfer = None
        for key, rec in sorted(inbound.get(task_id, ())):
            if _links_close(float(rec["finish"]), start):
                gate_xfer = rec
                break
        if gate_xfer is not None:
            xstart = float(gate_xfer["start"])
            out["redist"] += float(gate_xfer["finish"]) - xstart
            producer = run.tasks.get(int(gate_xfer["src"]))
            if producer is not None and _links_close(
                float(producer["finish"]), xstart
            ):
                current = producer
                continue
            out["other"] += xstart
            break
        # Host-order predecessor finishing exactly at this start?
        gate_pred = None
        for host in current.get("hosts", ()):
            for rec in by_host.get(int(host), ()):
                if int(rec["task"]) == task_id or int(rec["task"]) in visited:
                    continue
                if _links_close(float(rec["finish"]), start):
                    if gate_pred is None or int(rec["task"]) < int(
                        gate_pred["task"]
                    ):
                        gate_pred = rec
        if gate_pred is None:
            out["other"] += start
            break
        current = gate_pred
    return out


def _pair_runs(
    a_runs: list[TimelineRun], b_runs: list[TimelineRun]
) -> list[tuple[TimelineRun, TimelineRun]]:
    """Match runs across the two timelines by grid cell.

    Pairs on the full (variant, dag, algorithm, role, n) cell when the
    two timelines share variants; otherwise — the cross-variant case
    the explorer exists for — the variant coordinate is dropped, and
    only cells unambiguous on both sides are paired.
    """

    def index(runs: list[TimelineRun], with_variant: bool) -> dict:
        out: dict = {}
        for run in runs:
            key = run.cell if with_variant else run.cell[1:]
            out.setdefault(key, []).append(run)
        return out

    a_full, b_full = index(a_runs, True), index(b_runs, True)
    if set(a_full) & set(b_full):
        keys, a_idx, b_idx = sorted(set(a_full) & set(b_full)), a_full, b_full
    else:
        a_idx, b_idx = index(a_runs, False), index(b_runs, False)
        keys = sorted(
            k
            for k in set(a_idx) & set(b_idx)
            if len(a_idx[k]) == 1 and len(b_idx[k]) == 1
        )
    return [(a_idx[k][0], b_idx[k][0]) for k in keys]


def _wrong_sign_cells(
    a_runs: list[TimelineRun], b_runs: list[TimelineRun]
) -> list[dict]:
    """Cells where the two timelines disagree on the winning algorithm.

    For every (dag, n, role) holding both an ``hcpa`` and an ``mcpa``
    run in *both* timelines, compare the sign of ``makespan(hcpa) -
    makespan(mcpa)``; a flipped (nonzero) sign means one timeline
    predicts the wrong winner relative to the other — the qualitative
    error the paper's comparison methodology targets.
    """

    def gaps(runs: list[TimelineRun]) -> dict[tuple, float]:
        spans: dict[tuple, dict[str, float]] = {}
        for run in runs:
            cell = (run.dag, run.n, run.role)
            spans.setdefault(cell, {})[run.algorithm] = run.makespan
        return {
            cell: algos["hcpa"] - algos["mcpa"]
            for cell, algos in spans.items()
            if "hcpa" in algos and "mcpa" in algos
        }

    a_gaps, b_gaps = gaps(a_runs), gaps(b_runs)
    flagged = []
    for cell in sorted(set(a_gaps) & set(b_gaps), key=str):
        ga, gb = a_gaps[cell], b_gaps[cell]
        if ga * gb < 0.0:
            flagged.append(
                {
                    "dag": cell[0],
                    "n": cell[1],
                    "role": cell[2],
                    "gap_a": ga,
                    "gap_b": gb,
                    "winner_a": "hcpa" if ga < 0 else "mcpa",
                    "winner_b": "hcpa" if gb < 0 else "mcpa",
                }
            )
    return flagged


def diff_timelines(
    a_records: list[dict],
    b_records: list[dict],
    *,
    role: str | None = "sim",
    top: int = 5,
) -> dict:
    """Structured comparison of two timelines.

    Returns a dict with ``pairs`` (per-cell makespan deltas and their
    component decomposition; the components of every pair sum to its
    makespan delta), ``wrong_sign`` cells, the ``top`` per-task
    duration movers, and unmatched-run counts.  ``role=None`` pairs
    across roles (e.g. a ``sim`` timeline against an ``experiment``
    one).
    """
    a_runs = split_runs(a_records)
    b_runs = split_runs(b_records)
    wrong_sign = _wrong_sign_cells(a_runs, b_runs)
    if role is not None:
        a_runs = [r for r in a_runs if r.role == role]
        b_runs = [r for r in b_runs if r.role == role]
    pairs = _pair_runs(a_runs, b_runs)
    paired_a = {id(a) for a, _ in pairs}
    paired_b = {id(b) for _, b in pairs}
    results = []
    movers: list[dict] = []
    for a, b in pairs:
        comp_a = decompose(a)
        comp_b = decompose(b)
        delta = {name: comp_b[name] - comp_a[name] for name in COMPONENTS}
        results.append(
            {
                "dag": a.dag,
                "n": a.n,
                "algorithm": a.algorithm,
                "role": a.role,
                "variant_a": a.variant,
                "variant_b": b.variant,
                "makespan_a": a.makespan,
                "makespan_b": b.makespan,
                "delta": b.makespan - a.makespan,
                "components": delta,
                "components_a": comp_a,
                "components_b": comp_b,
            }
        )
        for task_id in sorted(set(a.tasks) & set(b.tasks)):
            ta, tb = a.tasks[task_id], b.tasks[task_id]
            da = float(ta["finish"]) - float(ta["start"])
            db = float(tb["finish"]) - float(tb["start"])
            if da != db:
                movers.append(
                    {
                        "dag": a.dag,
                        "algorithm": a.algorithm,
                        "task": task_id,
                        "dur_a": da,
                        "dur_b": db,
                        "delta": db - da,
                    }
                )
    movers.sort(key=lambda m: (-abs(m["delta"]), m["dag"], m["task"]))
    return {
        "pairs": results,
        "wrong_sign": wrong_sign,
        "movers": movers[:top],
        "unmatched_a": len(a_runs) - len(paired_a),
        "unmatched_b": len(b_runs) - len(paired_b),
    }


def render_diff(diff: dict, label_a: str, label_b: str) -> str:
    """Human-readable report of a :func:`diff_timelines` result."""
    lines = [f"A: {label_a}", f"B: {label_b}"]
    pairs = diff["pairs"]
    lines.append(
        f"paired runs: {len(pairs)}  "
        f"(unmatched: {diff['unmatched_a']} in A, "
        f"{diff['unmatched_b']} in B)"
    )
    if pairs:
        lines.append("")
        lines.append("makespan delta (B - A) and its decomposition [s]:")
        rows = []
        for p in pairs:
            rows.append(
                [
                    p["dag"],
                    p["algorithm"],
                    f"{p['makespan_a']:.4f}",
                    f"{p['makespan_b']:.4f}",
                    f"{p['delta']:+.4f}",
                    f"{p['components']['exec']:+.4f}",
                    f"{p['components']['startup']:+.4f}",
                    f"{p['components']['redist']:+.4f}",
                    f"{p['components']['other']:+.4f}",
                ]
            )
        lines.append(
            format_table(
                [
                    "dag",
                    "algorithm",
                    "A [s]",
                    "B [s]",
                    "delta",
                    "exec",
                    "startup",
                    "redist",
                    "other",
                ],
                rows,
            )
        )
    wrong = diff["wrong_sign"]
    lines.append("")
    if wrong:
        lines.append(f"WRONG-SIGN cells ({len(wrong)}): the two timelines")
        lines.append("disagree about which of hcpa/mcpa wins:")
        lines.append(
            format_table(
                ["dag", "n", "role", "gap A [s]", "gap B [s]", "A says", "B says"],
                [
                    [
                        w["dag"],
                        str(w["n"]),
                        w["role"],
                        f"{w['gap_a']:+.4f}",
                        f"{w['gap_b']:+.4f}",
                        w["winner_a"],
                        w["winner_b"],
                    ]
                    for w in wrong
                ],
            )
        )
    else:
        lines.append("wrong-sign cells: none (hcpa-vs-mcpa ordering agrees)")
    movers = diff["movers"]
    if movers:
        lines.append("")
        lines.append("top task duration movers:")
        lines.append(
            format_table(
                ["dag", "algorithm", "task", "A [s]", "B [s]", "delta [s]"],
                [
                    [
                        m["dag"],
                        m["algorithm"],
                        str(m["task"]),
                        f"{m['dur_a']:.4f}",
                        f"{m['dur_b']:.4f}",
                        f"{m['delta']:+.4f}",
                    ]
                    for m in movers
                ],
            )
        )
    return "\n".join(lines)


def diff_files(
    a: Union[str, Path],
    b: Union[str, Path],
    *,
    role: str | None = "sim",
    top: int = 5,
) -> str:
    """Load two timeline files and render their comparison.

    Empty and run-less (header-only) inputs raise
    :class:`~repro.obs.report.TraceReadError` up front — diffing them
    would print a vacuous "paired runs: 0" report that hides the real
    problem.
    """
    a_records, b_records = load_timeline(a), load_timeline(b)
    for path, records in ((a, a_records), (b, b_records)):
        if not records:
            raise TraceReadError(
                f"{path}: file is empty — no timeline records to diff "
                "(was the traced command interrupted?)"
            )
        if not any(r.get("kind") == "run" for r in records):
            raise TraceReadError(
                f"{path}: timeline has no completed runs to pair — only "
                "header/decision records (rerun a workload, e.g. "
                "'repro --timeline-out FILE study')"
            )
    diff = diff_timelines(a_records, b_records, role=role, top=top)
    return render_diff(diff, str(a), str(b))
