"""Hierarchical wall-clock profiler and measured kernel crossovers.

Two instruments live here, both feeding the performance work the
ROADMAP schedules next (vectorizing the scheduling hot path):

* :class:`Profiler` — nestable named spans forming a call-path tree
  plus *dimension-tagged kernel probes*.  A span records wall-clock
  time under its full path (``("sched.allocate", "critical_path_dp")``),
  so the flamegraph exporters in :mod:`repro.obs.flame` can attribute
  cost hierarchically; a probe records ``(kernel, size_bucket,
  seconds)`` so every ``_maxmin_flat`` / ``_maxmin_dense`` solve,
  scalar/vectorized step scan, ``alloc_grow`` sweep and
  ``CriticalPathDP`` pass contributes to an empirical per-kernel,
  per-size cost model.
* :class:`CrossoverTable` — aggregates scalar-vs-vectorized timings
  per input size into *measured* crossover points, replacing the
  hard-coded dispatch thresholds in :mod:`repro.simgrid.arena`
  (persisted as JSON, loaded via ``REPRO_DISPATCH_TABLE``).

Design rules (matching the Recorder's, see ``docs/observability.md``):

* **Disabled is free.**  Instrumented code holds ``prof = rec.profiler``
  and guards with ``if prof is not None:`` — no profiler means one
  attribute load and a branch, no clock reads.
* **Deterministic merge.**  A profiler's accumulated state is a plain
  dict (:meth:`Profiler.export_state`), merged across workers by
  :meth:`Profiler.absorb` in the study runner's submission order; the
  serialized form is key-sorted, so the *structure* (paths and counts)
  is byte-identical across worker counts and engine backends.
* **Wall clocks never feed back.**  Nothing here influences simulated
  time or scheduling decisions; the dispatch thresholds a
  :class:`CrossoverTable` yields change only *speed*, never results —
  the array engine's kernels are bit-identical across thresholds.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "CrossoverTable",
    "PAIRS",
    "Profiler",
    "size_bucket",
]

#: Path separator in serialized span keys and collapsed stacks.  Span
#: names are dotted identifiers and must not contain it.
PATH_SEP = ";"

#: The scalar/vectorized kernel pairs the dispatch crossovers describe.
#: ``unit`` names the size dimension the pair is bucketed by: the
#: max-min solver dispatches on total consumption *entries* in the
#: working set, the step scan on *actions* in the alive queue, the
#: scheduler's bottom-level DP on *tasks* in the DAG and its grow sweep
#: on critical-path *candidates*.  The scheduler pairs are
#: calibration-only sides: the live probes in
#: :mod:`repro.scheduling.arena` keep the aggregate kernel names
#: (``critical_path_dp`` / ``alloc_grow``) in both backends so profile
#: structures stay identical across ``sched`` backends, and crossover
#: evidence comes from :meth:`CrossoverTable.measure`.
PAIRS: dict[str, dict[str, str]] = {
    "solver": {
        "unit": "entries",
        "scalar": "maxmin_flat",
        "vectorized": "maxmin_dense",
    },
    "step_scan": {
        "unit": "actions",
        "scalar": "scan_scalar",
        "vectorized": "scan_vector",
    },
    "critical_path_dp": {
        "unit": "tasks",
        "scalar": "cp_dp_scalar",
        "vectorized": "cp_dp_vector",
    },
    "alloc_grow": {
        "unit": "candidates",
        "scalar": "grow_scalar",
        "vectorized": "grow_vector",
    },
}


def size_bucket(n: int) -> int:
    """Power-of-two bucket of a size (``0`` for empty instances).

    Buckets keep the probe tables small while preserving the order of
    magnitude the dispatch decision depends on: ``1..1 -> 1``,
    ``2 -> 2``, ``3..4 -> 4``, ``5..8 -> 8`` and so on (the bucket is
    the smallest power of two >= n).
    """
    if n <= 0:
        return 0
    return 1 << (int(n) - 1).bit_length()


def _merge_stats(into: list, count: int, total: float, mn: float, mx: float) -> None:
    into[0] += count
    into[1] += total
    if mn < into[2]:
        into[2] = mn
    if mx > into[3]:
        into[3] = mx


def _stats_dict(stats: list) -> dict:
    count, total, mn, mx = stats
    return {
        "count": count,
        "total_s": total,
        "mean_s": total / count if count else 0.0,
        "min_s": mn if count else None,
        "max_s": mx,
    }


class Profiler:
    """Accumulates span-path timings and kernel probes.

    Span state is a flat dict keyed by the full path tuple — the tree
    is implicit in the keys, which is what the collapsed-stack format
    wants anyway.  The *stack* is thread-local (each worker thread
    nests independently); the aggregate dicts are shared, which is safe
    under the GIL for the append-only update pattern used here.
    """

    __slots__ = ("spans", "kernels", "_local")

    def __init__(self) -> None:
        #: ``{path tuple: [count, total_s, min_s, max_s]}``
        self.spans: dict[tuple[str, ...], list] = {}
        #: ``{(kernel, size_bucket): [count, total_s, min_s, max_s]}``
        self.kernels: dict[tuple[str, int], list] = {}
        self._local = threading.local()

    # -- span stack ----------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_path(self) -> tuple[str, ...]:
        """The open span path of the calling thread (for tests)."""
        return tuple(self._stack())

    def push(self, name: str) -> None:
        """Open a nested span (the Recorder calls this on span entry)."""
        self._stack().append(name)

    def pop(self, seconds: float) -> None:
        """Close the innermost span, folding its duration into the tree."""
        stack = self._stack()
        path = tuple(stack)
        stack.pop()
        self._record(path, seconds)

    def leaf(self, name: str, seconds: float) -> None:
        """Record a pre-timed child under the current path (no nesting).

        The profiler twin of ``Recorder.timing``: hot paths that clock
        themselves (``engine.solve``) attribute the measurement to the
        tree without the push/pop bookkeeping.
        """
        self._record(tuple(self._stack()) + (name,), seconds)

    def _record(self, path: tuple[str, ...], seconds: float) -> None:
        stats = self.spans.get(path)
        if stats is None:
            self.spans[path] = [1, seconds, seconds, seconds]
        else:
            _merge_stats(stats, 1, seconds, seconds, seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Directly time a block (for code without a Recorder handle)."""
        self.push(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.pop(time.perf_counter() - t0)

    # -- kernel probes -------------------------------------------------
    def probe(self, kernel: str, size: int, seconds: float) -> None:
        """Record one kernel invocation at an input size.

        ``size`` is bucketed to the next power of two, so the table
        stays a handful of rows per kernel while still resolving the
        scalar/vectorized crossover region.
        """
        key = (kernel, size_bucket(size))
        stats = self.kernels.get(key)
        if stats is None:
            self.kernels[key] = [1, seconds, seconds, seconds]
        else:
            _merge_stats(stats, 1, seconds, seconds, seconds)

    # -- merge / serialization -----------------------------------------
    def export_state(self) -> dict:
        """Plain-dict snapshot (picklable, JSON-able), key-sorted."""
        return {
            "spans": {
                PATH_SEP.join(path): _stats_dict(stats)
                for path, stats in sorted(self.spans.items())
            },
            "kernels": {
                f"{kernel}{PATH_SEP}{bucket}": _stats_dict(stats)
                for (kernel, bucket), stats in sorted(self.kernels.items())
            },
        }

    def absorb(self, state: dict) -> None:
        """Fold an :meth:`export_state` payload into this profiler.

        Counts and totals sum, min/max widen — the same merge the
        Recorder applies to span aggregates, so worker profiles folded
        in submission order yield a deterministic structure.
        """
        for key, agg in state.get("spans", {}).items():
            if not agg["count"]:
                continue
            path = tuple(key.split(PATH_SEP))
            stats = self.spans.get(path)
            if stats is None:
                stats = self.spans[path] = [0, 0.0, float("inf"), 0.0]
            _merge_stats(
                stats, agg["count"], agg["total_s"], agg["min_s"], agg["max_s"]
            )
        for key, agg in state.get("kernels", {}).items():
            if not agg["count"]:
                continue
            kernel, _, bucket = key.rpartition(PATH_SEP)
            kkey = (kernel, int(bucket))
            stats = self.kernels.get(kkey)
            if stats is None:
                stats = self.kernels[kkey] = [0, 0.0, float("inf"), 0.0]
            _merge_stats(
                stats, agg["count"], agg["total_s"], agg["min_s"], agg["max_s"]
            )

    def structure(self) -> dict:
        """Deterministic shape of the profile: paths/keys and counts only.

        Wall-clock durations jitter run to run; the *structure* — which
        spans nested under which, how many times, which kernels ran at
        which size buckets — is a pure function of the workload, so the
        determinism tests compare exactly this.
        """
        return {
            "spans": {
                PATH_SEP.join(path): stats[0]
                for path, stats in sorted(self.spans.items())
            },
            "kernels": {
                f"{kernel}{PATH_SEP}{bucket}": stats[0]
                for (kernel, bucket), stats in sorted(self.kernels.items())
            },
        }

    # -- rollups -------------------------------------------------------
    def kernel_table(self) -> list[tuple[str, int, int, float, float]]:
        """Sorted ``(kernel, bucket, calls, total_s, mean_s)`` rows."""
        rows = []
        for (kernel, bucket), stats in sorted(self.kernels.items()):
            count, total = stats[0], stats[1]
            rows.append(
                (kernel, bucket, count, total, total / count if count else 0.0)
            )
        return rows

    def render(self) -> str:
        """Human-readable span tree plus the kernel cost table."""
        lines = ["span tree (wall-clock):"]
        if not self.spans:
            lines.append("  (no spans recorded)")
        header = f"  {'path':<44} {'calls':>7} {'total':>10} {'mean':>10}"
        if self.spans:
            lines.append(header)
        for path, stats in sorted(self.spans.items()):
            count, total = stats[0], stats[1]
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f"  {label:<44} {count:>7} {total:>9.4f}s "
                f"{1e6 * total / count:>8.1f}us"
            )
        lines.append("")
        lines.append("kernel cost table (per (kernel, size bucket)):")
        if not self.kernels:
            lines.append("  (no kernel probes recorded)")
        else:
            lines.append(
                f"  {'kernel':<18} {'size<=':>8} {'calls':>8} "
                f"{'total':>10} {'mean':>10}"
            )
            for kernel, bucket, count, total, mean in self.kernel_table():
                lines.append(
                    f"  {kernel:<18} {bucket:>8} {count:>8} "
                    f"{total:>9.4f}s {1e6 * mean:>8.1f}us"
                )
        return "\n".join(lines)


class CrossoverTable:
    """Measured scalar-vs-vectorized kernel costs per input size.

    One row per (pair, size): the mean per-call seconds of the scalar
    and the vectorized kernel on the *same* instance.  The table is the
    data behind the array engine's adaptive dispatch: the measured
    crossover replaces the hard-coded size thresholds (see
    :func:`repro.simgrid.arena.dispatch_thresholds` and the
    ``REPRO_DISPATCH_TABLE`` environment variable).
    """

    SCHEMA = 1

    def __init__(self) -> None:
        #: ``{pair: {size: {"scalar_s", "vectorized_s", "iters"}}}``;
        #: one-sided rows (from observed probes, where dispatch only
        #: exercised one kernel per size) hold None for the other side.
        self.samples: dict[str, dict[int, dict]] = {}

    # -- construction --------------------------------------------------
    def add(
        self,
        pair: str,
        size: int,
        *,
        scalar_s: float | None = None,
        vectorized_s: float | None = None,
        iters: int = 1,
    ) -> None:
        if pair not in PAIRS:
            raise ValueError(
                f"unknown kernel pair {pair!r}; choose from {sorted(PAIRS)}"
            )
        row = self.samples.setdefault(pair, {}).setdefault(
            size, {"scalar_s": None, "vectorized_s": None, "iters": 0}
        )
        if scalar_s is not None:
            row["scalar_s"] = scalar_s
        if vectorized_s is not None:
            row["vectorized_s"] = vectorized_s
        row["iters"] = max(row["iters"], iters)

    @classmethod
    def from_profile(cls, profiler: Profiler) -> "CrossoverTable":
        """Build a (possibly one-sided) table from observed kernel probes.

        Production dispatch runs only one kernel per size, so rows from
        a live profile usually have a single side — still useful as the
        per-size cost model ``repro profile`` prints, and rows where
        both sides happen to exist contribute crossover evidence.
        """
        table = cls()
        sides = {
            spec["scalar"]: (pair, "scalar_s")
            for pair, spec in PAIRS.items()
        }
        sides.update(
            (spec["vectorized"], (pair, "vectorized_s"))
            for pair, spec in PAIRS.items()
        )
        for (kernel, bucket), stats in sorted(profiler.kernels.items()):
            side = sides.get(kernel)
            if side is None or not stats[0]:
                continue
            pair, field = side
            table.add(
                pair, bucket, **{field: stats[1] / stats[0]}, iters=stats[0]
            )
        return table

    # -- queries -------------------------------------------------------
    def sizes(self, pair: str) -> list[int]:
        """Sizes with *both* sides measured, ascending."""
        rows = self.samples.get(pair, {})
        return sorted(
            s
            for s, row in rows.items()
            if row["scalar_s"] is not None and row["vectorized_s"] is not None
        )

    def crossover(self, pair: str) -> int | None:
        """Smallest measured size from which the vectorized kernel wins.

        "Wins" must be *stable*: the returned size and every larger
        measured size have ``vectorized_s <= scalar_s``.  Returns None
        when the vectorized kernel never stably wins in the measured
        range (the honest answer for a kernel that needs more work —
        see ``docs/performance.md`` on ``solver_sparse_vectorized``).
        """
        sizes = self.sizes(pair)
        crossover = None
        for size in reversed(sizes):
            row = self.samples[pair][size]
            if row["vectorized_s"] <= row["scalar_s"]:
                crossover = size
            else:
                break
        return crossover

    def threshold(self, pair: str, default: int) -> int:
        """Dispatch threshold: sizes ``<= threshold`` take the scalar kernel.

        The largest measured size at which the scalar kernel still won
        (the last size below :meth:`crossover`).  With no crossover the
        scalar kernel wins everywhere measured, so the threshold is the
        largest measured size; with no two-sided measurements at all
        the caller's ``default`` passes through.
        """
        sizes = self.sizes(pair)
        if not sizes:
            return default
        crossover = self.crossover(pair)
        if crossover is None:
            return sizes[-1]
        below = [s for s in sizes if s < crossover]
        return below[-1] if below else 0

    # -- measurement ---------------------------------------------------
    @classmethod
    def measure(
        cls,
        *,
        solver_actions: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 96, 128),
        scan_actions: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512),
        dp_tasks: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512),
        grow_candidates: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
        entries_per_action: int = 4,
        repeat: int = 3,
    ) -> "CrossoverTable":
        """Run both kernels of every pair over a size grid and time them.

        Controlled calibration — unlike :meth:`from_profile`, every size
        runs *both* kernels on the identical instance, so every row is
        two-sided and yields crossover evidence.  Instances are
        deterministic (seeded) and sized like production traffic: the
        solver grid uses sparse CSR rows (``entries_per_action`` entries
        each — the regime the engine's working sets live in), the step
        scan drives a real :class:`ArraySimulationEngine` queue, the
        scheduler pairs run on layered synthetic DAG layouts shaped like
        the study's graphs (``dp_tasks``) and on HCPA-style capped gain
        sweeps (``grow_candidates``).  Each size keeps the fastest of
        ``repeat`` timing passes (the pass least disturbed by the
        machine).
        """
        # Lazy imports: the arenas import this module's consumers' layer
        # (obs), so prof must not import them at module load.
        import random

        import numpy as np

        from repro.obs.recorder import Recorder, recording
        from repro.platform.personalities import bayreuth_cluster
        from repro.scheduling.arena import (
            _bl_full_scalar,
            _bl_full_vector,
            _grow_scalar,
            _grow_vector,
            _synthetic_layout,
        )
        from repro.simgrid.arena import ArraySimulationEngine, layout_for
        from repro.simgrid.sharing import _maxmin_dense, _maxmin_flat

        table = cls()
        perf = time.perf_counter
        resources = 193  # a 64-node star platform's resource-id count

        with recording(Recorder()):  # calibration never records itself
            for actions in solver_actions:
                rng = random.Random(20260806 + actions)
                counts: list[int] = []
                e_rid: list[int] = []
                e_w: list[float] = []
                for _ in range(actions):
                    counts.append(entries_per_action)
                    e_rid.extend(
                        rng.sample(range(resources), entries_per_action)
                    )
                    e_w.extend(
                        rng.uniform(0.5, 2.0)
                        for _ in range(entries_per_action)
                    )
                caps = [rng.uniform(1.0, 8.0) for _ in range(resources)]
                np_args = (
                    np.asarray(counts, dtype=np.intp),
                    np.asarray(e_rid, dtype=np.intp),
                    np.asarray(e_w, dtype=float),
                    np.asarray(caps, dtype=float),
                )
                total = actions * entries_per_action
                iters = max(3, 512 // total)
                scalar_best = vector_best = float("inf")
                # Warm-up doubles as the bit-identity check.
                if _maxmin_flat(counts, e_rid, e_w, caps) != _maxmin_dense(
                    *np_args
                ).tolist():  # pragma: no cover - kernel bug
                    raise RuntimeError(
                        f"solver kernels diverged at {total} entries"
                    )
                for _ in range(repeat):
                    t0 = perf()
                    for _ in range(iters):
                        _maxmin_flat(counts, e_rid, e_w, caps)
                    scalar_best = min(scalar_best, (perf() - t0) / iters)
                    t0 = perf()
                    for _ in range(iters):
                        _maxmin_dense(*np_args)
                    vector_best = min(vector_best, (perf() - t0) / iters)
                table.add(
                    "solver",
                    total,
                    scalar_s=scalar_best,
                    vectorized_s=vector_best,
                    iters=iters,
                )

            layout = layout_for(bayreuth_cluster(2))
            for actions in scan_actions:
                engine = ArraySimulationEngine(layout)
                rids = engine.alloc_private_rids([1.0] * actions)
                for i, rid in enumerate(rids):
                    # Distinct works so the scan's min/threshold logic
                    # does real comparisons (all-equal rows would fire
                    # together and short-circuit the firing pass).
                    engine.add_entries(f"cal{i}", 1.0 + i, [rid], [1.0])
                alive = engine._alive
                arena = engine._arena
                rem0 = arena.remaining.copy()
                lat0 = arena.latency.copy()
                iters = max(3, 1024 // actions)
                scalar_best = vector_best = float("inf")
                for scan, attr in (
                    (engine._scan_small, "scalar_s"),
                    (engine._scan_vector, "vectorized_s"),
                ):
                    best = float("inf")
                    for _ in range(repeat):
                        acc = 0.0
                        for _ in range(iters):
                            # Restore outside the timed window: the scan
                            # mutates now/remaining/latency.
                            arena.remaining[:] = rem0
                            arena.latency[:] = lat0
                            engine.now = 0.0
                            engine._rates_dirty = False
                            t0 = perf()
                            scan(alive)
                            acc += perf() - t0
                        best = min(best, acc / iters)
                    if attr == "scalar_s":
                        scalar_best = best
                    else:
                        vector_best = best
                table.add(
                    "step_scan",
                    actions,
                    scalar_s=scalar_best,
                    vectorized_s=vector_best,
                    iters=iters,
                )

            for tasks in dp_tasks:
                rng = random.Random(20260807 + tasks)
                layout, cost = _synthetic_layout(tasks, rng)
                n = layout.n
                bl_s = [0.0] * n
                bs_s = [-1] * n
                bl_v = [0.0] * n
                bs_v = [-1] * n
                # Warm-up doubles as the bit-identity check (it also
                # builds the layout's wave arrays outside the timing).
                _bl_full_scalar(layout, cost, bl_s, bs_s)
                _bl_full_vector(layout, cost, bl_v, bs_v)
                if bl_s != bl_v or bs_s != bs_v:  # pragma: no cover
                    raise RuntimeError(
                        f"critical-path DP kernels diverged at {tasks} tasks"
                    )
                iters = max(3, 2048 // tasks)
                scalar_best = vector_best = float("inf")
                for _ in range(repeat):
                    t0 = perf()
                    for _ in range(iters):
                        _bl_full_scalar(layout, cost, bl_s, bs_s)
                    scalar_best = min(scalar_best, (perf() - t0) / iters)
                    t0 = perf()
                    for _ in range(iters):
                        _bl_full_vector(layout, cost, bl_v, bs_v)
                    vector_best = min(vector_best, (perf() - t0) / iters)
                table.add(
                    "critical_path_dp",
                    tasks,
                    scalar_s=scalar_best,
                    vectorized_s=vector_best,
                    iters=iters,
                )

            for cands in grow_candidates:
                rng = random.Random(20260808 + cands)
                # HCPA-style instance: caps block about a quarter of the
                # candidates, so the sweep's skip branch does real work.
                gains = [rng.uniform(0.0, 2.0) for _ in range(cands)]
                alloc = [rng.randint(1, 4) for _ in range(cands)]
                caps = [rng.choice([2, 8, 8, 8]) for _ in range(cands)]
                growable = list(range(cands))
                gains_np = np.asarray(gains)
                alloc_np = np.asarray(alloc, dtype=np.intp)
                caps_np = np.asarray(caps, dtype=np.intp)
                machine = 32
                if _grow_scalar(
                    growable, gains, alloc, caps, None, None, machine
                ) != _grow_vector(
                    growable, gains_np, alloc_np, caps_np, None, None, machine
                ):  # pragma: no cover - kernel bug
                    raise RuntimeError(
                        f"grow-sweep kernels diverged at {cands} candidates"
                    )
                iters = max(8, 4096 // cands)
                scalar_best = vector_best = float("inf")
                for _ in range(repeat):
                    t0 = perf()
                    for _ in range(iters):
                        _grow_scalar(
                            growable, gains, alloc, caps, None, None, machine
                        )
                    scalar_best = min(scalar_best, (perf() - t0) / iters)
                    t0 = perf()
                    for _ in range(iters):
                        _grow_vector(
                            growable, gains_np, alloc_np, caps_np,
                            None, None, machine,
                        )
                    vector_best = min(vector_best, (perf() - t0) / iters)
                table.add(
                    "alloc_grow",
                    cands,
                    scalar_s=scalar_best,
                    vectorized_s=vector_best,
                    iters=iters,
                )
        return table

    # -- serialization -------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "pairs": {
                pair: {
                    str(size): dict(row)
                    for size, row in sorted(rows.items())
                }
                for pair, rows in sorted(self.samples.items())
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CrossoverTable":
        schema = payload.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError(
                f"unsupported crossover-table schema {schema!r} "
                f"(expected {cls.SCHEMA})"
            )
        table = cls()
        for pair, rows in payload.get("pairs", {}).items():
            if pair not in PAIRS:
                raise ValueError(f"unknown kernel pair {pair!r} in table")
            for size, row in rows.items():
                table.add(
                    pair,
                    int(size),
                    scalar_s=row.get("scalar_s"),
                    vectorized_s=row.get("vectorized_s"),
                    iters=row.get("iters", 1),
                )
        return table

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CrossoverTable":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise FileNotFoundError(
                f"crossover table not found: {path} (generate one with "
                "'repro profile --what wall --save-table PATH')"
            ) from None
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"crossover table {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_json(payload)

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        """Human-readable per-size table with a crossover verdict per pair."""
        lines = []
        for pair, spec in sorted(PAIRS.items()):
            rows = self.samples.get(pair)
            lines.append(
                f"{pair} ({spec['scalar']} vs {spec['vectorized']}, "
                f"sized by {spec['unit']}):"
            )
            if not rows:
                lines.append("  (no measurements)")
                continue
            lines.append(
                f"  {spec['unit']:>8} {'scalar':>12} {'vectorized':>12} "
                f"{'ratio':>7}  winner"
            )
            for size in sorted(rows):
                row = rows[size]
                s, v = row["scalar_s"], row["vectorized_s"]
                s_txt = f"{1e6 * s:>10.1f}us" if s is not None else f"{'-':>12}"
                v_txt = f"{1e6 * v:>10.1f}us" if v is not None else f"{'-':>12}"
                if s is not None and v is not None:
                    ratio = f"{s / v:>6.2f}x"
                    winner = "vectorized" if v <= s else "scalar"
                else:
                    ratio = f"{'-':>7}"
                    winner = "(one-sided)"
                lines.append(f"  {size:>8} {s_txt} {v_txt} {ratio}  {winner}")
            crossover = self.crossover(pair)
            if crossover is not None:
                lines.append(
                    f"  measured crossover: vectorized wins from "
                    f"~{crossover} {spec['unit']}"
                )
            elif self.sizes(pair):
                lines.append(
                    "  measured crossover: none — scalar wins at every "
                    "measured size"
                )
            else:
                lines.append(
                    "  measured crossover: unknown (no two-sided rows)"
                )
        return "\n".join(lines)
