"""Run provenance: what produced a result, under which configuration.

A :class:`RunManifest` pins down everything needed to re-run (or audit)
a study: the seed, the platform description, the simulator suites and
algorithms involved, the package version, wall-clock timestamps and the
recorder's metric rollups.  It rides on :class:`StudyResult.manifest`
and — when tracing to a file — is appended as the final ``"manifest"``
record of the JSONL stream, where ``repro report`` picks it up.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.obs.recorder import Recorder

__all__ = ["RunManifest", "platform_info", "emit_manifest"]


def platform_info(cluster) -> dict:
    """JSON-able description of a :class:`ClusterPlatform`."""
    return {
        "name": cluster.name,
        "num_nodes": cluster.num_nodes,
        "flops": cluster.flops,
        "link_bandwidth": cluster.link_bandwidth,
        "link_latency": cluster.link_latency,
        "backbone_bandwidth": cluster.backbone_bandwidth,
        "backbone_latency": cluster.backbone_latency,
        "heterogeneous": cluster.node_speeds is not None,
    }


def _now_iso() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())


@dataclass
class RunManifest:
    """Provenance record of one run / study sweep."""

    seed: int = 0
    platform: dict = field(default_factory=dict)
    simulators: list[str] = field(default_factory=list)
    algorithms: list[str] = field(default_factory=list)
    version: str = ""
    command: str = ""
    created: str = field(default_factory=_now_iso)
    python: str = field(default_factory=_platform.python_version)
    num_records: int = 0
    metrics: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        *,
        seed: int,
        cluster=None,
        simulators: list[str] | None = None,
        algorithms: list[str] | None = None,
        command: str = "",
        num_records: int = 0,
        recorder: Recorder | None = None,
    ) -> "RunManifest":
        """Build a manifest from live objects (platform, recorder)."""
        from repro import __version__

        return cls(
            seed=seed,
            platform=platform_info(cluster) if cluster is not None else {},
            simulators=list(simulators or []),
            algorithms=list(algorithms or []),
            version=__version__,
            command=command,
            num_records=num_records,
            metrics=recorder.metrics() if recorder is not None else {},
        )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "platform": self.platform,
            "simulators": self.simulators,
            "algorithms": self.algorithms,
            "version": self.version,
            "command": self.command,
            "created": self.created,
            "python": self.python,
            "num_records": self.num_records,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def emit_manifest(recorder: Recorder, manifest: RunManifest) -> None:
    """Append ``manifest`` as the trace's final ``"manifest"`` record."""
    if not recorder.enabled:
        return
    record = {"type": "manifest"}
    record.update(manifest.to_dict())
    recorder.sink.write(record)
