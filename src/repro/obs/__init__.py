"""Structured observability: event tracing, metrics and run provenance.

The paper's thesis is that simulator accuracy must be *measured*, not
assumed; this layer applies the same standard to the reproduction
itself.  It is a zero-dependency instrumentation substrate with a hard
guarantee: **disabled is free**.  The process-global recorder starts
over a null sink, reports ``enabled = False``, and every instrumented
hot path (the engine step loop above all) guards emission behind that
flag — no event objects are constructed, no sink is called.

Pieces
------
:class:`Recorder`
    Typed events (``event``), in-memory counters (``count``) and timed
    ``span()`` blocks over a pluggable :class:`Sink`.
:class:`NullSink` / :class:`MemorySink` / :class:`JsonlSink`
    Discard, buffer, or stream records as JSON lines.
:class:`RunManifest`
    Provenance record (seed, platform, suites, version, metric rollups)
    attached to study results and appended to JSONL traces.
:func:`report_file`
    Human-readable summary of a trace (the ``repro report`` command).
:class:`Profiler` / :class:`CrossoverTable`
    Hierarchical wall-clock spans with dimension-tagged kernel probes,
    and the measured scalar-vs-vectorized crossover table that drives
    the array engine's adaptive dispatch (``repro profile --what wall``).
:func:`collapsed_stacks` / :func:`chrome_profile_trace`
    Flamegraph text and a Chrome-trace wall-clock lane of a profile.

Usage
-----
>>> from repro import obs
>>> rec = obs.Recorder.to_memory()
>>> with obs.recording(rec):
...     with rec.span("phase"):
...         rec.count("things", 3)
>>> rec.counters["things"]
3
"""

from repro.obs.export import validate_openmetrics
from repro.obs.flame import (
    chrome_profile_events,
    chrome_profile_trace,
    collapsed_stacks,
    parse_collapsed,
)
from repro.obs.live import (
    LiveStudyState,
    LiveTelemetry,
    ProgressPrinter,
    live_openmetrics_lines,
    load_snapshot,
    render_progress_line,
    render_top,
)
from repro.obs.manifest import RunManifest, emit_manifest, platform_info
from repro.obs.prof import CrossoverTable, Profiler, size_bucket
from repro.obs.recorder import (
    Recorder,
    SpanStats,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.report import (
    TraceReadError,
    load_trace,
    render_report,
    report_file,
)
from repro.obs.serve import MetricsServer, ProviderError
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink
from repro.obs.timeline import Timeline, load_timeline, timeline_lines

__all__ = [
    "CrossoverTable",
    "LiveStudyState",
    "LiveTelemetry",
    "MetricsServer",
    "ProgressPrinter",
    "Profiler",
    "ProviderError",
    "Recorder",
    "SpanStats",
    "Timeline",
    "live_openmetrics_lines",
    "load_snapshot",
    "render_progress_line",
    "render_top",
    "validate_openmetrics",
    "chrome_profile_events",
    "chrome_profile_trace",
    "collapsed_stacks",
    "parse_collapsed",
    "size_bucket",
    "load_timeline",
    "timeline_lines",
    "get_recorder",
    "set_recorder",
    "recording",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "RunManifest",
    "platform_info",
    "emit_manifest",
    "TraceReadError",
    "load_trace",
    "render_report",
    "report_file",
]
