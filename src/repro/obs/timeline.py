"""Simulated-time timeline: typed records of what happened *inside* a run.

The recorder (:mod:`repro.obs.recorder`) measures the reproduction in
wall-clock time — how long the scheduler or the engine took.  The
timeline measures it in **simulated time**: when each task started and
finished on which hosts, when each redistribution ran, which allocation
decisions produced the schedule, and how the max-min solver re-shared
resources at every solve.  That is the paper's own unit of comparison,
so two timelines can be diffed cell by cell (see
:mod:`repro.obs.diff`) and exported to external viewers (see
:mod:`repro.obs.export`).

Record kinds (one JSON object per line in ``--timeline-out`` files)::

    meta        {"kind","schema","source"}            stream header
    alloc       {... ,"task","p","t_cp","t_a","step"} one grow decision
    alloc_done  {... ,"reason","total_alloc","t_cp","t_a","steps"}
    share       {... ,"t","action","rate"}            one rate assignment
    task        {... ,"task","hosts","start","finish","startup"}
    xfer        {... ,"src","dst","start","finish","overhead","volume"}
    run         {... ,"engine","makespan","tasks","xfers"}  run summary

Every record inside a run additionally carries the context fields the
enclosing scopes pushed: ``run`` (sequential id), ``role`` (``"sim"``
or ``"experiment"``), ``dag``, ``algorithm``, ``model``, and — inside a
study — ``variant`` (suite name) and ``n``.

Determinism contract
--------------------
Timelines are pure functions of simulated state: both engine backends
emit byte-identical record streams for the same cell, except for the
single ``engine`` provenance field of the trailing ``run`` record
(asserted by ``tests/experiments/test_engine_backends.py``; see
:func:`timeline_lines`).  Worker timelines merge deterministically:
:meth:`Timeline.absorb` renumbers worker-local run ids by the parent's
running offset, so a parallel study's merged timeline equals the
serial one record for record.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator, Sequence, Union

from repro.obs.sinks import JsonlSink, MemorySink, Sink

__all__ = ["Timeline", "timeline_lines", "load_timeline"]

from pathlib import Path


class Timeline:
    """Collects simulated-time records over a sink.

    A timeline rides on a :class:`~repro.obs.recorder.Recorder`
    (``Recorder(sink, timeline=...)``); instrumented code reaches it via
    ``rec.timeline`` and guards every emission with ``if tl is not
    None:`` — the same zero-cost-when-disabled discipline as the
    recorder's ``enabled`` flag.
    """

    SCHEMA = 1

    def __init__(self, sink: Sink | None = None) -> None:
        self.sink: Sink = sink if sink is not None else MemorySink()
        # Context stack: the top dict is merged into every record.
        self._stack: list[dict] = [{}]
        self._run_seq = 0
        self._header_written = False
        #: Per-kind record counts (surface in ``Recorder.metrics`` as
        #: ``timeline.<kind>`` counters).
        self.counts: dict[str, int] = {}
        #: Engine backends that produced runs in this timeline.
        self.engines: set[str] = set()

    # -- construction helpers ------------------------------------------
    @classmethod
    def to_memory(cls) -> "Timeline":
        return cls(MemorySink())

    @classmethod
    def to_file(cls, path: Union[str, Path]) -> "Timeline":
        return cls(JsonlSink(path))

    @property
    def records(self) -> list[dict] | None:
        """The buffered records (memory sinks only; None for streams)."""
        return getattr(self.sink, "records", None)

    @property
    def run_count(self) -> int:
        return self._run_seq

    # -- emission ------------------------------------------------------
    def _ensure_header(self) -> None:
        if self._header_written:
            return
        self._header_written = True
        self.counts["meta"] = self.counts.get("meta", 0) + 1
        self.sink.write(
            {"kind": "meta", "schema": self.SCHEMA, "source": "repro"}
        )

    def _emit(self, kind: str, fields: dict) -> None:
        self._ensure_header()
        record = {"kind": kind}
        record.update(self._stack[-1])
        record.update(fields)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sink.write(record)

    @contextmanager
    def context(self, **fields: object) -> Iterator["Timeline"]:
        """Push tag fields onto every record emitted inside the block."""
        merged = dict(self._stack[-1])
        merged.update(fields)
        self._stack.append(merged)
        try:
            yield self
        finally:
            self._stack.pop()

    def begin_run(self, **fields: object) -> int:
        """Open a run scope; returns its sequential id.

        Every record until the matching :meth:`end_run` carries the
        run id, a ``role`` (defaulting to ``"sim"`` unless an enclosing
        :meth:`context` set one) and the given fields (``dag``,
        ``algorithm``, ``model``, ...).
        """
        run_id = self._run_seq
        self._run_seq = run_id + 1
        merged = dict(self._stack[-1])
        merged.setdefault("role", "sim")
        merged["run"] = run_id
        merged.update(fields)
        self._stack.append(merged)
        return run_id

    def end_run(self, *, engine: str, **fields: object) -> None:
        """Close the current run scope with a summary ``run`` record.

        ``engine`` names the backend that produced the run — the one
        provenance field allowed to differ across backends.
        """
        if len(self._stack) < 2:
            raise RuntimeError("end_run without a matching begin_run")
        self.engines.add(engine)
        record_fields = {"engine": engine}
        record_fields.update(fields)
        self._emit("run", record_fields)
        self._stack.pop()

    def abort_run(self) -> None:
        """Close the current run scope without a summary record."""
        if len(self._stack) >= 2:
            self._stack.pop()

    # Typed emitters.  All simulated-time quantities are plain floats
    # straight from the engines, so both backends serialize the same
    # bytes; callers must pass Python scalars (use ``float()`` on numpy
    # values).
    def alloc(
        self, task: int, p: int, t_cp: float, t_a: float, step: int
    ) -> None:
        """One allocation-grow decision (CPA-family loop)."""
        self._emit(
            "alloc",
            {"task": task, "p": p, "t_cp": t_cp, "t_a": t_a, "step": step},
        )

    def alloc_done(
        self,
        reason: str,
        total_alloc: int,
        t_cp: float,
        t_a: float,
        steps: int,
    ) -> None:
        """Allocation-phase summary (why the grow loop stopped)."""
        self._emit(
            "alloc_done",
            {
                "reason": reason,
                "total_alloc": total_alloc,
                "t_cp": t_cp,
                "t_a": t_a,
                "steps": steps,
            },
        )

    def share(self, t: float, action: str, rate: float) -> None:
        """One resource-share (rate) assignment at simulated time ``t``."""
        self._emit("share", {"t": t, "action": action, "rate": rate})

    def task(
        self,
        task: int,
        hosts: Sequence[int],
        start: float,
        finish: float,
        startup: float,
    ) -> None:
        """One completed task execution."""
        self._emit(
            "task",
            {
                "task": task,
                "hosts": list(hosts),
                "start": start,
                "finish": finish,
                "startup": startup,
            },
        )

    def xfer(
        self,
        src: int,
        dst: int,
        start: float,
        finish: float,
        overhead: float,
        volume: float,
    ) -> None:
        """One completed redistribution transfer."""
        self._emit(
            "xfer",
            {
                "src": src,
                "dst": dst,
                "start": start,
                "finish": finish,
                "overhead": overhead,
                "volume": volume,
            },
        )

    # -- cross-process merge -------------------------------------------
    def export_state(self) -> dict:
        """Portable snapshot (memory sinks only), for pool workers."""
        return {
            "records": list(getattr(self.sink, "records", ())),
            "runs": self._run_seq,
            "engines": sorted(self.engines),
        }

    def absorb(self, state: dict) -> None:
        """Fold a worker's :meth:`export_state` payload into this timeline.

        Worker run ids (numbered from 0 per worker) are offset by this
        timeline's running total, so absorbing per-cell payloads in grid
        submission order reproduces the serial numbering exactly.  The
        worker's ``meta`` header is dropped (the merged stream has one).

        ``run_base`` (default 0) is the worker-local run id the
        payload's records start at, which lets the chunked study
        executor absorb one worker timeline slice by slice: ``runs``
        then counts only the slice's runs, and ids rebase by
        ``run_count - run_base`` instead of assuming the slice starts
        at worker run 0.
        """
        base = int(state.get("run_base", 0))
        offset = self._run_seq - base
        self._run_seq += int(state.get("runs", 0))
        self.engines.update(state.get("engines", ()))
        for record in state["records"]:
            kind = record.get("kind")
            if kind == "meta":
                continue
            self._ensure_header()
            if offset and "run" in record:
                record = dict(record)
                record["run"] = record["run"] + offset
            self.counts[kind] = self.counts.get(kind, 0) + 1
            self.sink.write(record)

    def close(self) -> None:
        self.sink.close()


def timeline_lines(
    records: Sequence[dict], *, mask_engine: bool = False
) -> list[str]:
    """Canonical JSONL serialization of timeline records.

    With ``mask_engine=True`` the ``engine`` field of ``run`` records is
    dropped — the canonical form under which the object and array
    backends are byte-identical (it is the only field allowed to
    differ).
    """
    lines: list[str] = []
    for record in records:
        if (
            mask_engine
            and record.get("kind") == "run"
            and "engine" in record
        ):
            record = {k: v for k, v in record.items() if k != "engine"}
        lines.append(json.dumps(record, separators=(",", ":")))
    return lines


def load_timeline(path: Union[str, Path]) -> list[dict]:
    """Parse a ``--timeline-out`` JSONL file into its records.

    Raises :class:`~repro.obs.report.TraceReadError` (the same error
    the trace reporter uses) on missing files, malformed JSON, or
    streams that are not timelines.
    """
    from repro.obs.report import TraceReadError

    path = Path(path)
    if not path.exists():
        raise TraceReadError(f"timeline file not found: {path}")
    records: list[dict] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(
                f"{path}:{lineno}: invalid JSON ({exc.msg})"
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise TraceReadError(
                f"{path}:{lineno}: not a timeline record (no 'kind' field"
                "; is this a --trace-out file?)"
            )
        records.append(record)
    return records
