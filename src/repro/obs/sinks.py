"""Trace sinks: where the recorder's event stream goes.

A sink receives plain-dict records (already typed and timestamped by the
:class:`~repro.obs.recorder.Recorder`) and persists or buffers them.
Three implementations cover the layer's whole design space:

* :class:`NullSink` — the default; a recorder over a null sink is
  *disabled* and instrumented code never constructs event records for it
  (the zero-overhead guarantee the engine relies on);
* :class:`MemorySink` — buffers records in a list, for tests and the
  in-process benchmark harness;
* :class:`JsonlSink` — appends one JSON object per line to a file, the
  on-disk format ``repro report`` consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink"]


class Sink:
    """Abstract record consumer."""

    def write(self, record: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Discards everything.  Recorders over a null sink are disabled."""

    def write(self, record: dict) -> None:  # pragma: no cover - never called
        pass


class MemorySink(Sink):
    """Buffers records in memory (``sink.records``)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class JsonlSink(Sink):
    """Writes one compact JSON object per line to ``path`` (or a handle).

    Records must be JSON-serialisable; the recorder only emits plain
    ``str``/``int``/``float``/``bool`` fields, so this holds by
    construction for the built-in instrumentation.
    """

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path: Path | None = None
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            self._owns = True

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")))
        self._fh.write("\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()
