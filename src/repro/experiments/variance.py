"""Run-to-run variance analysis (extension beyond the paper).

The paper executes each schedule *once* on the real cluster, so its
per-DAG comparisons carry the run-to-run noise of a single observation.
The emulated testbed lets us re-run cheaply: this module executes each
schedule many times and separates the sign-flip phenomenon into

* **noise-dominated** DAGs — the two algorithms' experimental makespan
  distributions overlap so much that the *true* winner is itself
  uncertain (no simulator, however perfect, can reliably predict a
  coin-flip), and
* **model-dominated** DAGs — the experimental winner is stable across
  runs, so a sign flip is squarely the simulator's fault.

This sharpens the paper's claim: the analytical simulator's flips are
mostly model-dominated, not an artefact of single-run measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dag.generator import DagParameters
from repro.dag.graph import TaskGraph
from repro.profiling.calibration import SimulatorSuite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator

__all__ = ["DagVariance", "VarianceStudy", "run_variance_study"]


@dataclass(frozen=True)
class DagVariance:
    """Repeated-run statistics of one DAG's HCPA-vs-MCPA comparison."""

    dag_label: str
    n: int
    rel_sim: float
    rel_exp_runs: tuple[float, ...]

    @property
    def rel_exp_mean(self) -> float:
        return float(np.mean(self.rel_exp_runs))

    @property
    def rel_exp_std(self) -> float:
        return float(np.std(self.rel_exp_runs))

    @property
    def winner_stability(self) -> float:
        """Fraction of runs agreeing with the majority experimental sign."""
        signs = np.sign(self.rel_exp_runs)
        if np.all(signs == 0):
            return 1.0
        majority = 1.0 if np.sum(signs > 0) >= np.sum(signs < 0) else -1.0
        return float(np.mean(signs == majority))

    @property
    def noise_dominated(self) -> bool:
        """True when single runs cannot reliably name the winner."""
        return self.winner_stability < 0.9

    @property
    def sign_flipped_vs_mean(self) -> bool:
        """Does the simulator disagree with the *mean* experimental sign?"""
        if self.rel_sim == 0.0 or self.rel_exp_mean == 0.0:
            return False
        return (self.rel_sim > 0) != (self.rel_exp_mean > 0)


@dataclass
class VarianceStudy:
    """Repeated-run comparison results for one simulator suite."""

    simulator: str
    n: int
    runs: int
    dags: list[DagVariance] = field(default_factory=list)

    @property
    def num_noise_dominated(self) -> int:
        return sum(1 for d in self.dags if d.noise_dominated)

    @property
    def num_model_dominated_flips(self) -> int:
        """Flips against the mean outcome of DAGs with a stable winner."""
        return sum(
            1
            for d in self.dags
            if d.sign_flipped_vs_mean and not d.noise_dominated
        )

    @property
    def num_flips_vs_mean(self) -> int:
        return sum(1 for d in self.dags if d.sign_flipped_vs_mean)


def run_variance_study(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suite: SimulatorSuite,
    emulator: TGridEmulator,
    *,
    runs: int = 5,
    n: int | None = None,
) -> VarianceStudy:
    """Schedule with ``suite``, execute each schedule ``runs`` times."""
    if runs < 2:
        raise ValueError("need at least 2 runs for a variance study")
    selected = [(p, g) for p, g in dags if n is None or p.n == n]
    if not selected:
        raise ValueError("no DAGs match the requested size")
    study = VarianceStudy(
        simulator=suite.name, n=n or selected[0][0].n, runs=runs
    )
    platform = emulator.platform
    for params, graph in selected:
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        schedules = {
            alg: schedule_dag(graph, costs, alg) for alg in ("hcpa", "mcpa")
        }
        sim = {
            alg: simulator.run(graph, sched).makespan
            for alg, sched in schedules.items()
        }
        rel_sim = (sim["hcpa"] - sim["mcpa"]) / sim["mcpa"]
        rel_runs = []
        for run in range(runs):
            exp = {
                alg: emulator.makespan(graph, sched, run_label=run)
                for alg, sched in schedules.items()
            }
            rel_runs.append((exp["hcpa"] - exp["mcpa"]) / exp["mcpa"])
        study.dags.append(
            DagVariance(
                dag_label=graph.name,
                n=params.n,
                rel_sim=rel_sim,
                rel_exp_runs=tuple(rel_runs),
            )
        )
    return study
