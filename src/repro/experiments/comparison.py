"""Comparison metrics of the case study.

The headline question: *can the simulation predict which scheduling
algorithm is better?*  For each DAG the paper computes the makespan of
HCPA relative to MCPA,

    ``rel = (makespan_HCPA - makespan_MCPA) / makespan_MCPA``,

once from simulated makespans and once from experimental ones.  A DAG
where the two relative makespans have opposite signs is a case where
"relying on simulations ... lead[s] to a result that is the opposite of
the experimental result".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.runner import StudyResult
from repro.util.stats import BoxStats, box_stats

__all__ = ["DagComparison", "AlgorithmComparison", "compare_algorithms",
           "simulation_errors"]


@dataclass(frozen=True)
class DagComparison:
    """Relative makespan of one DAG under one simulator version."""

    dag_label: str
    n: int
    rel_sim: float
    rel_exp: float

    @property
    def sign_flipped(self) -> bool:
        """True when simulation and experiment disagree on the winner.

        Exact ties (either side exactly zero) predict nothing and are
        not counted as wrong.
        """
        if self.rel_sim == 0.0 or self.rel_exp == 0.0:
            return False
        return (self.rel_sim > 0) != (self.rel_exp > 0)


@dataclass
class AlgorithmComparison:
    """Per-DAG comparisons of one simulator version, Figs 1/5/7 style."""

    simulator: str
    n: int
    baseline: str
    challenger: str
    dags: list[DagComparison] = field(default_factory=list)

    @property
    def num_dags(self) -> int:
        return len(self.dags)

    @property
    def num_wrong(self) -> int:
        return sum(1 for d in self.dags if d.sign_flipped)

    @property
    def wrong_fraction(self) -> float:
        if not self.dags:
            raise ValueError("comparison holds no DAGs")
        return self.num_wrong / self.num_dags

    def sorted_by_sim(self) -> list[DagComparison]:
        """DAGs by increasing simulated relative makespan (figure x-axis)."""
        return sorted(self.dags, key=lambda d: (d.rel_sim, d.dag_label))

    @property
    def challenger_experimental_wins(self) -> int:
        """DAGs where the challenger (HCPA) wins in the experiment."""
        return sum(1 for d in self.dags if d.rel_exp < 0)


def compare_algorithms(
    study: StudyResult,
    *,
    simulator: str,
    n: int,
    challenger: str = "hcpa",
    baseline: str = "mcpa",
) -> AlgorithmComparison:
    """Build the per-DAG relative-makespan comparison for one simulator."""
    if not study.select(simulator=simulator, n=n):
        raise ValueError(f"study holds no records for simulator={simulator} n={n}")
    comparison = AlgorithmComparison(
        simulator=simulator, n=n, baseline=baseline, challenger=challenger
    )
    for label in study.dag_labels(n=n):
        chal = study.record(label, challenger, simulator)
        base = study.record(label, baseline, simulator)
        rel_sim = (chal.sim_makespan - base.sim_makespan) / base.sim_makespan
        rel_exp = (chal.exp_makespan - base.exp_makespan) / base.exp_makespan
        comparison.dags.append(
            DagComparison(dag_label=label, n=n, rel_sim=rel_sim, rel_exp=rel_exp)
        )
    if not comparison.dags:
        raise ValueError(f"study holds no records for simulator={simulator} n={n}")
    return comparison


def simulation_errors(
    study: StudyResult,
    *,
    simulator: str,
    algorithm: str,
    n: int | None = None,
) -> BoxStats:
    """Box statistics of makespan simulation error [%] (Fig 8)."""
    records = study.select(simulator=simulator, algorithm=algorithm, n=n)
    if not records:
        raise ValueError(
            f"no records for simulator={simulator} algorithm={algorithm}"
        )
    return box_stats([rec.error_pct for rec in records])
