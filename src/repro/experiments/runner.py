"""Run the scheduling study: simulate and execute every configuration.

The paper's methodology (Section V-A), per DAG and scheduling algorithm:

1. the simulator computes the schedule (its cost models drive the
   allocation and mapping phases);
2. the simulator reports the *simulated* makespan of that schedule;
3. the same schedule is executed on the real cluster (here: the testbed
   emulator), yielding the *experimental* makespan.

Different simulator versions produce different schedules for the same
DAG, so each (DAG, algorithm, simulator) triple carries its own pair of
makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dag.generator import DagParameters
from repro.dag.graph import TaskGraph
from repro.obs.manifest import RunManifest
from repro.obs.recorder import get_recorder
from repro.profiling.calibration import SimulatorSuite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.scheduling.schedule import Schedule
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator
from repro.util.stats import relative_error

__all__ = ["RunRecord", "StudyResult", "run_study"]


@dataclass(frozen=True)
class RunRecord:
    """One (DAG, algorithm, simulator) outcome."""

    dag_label: str
    n: int
    algorithm: str
    simulator: str
    sim_makespan: float
    exp_makespan: float
    total_alloc: int

    @property
    def error(self) -> float:
        """Relative simulation error against the experiment."""
        return relative_error(self.sim_makespan, self.exp_makespan)

    @property
    def error_pct(self) -> float:
        return 100.0 * self.error


@dataclass
class StudyResult:
    """All records of one study sweep, with convenience accessors."""

    records: list[RunRecord] = field(default_factory=list)
    #: Provenance of the sweep that produced these records (seed,
    #: platform, suites, package version, metric rollups); attached by
    #: :func:`run_study`, None for hand-built results.
    manifest: RunManifest | None = None

    def __len__(self) -> int:
        return len(self.records)

    def select(
        self,
        *,
        simulator: str | None = None,
        algorithm: str | None = None,
        n: int | None = None,
    ) -> list[RunRecord]:
        out = []
        for rec in self.records:
            if simulator is not None and rec.simulator != simulator:
                continue
            if algorithm is not None and rec.algorithm != algorithm:
                continue
            if n is not None and rec.n != n:
                continue
            out.append(rec)
        return out

    def record(self, dag_label: str, algorithm: str, simulator: str) -> RunRecord:
        for rec in self.records:
            if (
                rec.dag_label == dag_label
                and rec.algorithm == algorithm
                and rec.simulator == simulator
            ):
                return rec
        raise KeyError((dag_label, algorithm, simulator))

    def dag_labels(self, *, n: int | None = None) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.records:
            if n is None or rec.n == n:
                seen.setdefault(rec.dag_label)
        return list(seen)


def run_study(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Iterable[SimulatorSuite],
    emulator: TGridEmulator,
    *,
    algorithms: Sequence[str] = ("hcpa", "mcpa"),
) -> StudyResult:
    """Run the full grid; returns every (DAG, algorithm, suite) record."""
    result = StudyResult()
    platform = emulator.platform
    obs = get_recorder()
    suites = list(suites)
    for suite in suites:
        for params, graph in dags:
            costs = SchedulingCosts(
                graph,
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
            for algorithm in algorithms:
                with obs.span(
                    "study.schedule", algorithm=algorithm, simulator=suite.name
                ):
                    schedule = schedule_dag(graph, costs, algorithm)
                simulator = ApplicationSimulator(
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
                with obs.span(
                    "study.simulate", algorithm=algorithm, simulator=suite.name
                ):
                    sim_trace = simulator.run(graph, schedule)
                with obs.span(
                    "study.execute", algorithm=algorithm, simulator=suite.name
                ):
                    exp_trace = emulator.execute(graph, schedule)
                record = RunRecord(
                    dag_label=graph.name,
                    n=params.n,
                    algorithm=algorithm,
                    simulator=suite.name,
                    sim_makespan=sim_trace.makespan,
                    exp_makespan=exp_trace.makespan,
                    total_alloc=sum(schedule.allocations().values()),
                )
                result.records.append(record)
                if obs.enabled:
                    obs.count("study.runs")
                    obs.event(
                        "study.record",
                        dag=record.dag_label,
                        n=record.n,
                        algorithm=record.algorithm,
                        simulator=record.simulator,
                        sim_makespan=record.sim_makespan,
                        exp_makespan=record.exp_makespan,
                        error_pct=record.error_pct,
                        total_alloc=record.total_alloc,
                    )
    result.manifest = RunManifest.collect(
        seed=emulator.seed,
        cluster=platform,
        simulators=[s.name for s in suites],
        algorithms=list(algorithms),
        num_records=len(result.records),
        recorder=obs if obs.enabled else None,
    )
    return result
