"""Run the scheduling study: simulate and execute every configuration.

The paper's methodology (Section V-A), per DAG and scheduling algorithm:

1. the simulator computes the schedule (its cost models drive the
   allocation and mapping phases);
2. the simulator reports the *simulated* makespan of that schedule;
3. the same schedule is executed on the real cluster (here: the testbed
   emulator), yielding the *experimental* makespan.

Different simulator versions produce different schedules for the same
DAG, so each (DAG, algorithm, simulator) triple carries its own pair of
makespans.

Parallel execution
------------------
``run_study(..., workers=N)`` fans the (suite x DAG x algorithm) grid
out over a process pool.  Every grid cell is independent by
construction: scheduling is deterministic in its inputs, and the
emulator derives each execution's RNG from ``(seed, dag, algorithm,
run_label)`` rather than from shared sequential state — so cell
results do not depend on execution order, and ``workers=N`` produces
record-for-record the same study as the serial loop.  Workers record
observability into their own in-memory recorder; the parent absorbs
the per-cell payloads in grid submission order, keeping the merged
event stream deterministic too.

Plan-then-execute pipeline
--------------------------
The parallel path runs in three stages, all bit-identical to the
serial loop:

1. **Planner** (:func:`_plan_cache_hits`): with a cache attached, every
   cell's schedule/simulation/testbed keys are hashed in one pass —
   shared fingerprints (emulator, platform+models, per-DAG content)
   are computed once, not per cell — and probed *side-effect-free*
   (:meth:`~repro.cache.result_cache.ResultCache.peek`).  Fully cached
   cells never reach the pool: the parent replays them inline through
   the exact per-cell path, so their counters and records are the ones
   the normal counted reads produce.  Shared ``GraphLayout`` /
   ``ResourceLayout`` lowerings happen once, parent-side, before the
   fork, so every worker inherits them copy-on-write.
2. **Chunked executor** (:func:`_pool_run_chunk`): cache-missing cells
   are dispatched to the pool as whole chunks (``chunk`` cells per
   future; default ~4 chunks per worker so the pool's shared queue
   rebalances stragglers work-stealing-style).  A worker runs its
   chunk's cells sequentially — reusing one simulator per suite, one
   ``SchedulingCosts`` per (suite, DAG) and the pooled arenas across
   the chunk — and ships one compact result+observability payload per
   chunk instead of one pickle per cell.
3. **Merge**: the parent walks the grid in submission order,
   interleaving inline cache hits with chunk payload slices.  Chunk
   counters/span-stats/profiles merge once per chunk (their sums are
   order-independent); event records and timeline slices are replayed
   at each cell's grid position, with worker-local run ids rebased per
   slice — so records, counters, timelines and profiles come out
   exactly as the serial loop emits them.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cache.keys import (
    costs_fingerprint,
    dag_fingerprint,
    emulator_fingerprint,
    schedule_fingerprint,
)
from repro.cache.result_cache import ResultCache
from repro.dag.generator import DagParameters
from repro.dag.graph import TaskGraph
from repro.obs.live import LiveTelemetry, WorkerEmitter
from repro.obs.manifest import RunManifest
from repro.obs.prof import Profiler
from repro.obs.recorder import Recorder, get_recorder, recording
from repro.obs.sinks import MemorySink
from repro.obs.timeline import Timeline
from repro.profiling.calibration import SimulatorSuite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.arena import graph_layout, resolve_sched
from repro.scheduling.driver import schedule_dag
from repro.scheduling.schedule import Schedule
from repro.simgrid.arena import layout_for, resolve_engine
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator
from repro.util.stats import relative_error

__all__ = [
    "CHUNK_ENV_VAR",
    "RunRecord",
    "StudyResult",
    "resolve_chunk",
    "run_study",
]

#: Environment variable naming the default cells-per-chunk of the
#: parallel study executor (see :func:`resolve_chunk`).
CHUNK_ENV_VAR = "REPRO_CHUNK"

#: Auto chunk sizing targets this many chunks per pool worker: small
#: enough that the pool's shared queue rebalances stragglers, large
#: enough that per-future dispatch overhead stays amortized.
_CHUNKS_PER_WORKER = 4


def resolve_chunk(chunk: int | None = None) -> int:
    """Resolve the chunk-size setting of the parallel study executor.

    An explicit ``chunk`` wins; ``None`` defers to the ``REPRO_CHUNK``
    environment variable; an unset variable means auto.  Returns 0 for
    auto — the executor then aims for :data:`_CHUNKS_PER_WORKER` chunks
    per pool worker — or the positive cells-per-chunk count
    (``1`` = per-cell dispatch, the pre-chunking behaviour).
    """
    if chunk is None:
        raw = os.environ.get(CHUNK_ENV_VAR, "").strip()
        if not raw:
            return 0
        try:
            chunk = int(raw)
        except ValueError:
            raise ValueError(
                f"{CHUNK_ENV_VAR} must be an integer (0 = auto), "
                f"got {raw!r}"
            ) from None
    if chunk < 0:
        raise ValueError(f"chunk size must be >= 0 (0 = auto), got {chunk}")
    return chunk


@dataclass(frozen=True)
class RunRecord:
    """One (DAG, algorithm, simulator) outcome."""

    dag_label: str
    n: int
    algorithm: str
    simulator: str
    sim_makespan: float
    exp_makespan: float
    total_alloc: int

    @property
    def error(self) -> float:
        """Relative simulation error against the experiment."""
        return relative_error(self.sim_makespan, self.exp_makespan)

    @property
    def error_pct(self) -> float:
        return 100.0 * self.error


@dataclass
class StudyResult:
    """All records of one study sweep, with convenience accessors."""

    records: list[RunRecord] = field(default_factory=list)
    #: Provenance of the sweep that produced these records (seed,
    #: platform, suites, package version, metric rollups); attached by
    #: :func:`run_study`, None for hand-built results.
    manifest: RunManifest | None = None

    def __len__(self) -> int:
        return len(self.records)

    def _held_values(self) -> str:
        """Compact description of the cells this study actually holds."""
        if not self.records:
            return "the study holds no records at all"
        dags = sorted({r.dag_label for r in self.records})
        dag_list = (
            ", ".join(dags) if len(dags) <= 8
            else ", ".join(dags[:8]) + f", ... ({len(dags)} total)"
        )
        return (
            f"the study holds {len(self.records)} records over "
            f"dags=[{dag_list}], "
            f"algorithms={sorted({r.algorithm for r in self.records})}, "
            f"simulators={sorted({r.simulator for r in self.records})}, "
            f"n={sorted({r.n for r in self.records})}"
        )

    def select(
        self,
        *,
        simulator: str | None = None,
        algorithm: str | None = None,
        n: int | None = None,
        strict: bool = False,
    ) -> list[RunRecord]:
        """Records matching every given filter.

        With ``strict=True`` an empty selection raises a
        :class:`KeyError` naming the filters and what the study does
        hold — so a filtered-out or skipped cell fails loudly at the
        selection site instead of as an opaque downstream error.
        """
        out = []
        for rec in self.records:
            if simulator is not None and rec.simulator != simulator:
                continue
            if algorithm is not None and rec.algorithm != algorithm:
                continue
            if n is not None and rec.n != n:
                continue
            out.append(rec)
        if strict and not out:
            raise KeyError(
                f"no study records match simulator={simulator!r} "
                f"algorithm={algorithm!r} n={n!r}; {self._held_values()}"
            )
        return out

    def record(self, dag_label: str, algorithm: str, simulator: str) -> RunRecord:
        """The single record of one (dag, algorithm, simulator) cell.

        Raises a :class:`KeyError` that names the missing cell and the
        values the study does hold when the cell was skipped, filtered,
        or never run.
        """
        for rec in self.records:
            if (
                rec.dag_label == dag_label
                and rec.algorithm == algorithm
                and rec.simulator == simulator
            ):
                return rec
        raise KeyError(
            f"no study record for cell (dag={dag_label!r}, "
            f"algorithm={algorithm!r}, simulator={simulator!r}); "
            f"{self._held_values()}"
        )

    def dag_labels(self, *, n: int | None = None) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.records:
            if n is None or rec.n == n:
                seen.setdefault(rec.dag_label)
        return list(seen)


def _run_cell(
    suite: SimulatorSuite,
    params: DagParameters,
    graph: TaskGraph,
    algorithm: str,
    emulator: TGridEmulator,
    costs: SchedulingCosts | None = None,
    cache: ResultCache | None = None,
    engine: str | None = None,
    simulator: ApplicationSimulator | None = None,
    sched: str | None = None,
) -> RunRecord:
    """One grid cell: schedule, simulate, execute, record.

    Shared by the serial loop (which reuses one ``costs`` per
    (suite, DAG) so the memoised task times carry across algorithms,
    and one ``simulator`` per suite so the array backend's arena and
    consumption memos carry across the whole sweep) and the pool
    workers (which build their own).

    ``engine`` selects the simulation backend for both the simulated
    and the emulated trace; results are bit-identical either way, so
    the engine never enters a cache key.

    With a ``cache``, all three phases are memoised: the schedule under
    the ``"schedule"`` layer and the simulated and emulated traces
    under the ``"simulation"`` layer.  Each phase is deterministic in
    exactly its key — the emulator derives its RNG from its own
    configuration plus (dag, algorithm, run label), never from shared
    sequential state — so cached replays are bit-identical to fresh
    computation, serial or pooled.
    """
    platform = emulator.platform
    obs = get_recorder()
    tl = obs.timeline if obs.enabled else None
    cell_ctx = (
        tl.context(variant=suite.name, n=params.n)
        if tl is not None
        else nullcontext()
    )
    with cell_ctx:
        return _run_cell_body(
            suite, params, graph, algorithm, emulator, obs,
            costs=costs, cache=cache, engine=engine, simulator=simulator,
            sched=sched,
        )


def _run_cell_body(
    suite: SimulatorSuite,
    params: DagParameters,
    graph: TaskGraph,
    algorithm: str,
    emulator: TGridEmulator,
    obs: Recorder,
    costs: SchedulingCosts | None = None,
    cache: ResultCache | None = None,
    engine: str | None = None,
    simulator: ApplicationSimulator | None = None,
    sched: str | None = None,
) -> RunRecord:
    platform = emulator.platform
    if costs is None:
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
    with obs.span(
        "study.schedule", algorithm=algorithm, simulator=suite.name
    ):
        schedule = schedule_dag(graph, costs, algorithm, cache=cache, sched=sched)
    if simulator is None:
        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=engine,
        )
    with obs.span(
        "study.simulate", algorithm=algorithm, simulator=suite.name
    ):
        sim_trace = simulator.run_cached(graph, schedule, cache)
    with obs.span(
        "study.execute", algorithm=algorithm, simulator=suite.name
    ):
        if cache is None:
            exp_trace = emulator.execute(graph, schedule, engine=engine)
        else:
            exp_key = {
                "executor": "testbed",
                "emulator": emulator_fingerprint(emulator),
                "dag": dag_fingerprint(graph),
                "schedule": schedule_fingerprint(schedule),
                "run_label": 0,
            }
            exp_trace = cache.get_or_compute(
                "simulation",
                exp_key,
                lambda: emulator.execute(graph, schedule, engine=engine),
            )
    record = RunRecord(
        dag_label=graph.name,
        n=params.n,
        algorithm=algorithm,
        simulator=suite.name,
        sim_makespan=sim_trace.makespan,
        exp_makespan=exp_trace.makespan,
        total_alloc=sum(schedule.allocations().values()),
    )
    if obs.enabled:
        obs.count("study.runs")
        obs.event(
            "study.record",
            dag=record.dag_label,
            n=record.n,
            algorithm=record.algorithm,
            simulator=record.simulator,
            sim_makespan=record.sim_makespan,
            exp_makespan=record.exp_makespan,
            error_pct=record.error_pct,
            total_alloc=record.total_alloc,
        )
    return record


#: Per-worker study inputs, installed once by the pool initializer so
#: each cell submission ships only three small indices.
_POOL_STATE: dict = {}


def _pool_init(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Sequence[SimulatorSuite],
    emulator: TGridEmulator,
    obs_enabled: bool,
    cache: ResultCache | None = None,
    engine: str | None = None,
    timeline_enabled: bool = False,
    profiler_enabled: bool = False,
    sched: str | None = None,
    live: tuple | None = None,
) -> None:
    _POOL_STATE["dags"] = dags
    _POOL_STATE["suites"] = suites
    _POOL_STATE["emulator"] = emulator
    _POOL_STATE["obs_enabled"] = obs_enabled
    _POOL_STATE["cache"] = cache
    _POOL_STATE["engine"] = engine
    _POOL_STATE["timeline_enabled"] = timeline_enabled
    _POOL_STATE["profiler_enabled"] = profiler_enabled
    _POOL_STATE["sched"] = sched
    # Per-suite simulator reuse within a worker: the array backend's
    # arena and consumption memos then amortize across every cell the
    # worker processes (simulators are reusable across runs).
    _POOL_STATE["simulators"] = {}
    # Per-(suite, DAG) SchedulingCosts reuse, mirroring the serial
    # loop: the memoised task-time estimates carry across a chunk's
    # algorithms instead of being rebuilt per cell.  (Cost evaluation
    # emits no observability, so the memo cannot change any counter.)
    _POOL_STATE["costs"] = {}
    # Live telemetry side-channel: ``live`` is (queue, heartbeat_s)
    # when the parent runs with a LiveTelemetry attached.  The emitter
    # is strictly observational — it feeds the progress display, never
    # the Recorder — so results and merged metrics are identical with
    # or without it.
    _POOL_STATE["live"] = (
        WorkerEmitter(live[0], heartbeat_s=live[1])
        if live is not None
        else None
    )


def _chunk_cell(cell: tuple[int, int, str], state: dict) -> RunRecord:
    """Run one grid cell inside a worker, through the shared memos."""
    suite_idx, dag_idx, algorithm = cell
    suite = state["suites"][suite_idx]
    params, graph = state["dags"][dag_idx]
    emulator = state["emulator"]
    engine = state.get("engine")
    simulator = state["simulators"].get(suite_idx)
    if simulator is None:
        simulator = ApplicationSimulator(
            emulator.platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=engine,
        )
        state["simulators"][suite_idx] = simulator
    costs = state["costs"].get((suite_idx, dag_idx))
    if costs is None:
        costs = SchedulingCosts(
            graph,
            emulator.platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        state["costs"][(suite_idx, dag_idx)] = costs
    return _run_cell(
        suite, params, graph, algorithm, emulator, costs=costs,
        cache=state.get("cache"), engine=engine, simulator=simulator,
        sched=state.get("sched"),
    )


def _cell_label(
    cell: tuple[int, int, str],
    suites: Sequence[SimulatorSuite],
    dags: Sequence[tuple[DagParameters, TaskGraph]],
) -> str:
    """Human-readable cell name for live telemetry: suite:dag/algorithm."""
    suite_idx, dag_idx, algorithm = cell
    return f"{suites[suite_idx].name}:{dags[dag_idx][1].name}/{algorithm}"


def _pool_run_chunk(
    cells: Sequence[tuple[int, int, str]],
    positions: Sequence[int] | None = None,
) -> tuple[list[RunRecord], dict | None]:
    """Run one chunk of grid cells in a worker.

    Returns ``(records, obs payload)`` — one compact payload for the
    whole chunk instead of one pickle per cell.  When the parent's
    recorder is enabled the worker records every cell into a single
    private in-memory recorder (never into any sink inherited across
    the fork, which the parent process owns) and annotates the payload
    with per-cell ``marks`` — ``(sink records, timeline records,
    timeline runs)`` high-water marks after each cell — so the parent
    can replay each cell's record and timeline slice at its exact grid
    position while folding the order-independent aggregates (counters,
    span stats, profile sums) in once per chunk.
    """
    state = _POOL_STATE
    records: list[RunRecord] = []
    emitter = state.get("live")
    if positions is None:
        positions = range(len(cells))

    def _traced_cell(k: int, cell: tuple[int, int, str]) -> RunRecord:
        if emitter is None:
            return _chunk_cell(cell, state)
        label = _cell_label(cell, state["suites"], state["dags"])
        emitter.cell_started(positions[k], label)
        record = _chunk_cell(cell, state)
        emitter.cell_finished(positions[k], label)
        return record

    if emitter is not None:
        emitter.chunk_claimed(len(cells))
    if not state["obs_enabled"]:
        for k, cell in enumerate(cells):
            records.append(_traced_cell(k, cell))
        return records, None
    # A worker timeline numbers its runs from 0; the parent's
    # Timeline.absorb rebases each slice's run ids by its running
    # offset minus the slice's run_base, so absorbing chunk slices in
    # grid submission order reproduces the serial numbering exactly.
    tl = Timeline() if state.get("timeline_enabled") else None
    # Worker profiles merge by absolute span path with summed counts,
    # so one chunk-wide profile absorbs to the same structure as the
    # serial run's per-cell increments.
    prof = Profiler() if state.get("profiler_enabled") else None
    worker_obs = Recorder(MemorySink(), timeline=tl, profiler=prof)
    marks: list[tuple[int, int, int]] = []
    with recording(worker_obs):
        for k, cell in enumerate(cells):
            records.append(_traced_cell(k, cell))
            marks.append(
                (
                    len(worker_obs.sink.records),
                    len(tl.records) if tl is not None else 0,
                    tl.run_count if tl is not None else 0,
                )
            )
    payload = worker_obs.export_state()
    payload["marks"] = marks
    return records, payload


def _plan_cache_hits(
    cells: Sequence[tuple[int, int, str]],
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Sequence[SimulatorSuite],
    emulator: TGridEmulator,
    cache: ResultCache | None,
) -> list[bool]:
    """One-pass batched cache probe: which cells are fully cached?

    Hashes every cell's schedule/simulation/testbed keys with shared
    fingerprints computed once — the emulator's, one costs/simulator
    model fingerprint per suite (they do not depend on the DAG), one
    DAG fingerprint per DAG — and probes the cache *side-effect-free*
    (:meth:`~repro.cache.result_cache.ResultCache.peek` /
    :meth:`~repro.cache.result_cache.ResultCache.contains`), so the
    probe leaves hit/miss counters, byte counters and the LRU exactly
    as if it never ran.  A True entry is advisory: the parent replays
    that cell inline through the normal counted path, which still
    detects (and counts) a stale or corrupt entry — a wrong hint only
    moves where the cell computes, never what it produces.
    """
    if cache is None:
        return [False] * len(cells)
    platform = emulator.platform
    emulator_fp = emulator_fingerprint(emulator)
    dag_fps: dict[int, dict] = {}
    suite_fps: dict[int, tuple[dict, dict]] = {}
    hits: list[bool] = []
    for suite_idx, dag_idx, algorithm in cells:
        fps = suite_fps.get(suite_idx)
        if fps is None:
            suite = suites[suite_idx]
            # Built exactly the way the cell path builds them, so the
            # fingerprints match byte for byte (model defaulting
            # included).
            costs_fp = costs_fingerprint(
                SchedulingCosts(
                    dags[dag_idx][1],
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
            )
            sim_fp = ApplicationSimulator(
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            ).model_fingerprint()
            fps = suite_fps[suite_idx] = (costs_fp, sim_fp)
        costs_fp, sim_fp = fps
        dag_fp = dag_fps.get(dag_idx)
        if dag_fp is None:
            dag_fp = dag_fps[dag_idx] = dag_fingerprint(dags[dag_idx][1])
        found, schedule = cache.peek(
            "schedule",
            {"algorithm": algorithm, "dag": dag_fp, "costs": costs_fp},
        )
        if not found:
            hits.append(False)
            continue
        sched_fp = schedule_fingerprint(schedule)
        sim_key = {
            "executor": "simulator",
            "simulator": sim_fp,
            "dag": dag_fp,
            "schedule": sched_fp,
        }
        exp_key = {
            "executor": "testbed",
            "emulator": emulator_fp,
            "dag": dag_fp,
            "schedule": sched_fp,
            "run_label": 0,
        }
        hits.append(
            cache.contains("simulation", sim_key)
            and cache.contains("simulation", exp_key)
        )
    return hits


def _absorb_chunk_slice(obs: Recorder, payload: dict, k: int) -> None:
    """Replay cell ``k`` of a chunk payload at the current grid position.

    The cell's sink records land in payload order; its timeline slice
    is rebased from the worker-local run numbering to the parent's via
    ``run_base`` (see :meth:`Timeline.absorb`).  Aggregates — counters,
    span stats, the profile — are NOT touched here: they merge once per
    chunk, which yields the same sums.
    """
    marks = payload["marks"]
    rec_lo, tl_lo, run_lo = marks[k - 1] if k else (0, 0, 0)
    rec_hi, tl_hi, run_hi = marks[k]
    sink = obs.sink
    for record in payload["records"][rec_lo:rec_hi]:
        sink.write(record)
    tl_state = payload.get("timeline")
    if tl_state is not None and obs.timeline is not None:
        obs.timeline.absorb(
            {
                "records": tl_state["records"][tl_lo:tl_hi],
                "runs": run_hi - run_lo,
                "run_base": run_lo,
                "engines": tl_state.get("engines", ()),
            }
        )


def _run_grid_chunked(
    result: StudyResult,
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Sequence[SimulatorSuite],
    emulator: TGridEmulator,
    algorithms: Sequence[str],
    workers: int,
    cache: ResultCache | None,
    engine: str,
    sched: str,
    chunk: int | None,
    obs: Recorder,
    telemetry: LiveTelemetry | None = None,
) -> float:
    """Plan, dispatch and merge the parallel grid; returns the seconds
    the parent spent blocked on pool futures (the dispatch wait).

    See the module docstring for the three stages.  The merge walks
    cell positions in grid submission order — interleaving inline
    cache-hit replays with worker chunk slices — so records, events,
    timeline lines and run numbering come out exactly as the serial
    loop emits them, regardless of chunking or completion order.
    """
    platform = emulator.platform
    cells = [
        (suite_idx, dag_idx, algorithm)
        for suite_idx in range(len(suites))
        for dag_idx in range(len(dags))
        for algorithm in algorithms
    ]
    if not cells:
        return 0.0
    hits = _plan_cache_hits(cells, dags, suites, emulator, cache)
    misses = [pos for pos, hit in enumerate(hits) if not hit]
    pool_workers = max(1, min(workers, len(misses)))
    chunk_size = resolve_chunk(chunk)
    if chunk_size == 0:
        chunk_size = max(
            1, math.ceil(len(misses) / (pool_workers * _CHUNKS_PER_WORKER))
        )
    chunks = [
        misses[i : i + chunk_size]
        for i in range(0, len(misses), chunk_size)
    ]
    if telemetry is not None:
        telemetry.begin_study(
            len(cells), pool_workers if chunks else 0
        )

    # Parent-side memos for inline cache-hit replays, mirroring the
    # serial loop's reuse: one simulator per suite, one SchedulingCosts
    # per (suite, DAG).
    par_sims: dict[int, ApplicationSimulator] = {}
    par_costs: dict[tuple[int, int], SchedulingCosts] = {}

    def _parent_cell(pos: int) -> RunRecord:
        suite_idx, dag_idx, algorithm = cells[pos]
        suite = suites[suite_idx]
        params, graph = dags[dag_idx]
        simulator = par_sims.get(suite_idx)
        if simulator is None:
            simulator = par_sims[suite_idx] = ApplicationSimulator(
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
                engine=engine,
            )
        costs = par_costs.get((suite_idx, dag_idx))
        if costs is None:
            costs = par_costs[(suite_idx, dag_idx)] = SchedulingCosts(
                graph,
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
            )
        return _run_cell(
            suite, params, graph, algorithm, emulator, costs=costs,
            cache=cache, engine=engine, simulator=simulator, sched=sched,
        )

    if not chunks:
        # Every cell is cached: the warm study never touches the pool.
        for pos in range(len(cells)):
            result.records.append(_parent_cell(pos))
            if telemetry is not None:
                telemetry.cache_hit(
                    pos, _cell_label(cells[pos], suites, dags)
                )
        return 0.0

    # Lower the shared layouts once, parent-side, before the fork:
    # every worker then inherits the memoised GraphLayout (array
    # scheduler) and ResourceLayout (array engine) copy-on-write
    # instead of re-lowering them per process.  (Lowering emits no
    # observability, so this moves work without moving any counter.)
    if sched == "array":
        for _params, graph in dags:
            graph_layout(graph)
    if engine == "array":
        layout_for(platform)

    # Fork shares the already-built DAGs/suites/emulator with the
    # workers for free; other start methods pickle them once via the
    # initializer args.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    where: dict[int, tuple[int, int]] = {}
    for ci, chunk_positions in enumerate(chunks):
        for k, pos in enumerate(chunk_positions):
            where[pos] = (ci, k)
    dispatch_wait = 0.0
    # The live side-channel queue must come from the pool's own
    # multiprocessing context so it rides through the initializer args
    # (queues are inherited, not pickled).
    live = (
        (telemetry.connect(ctx), telemetry.heartbeat_s)
        if telemetry is not None
        else None
    )
    with ProcessPoolExecutor(
        max_workers=pool_workers,
        mp_context=ctx,
        initializer=_pool_init,
        initargs=(
            dags, suites, emulator, obs.enabled, cache, engine,
            obs.timeline is not None, obs.profiler is not None,
            sched, live,
        ),
    ) as pool:
        # All chunks are submitted up front into the pool's shared
        # queue; idle workers pull the next chunk as they finish, so
        # uneven chunks rebalance work-stealing-style.  The merge below
        # still consumes results strictly in grid submission order.
        futures = [
            pool.submit(
                _pool_run_chunk,
                [cells[pos] for pos in positions],
                positions,
            )
            for positions in chunks
        ]
        ready: dict[int, tuple[list[RunRecord], dict | None]] = {}
        for pos in range(len(cells)):
            if hits[pos]:
                result.records.append(_parent_cell(pos))
                if telemetry is not None:
                    telemetry.cache_hit(
                        pos, _cell_label(cells[pos], suites, dags)
                    )
                continue
            ci, k = where[pos]
            fetched = ready.get(ci)
            if fetched is None:
                t0 = time.perf_counter()
                fetched = ready[ci] = futures[ci].result()
                dispatch_wait += time.perf_counter() - t0
                payload = fetched[1]
                if payload is not None:
                    # Chunk-wide aggregates merge once at first
                    # contact: counter/span/profile merges are plain
                    # sums, so per-chunk folding equals the serial
                    # per-cell accumulation exactly.
                    obs.absorb(
                        {
                            "records": (),
                            "counters": payload["counters"],
                            "spans": payload["spans"],
                            "profile": payload.get("profile"),
                        }
                    )
            records, payload = fetched
            result.records.append(records[k])
            if payload is not None:
                _absorb_chunk_slice(obs, payload, k)
            if k + 1 == len(chunks[ci]):
                del ready[ci]
    return dispatch_wait


def run_study(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Iterable[SimulatorSuite],
    emulator: TGridEmulator,
    *,
    algorithms: Sequence[str] = ("hcpa", "mcpa"),
    workers: int = 1,
    cache: ResultCache | None = None,
    engine: str | None = None,
    sched: str | None = None,
    chunk: int | None = None,
    telemetry: LiveTelemetry | None = None,
) -> StudyResult:
    """Run the full grid; returns every (DAG, algorithm, suite) record.

    ``workers`` > 1 distributes the grid over a process pool through
    the plan-then-execute pipeline (see the module docstring); the
    default keeps the serial in-process loop.  The records — and, with
    an enabled recorder, the merged metrics — are identical either
    way.  Requested workers beyond ``os.cpu_count()`` are clamped to
    the core count (oversubscribing a process pool only multiplies
    fork and pickle overhead); the clamp is recorded as a
    ``runner.workers_clamped`` counter, never applied silently.

    ``cache`` enables content-addressed memoization of every cell's
    schedule, simulated trace and emulated trace: a warm re-run skips
    any cell whose inputs are unchanged and returns bit-identical
    records.  The cache is shared safely with pool workers (atomic
    file-per-entry writes); per-layer hit/miss counters land in the
    recorder either way.  In the parallel path, fully cached cells are
    detected up front by a batched side-effect-free probe and replayed
    inline in the parent — they never reach the pool.

    ``engine`` selects the simulation backend (``"object"`` or
    ``"array"``; default resolves via ``REPRO_ENGINE``).  Backends are
    bit-identical, so records, traces and cache entries do not depend
    on the choice — only wall-clock time does.

    ``sched`` selects the allocation backend of the CPA-family
    schedulers the same way (``"object"`` or ``"array"``; default
    resolves via ``REPRO_SCHED``).  Backends are bit-identical, so it
    never enters cache keys either.

    ``chunk`` sets the cells-per-chunk of the parallel executor
    (``None``: honor ``REPRO_CHUNK``; 0 or unset: auto — about
    :data:`_CHUNKS_PER_WORKER` chunks per pool worker; 1: per-cell
    dispatch).  Chunking changes dispatch granularity only — results,
    counters, timelines and profiles are identical for every setting.

    ``telemetry`` attaches a :class:`~repro.obs.live.LiveTelemetry` bus
    for streaming progress (cell start/finish, cache hits, chunk
    claims, worker heartbeats — the ``--progress`` display and
    ``repro serve-metrics``).  The channel is strictly observational:
    records, counters, timeline lines and profiles are bit-identical
    with or without it (asserted by the ``obs_live_overhead`` bench
    pair), and live-only counters such as ``runner.stragglers`` stay
    in the telemetry state, never the Recorder.

    Whatever the path, the recorder's span aggregates gain two
    wall-clock timings per study: ``study.grid`` (end-to-end grid wall
    time, the denominator of cells/sec) and ``study.dispatch`` (time
    the parent spent blocked on pool futures; 0 in the serial loop) —
    see ``repro report``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    engine = resolve_engine(engine)
    sched = resolve_sched(sched)
    result = StudyResult()
    platform = emulator.platform
    obs = get_recorder()
    suites = list(suites)
    dags = list(dags)
    requested = workers
    cpus = os.cpu_count() or 1
    if workers > cpus:
        # Clamp the pool to the cores that exist; the parallel code
        # path (and its chunking) is still exercised — only the pool
        # size shrinks.
        workers = cpus
        if obs.enabled:
            obs.count("runner.workers_clamped")
    grid_t0 = time.perf_counter()
    dispatch_wait = 0.0
    if requested > 1:
        dispatch_wait = _run_grid_chunked(
            result, dags, suites, emulator, algorithms, workers,
            cache, engine, sched, chunk, obs, telemetry,
        )
    else:
        if telemetry is not None and suites and dags and algorithms:
            telemetry.begin_study(
                len(suites) * len(dags) * len(algorithms), 0
            )
        pos = 0
        for suite in suites:
            simulator = ApplicationSimulator(
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
                engine=engine,
            )
            for params, graph in dags:
                costs = SchedulingCosts(
                    graph,
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
                for algorithm in algorithms:
                    if telemetry is not None:
                        label = f"{suite.name}:{graph.name}/{algorithm}"
                        telemetry.cell_started(pos, label)
                        cell_t0 = time.monotonic()
                    result.records.append(
                        _run_cell(
                            suite, params, graph, algorithm, emulator,
                            costs=costs, cache=cache, engine=engine,
                            simulator=simulator, sched=sched,
                        )
                    )
                    if telemetry is not None:
                        telemetry.cell_finished(
                            pos, label, time.monotonic() - cell_t0
                        )
                    pos += 1
    if obs.enabled:
        # Same two aggregates in both modes (the serial loop's
        # dispatch wait is genuinely zero), so metrics keep identical
        # span-name sets and counts across serial/parallel/chunked.
        obs.timing("study.grid", time.perf_counter() - grid_t0)
        obs.timing("study.dispatch", dispatch_wait)
    result.manifest = RunManifest.collect(
        seed=emulator.seed,
        cluster=platform,
        simulators=[s.name for s in suites],
        algorithms=list(algorithms),
        num_records=len(result.records),
        recorder=obs if obs.enabled else None,
    )
    return result
