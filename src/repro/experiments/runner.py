"""Run the scheduling study: simulate and execute every configuration.

The paper's methodology (Section V-A), per DAG and scheduling algorithm:

1. the simulator computes the schedule (its cost models drive the
   allocation and mapping phases);
2. the simulator reports the *simulated* makespan of that schedule;
3. the same schedule is executed on the real cluster (here: the testbed
   emulator), yielding the *experimental* makespan.

Different simulator versions produce different schedules for the same
DAG, so each (DAG, algorithm, simulator) triple carries its own pair of
makespans.

Parallel execution
------------------
``run_study(..., workers=N)`` fans the (suite x DAG x algorithm) grid
out over a process pool.  Every grid cell is independent by
construction: scheduling is deterministic in its inputs, and the
emulator derives each execution's RNG from ``(seed, dag, algorithm,
run_label)`` rather than from shared sequential state — so cell
results do not depend on execution order, and ``workers=N`` produces
record-for-record the same study as the serial loop.  Workers record
observability into their own in-memory recorder; the parent absorbs
the per-cell payloads in grid submission order, keeping the merged
event stream deterministic too.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cache.keys import (
    dag_fingerprint,
    emulator_fingerprint,
    schedule_fingerprint,
)
from repro.cache.result_cache import ResultCache
from repro.dag.generator import DagParameters
from repro.dag.graph import TaskGraph
from repro.obs.manifest import RunManifest
from repro.obs.prof import Profiler
from repro.obs.recorder import Recorder, get_recorder, recording
from repro.obs.sinks import MemorySink
from repro.obs.timeline import Timeline
from repro.profiling.calibration import SimulatorSuite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.arena import resolve_sched
from repro.scheduling.driver import schedule_dag
from repro.scheduling.schedule import Schedule
from repro.simgrid.arena import resolve_engine
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator
from repro.util.stats import relative_error

__all__ = ["RunRecord", "StudyResult", "run_study"]


@dataclass(frozen=True)
class RunRecord:
    """One (DAG, algorithm, simulator) outcome."""

    dag_label: str
    n: int
    algorithm: str
    simulator: str
    sim_makespan: float
    exp_makespan: float
    total_alloc: int

    @property
    def error(self) -> float:
        """Relative simulation error against the experiment."""
        return relative_error(self.sim_makespan, self.exp_makespan)

    @property
    def error_pct(self) -> float:
        return 100.0 * self.error


@dataclass
class StudyResult:
    """All records of one study sweep, with convenience accessors."""

    records: list[RunRecord] = field(default_factory=list)
    #: Provenance of the sweep that produced these records (seed,
    #: platform, suites, package version, metric rollups); attached by
    #: :func:`run_study`, None for hand-built results.
    manifest: RunManifest | None = None

    def __len__(self) -> int:
        return len(self.records)

    def _held_values(self) -> str:
        """Compact description of the cells this study actually holds."""
        if not self.records:
            return "the study holds no records at all"
        dags = sorted({r.dag_label for r in self.records})
        dag_list = (
            ", ".join(dags) if len(dags) <= 8
            else ", ".join(dags[:8]) + f", ... ({len(dags)} total)"
        )
        return (
            f"the study holds {len(self.records)} records over "
            f"dags=[{dag_list}], "
            f"algorithms={sorted({r.algorithm for r in self.records})}, "
            f"simulators={sorted({r.simulator for r in self.records})}, "
            f"n={sorted({r.n for r in self.records})}"
        )

    def select(
        self,
        *,
        simulator: str | None = None,
        algorithm: str | None = None,
        n: int | None = None,
        strict: bool = False,
    ) -> list[RunRecord]:
        """Records matching every given filter.

        With ``strict=True`` an empty selection raises a
        :class:`KeyError` naming the filters and what the study does
        hold — so a filtered-out or skipped cell fails loudly at the
        selection site instead of as an opaque downstream error.
        """
        out = []
        for rec in self.records:
            if simulator is not None and rec.simulator != simulator:
                continue
            if algorithm is not None and rec.algorithm != algorithm:
                continue
            if n is not None and rec.n != n:
                continue
            out.append(rec)
        if strict and not out:
            raise KeyError(
                f"no study records match simulator={simulator!r} "
                f"algorithm={algorithm!r} n={n!r}; {self._held_values()}"
            )
        return out

    def record(self, dag_label: str, algorithm: str, simulator: str) -> RunRecord:
        """The single record of one (dag, algorithm, simulator) cell.

        Raises a :class:`KeyError` that names the missing cell and the
        values the study does hold when the cell was skipped, filtered,
        or never run.
        """
        for rec in self.records:
            if (
                rec.dag_label == dag_label
                and rec.algorithm == algorithm
                and rec.simulator == simulator
            ):
                return rec
        raise KeyError(
            f"no study record for cell (dag={dag_label!r}, "
            f"algorithm={algorithm!r}, simulator={simulator!r}); "
            f"{self._held_values()}"
        )

    def dag_labels(self, *, n: int | None = None) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.records:
            if n is None or rec.n == n:
                seen.setdefault(rec.dag_label)
        return list(seen)


def _run_cell(
    suite: SimulatorSuite,
    params: DagParameters,
    graph: TaskGraph,
    algorithm: str,
    emulator: TGridEmulator,
    costs: SchedulingCosts | None = None,
    cache: ResultCache | None = None,
    engine: str | None = None,
    simulator: ApplicationSimulator | None = None,
    sched: str | None = None,
) -> RunRecord:
    """One grid cell: schedule, simulate, execute, record.

    Shared by the serial loop (which reuses one ``costs`` per
    (suite, DAG) so the memoised task times carry across algorithms,
    and one ``simulator`` per suite so the array backend's arena and
    consumption memos carry across the whole sweep) and the pool
    workers (which build their own).

    ``engine`` selects the simulation backend for both the simulated
    and the emulated trace; results are bit-identical either way, so
    the engine never enters a cache key.

    With a ``cache``, all three phases are memoised: the schedule under
    the ``"schedule"`` layer and the simulated and emulated traces
    under the ``"simulation"`` layer.  Each phase is deterministic in
    exactly its key — the emulator derives its RNG from its own
    configuration plus (dag, algorithm, run label), never from shared
    sequential state — so cached replays are bit-identical to fresh
    computation, serial or pooled.
    """
    platform = emulator.platform
    obs = get_recorder()
    tl = obs.timeline if obs.enabled else None
    cell_ctx = (
        tl.context(variant=suite.name, n=params.n)
        if tl is not None
        else nullcontext()
    )
    with cell_ctx:
        return _run_cell_body(
            suite, params, graph, algorithm, emulator, obs,
            costs=costs, cache=cache, engine=engine, simulator=simulator,
            sched=sched,
        )


def _run_cell_body(
    suite: SimulatorSuite,
    params: DagParameters,
    graph: TaskGraph,
    algorithm: str,
    emulator: TGridEmulator,
    obs: Recorder,
    costs: SchedulingCosts | None = None,
    cache: ResultCache | None = None,
    engine: str | None = None,
    simulator: ApplicationSimulator | None = None,
    sched: str | None = None,
) -> RunRecord:
    platform = emulator.platform
    if costs is None:
        costs = SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
    with obs.span(
        "study.schedule", algorithm=algorithm, simulator=suite.name
    ):
        schedule = schedule_dag(graph, costs, algorithm, cache=cache, sched=sched)
    if simulator is None:
        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=engine,
        )
    with obs.span(
        "study.simulate", algorithm=algorithm, simulator=suite.name
    ):
        sim_trace = simulator.run_cached(graph, schedule, cache)
    with obs.span(
        "study.execute", algorithm=algorithm, simulator=suite.name
    ):
        if cache is None:
            exp_trace = emulator.execute(graph, schedule, engine=engine)
        else:
            exp_key = {
                "executor": "testbed",
                "emulator": emulator_fingerprint(emulator),
                "dag": dag_fingerprint(graph),
                "schedule": schedule_fingerprint(schedule),
                "run_label": 0,
            }
            exp_trace = cache.get_or_compute(
                "simulation",
                exp_key,
                lambda: emulator.execute(graph, schedule, engine=engine),
            )
    record = RunRecord(
        dag_label=graph.name,
        n=params.n,
        algorithm=algorithm,
        simulator=suite.name,
        sim_makespan=sim_trace.makespan,
        exp_makespan=exp_trace.makespan,
        total_alloc=sum(schedule.allocations().values()),
    )
    if obs.enabled:
        obs.count("study.runs")
        obs.event(
            "study.record",
            dag=record.dag_label,
            n=record.n,
            algorithm=record.algorithm,
            simulator=record.simulator,
            sim_makespan=record.sim_makespan,
            exp_makespan=record.exp_makespan,
            error_pct=record.error_pct,
            total_alloc=record.total_alloc,
        )
    return record


#: Per-worker study inputs, installed once by the pool initializer so
#: each cell submission ships only three small indices.
_POOL_STATE: dict = {}


def _pool_init(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Sequence[SimulatorSuite],
    emulator: TGridEmulator,
    obs_enabled: bool,
    cache: ResultCache | None = None,
    engine: str | None = None,
    timeline_enabled: bool = False,
    profiler_enabled: bool = False,
    sched: str | None = None,
) -> None:
    _POOL_STATE["dags"] = dags
    _POOL_STATE["suites"] = suites
    _POOL_STATE["emulator"] = emulator
    _POOL_STATE["obs_enabled"] = obs_enabled
    _POOL_STATE["cache"] = cache
    _POOL_STATE["engine"] = engine
    _POOL_STATE["timeline_enabled"] = timeline_enabled
    _POOL_STATE["profiler_enabled"] = profiler_enabled
    _POOL_STATE["sched"] = sched
    # Per-suite simulator reuse within a worker: the array backend's
    # arena and consumption memos then amortize across every cell the
    # worker processes (simulators are reusable across runs).
    _POOL_STATE["simulators"] = {}


def _pool_run_cell(
    cell: tuple[int, int, str]
) -> tuple[RunRecord, dict | None]:
    """Run one grid cell in a worker; returns (record, obs payload).

    When the parent's recorder is enabled the worker records into a
    private in-memory recorder and ships its exported state back —
    never into any sink inherited across the fork, which the parent
    process owns.
    """
    suite_idx, dag_idx, algorithm = cell
    state = _POOL_STATE
    suite = state["suites"][suite_idx]
    params, graph = state["dags"][dag_idx]
    emulator = state["emulator"]
    cache = state.get("cache")
    engine = state.get("engine")
    sched = state.get("sched")
    simulator = state["simulators"].get(suite_idx)
    if simulator is None:
        simulator = ApplicationSimulator(
            emulator.platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=engine,
        )
        state["simulators"][suite_idx] = simulator
    if state["obs_enabled"]:
        # A worker timeline numbers its runs from 0; the parent's
        # Timeline.absorb renumbers by its running offset, so absorbing
        # per-cell payloads in grid submission order reproduces the
        # serial run numbering exactly.
        tl = Timeline() if state.get("timeline_enabled") else None
        # Worker profiles merge like worker timelines: private per cell,
        # absorbed in submission order, so the merged span tree's
        # structure matches the serial run's exactly.
        prof = Profiler() if state.get("profiler_enabled") else None
        worker_obs = Recorder(MemorySink(), timeline=tl, profiler=prof)
        with recording(worker_obs):
            record = _run_cell(
                suite, params, graph, algorithm, emulator, cache=cache,
                engine=engine, simulator=simulator, sched=sched,
            )
        return record, worker_obs.export_state()
    record = _run_cell(
        suite, params, graph, algorithm, emulator, cache=cache,
        engine=engine, simulator=simulator, sched=sched,
    )
    return record, None


def run_study(
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    suites: Iterable[SimulatorSuite],
    emulator: TGridEmulator,
    *,
    algorithms: Sequence[str] = ("hcpa", "mcpa"),
    workers: int = 1,
    cache: ResultCache | None = None,
    engine: str | None = None,
    sched: str | None = None,
) -> StudyResult:
    """Run the full grid; returns every (DAG, algorithm, suite) record.

    ``workers`` > 1 distributes the grid over a process pool (see the
    module docstring); the default keeps the serial in-process loop.
    The records — and, with an enabled recorder, the merged metrics —
    are identical either way.

    ``cache`` enables content-addressed memoization of every cell's
    schedule, simulated trace and emulated trace: a warm re-run skips
    any cell whose inputs are unchanged and returns bit-identical
    records.  The cache is shared safely with pool workers (atomic
    file-per-entry writes); per-layer hit/miss counters land in the
    recorder either way.

    ``engine`` selects the simulation backend (``"object"`` or
    ``"array"``; default resolves via ``REPRO_ENGINE``).  Backends are
    bit-identical, so records, traces and cache entries do not depend
    on the choice — only wall-clock time does.

    ``sched`` selects the allocation backend of the CPA-family
    schedulers the same way (``"object"`` or ``"array"``; default
    resolves via ``REPRO_SCHED``).  Backends are bit-identical, so it
    never enters cache keys either.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    engine = resolve_engine(engine)
    sched = resolve_sched(sched)
    result = StudyResult()
    platform = emulator.platform
    obs = get_recorder()
    suites = list(suites)
    dags = list(dags)
    if workers > 1:
        cells = [
            (suite_idx, dag_idx, algorithm)
            for suite_idx in range(len(suites))
            for dag_idx in range(len(dags))
            for algorithm in algorithms
        ]
        # Fork shares the already-built DAGs/suites/emulator with the
        # workers for free; other start methods pickle them once via
        # the initializer args.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cells)) or 1,
            mp_context=ctx,
            initializer=_pool_init,
            initargs=(
                dags, suites, emulator, obs.enabled, cache, engine,
                obs.timeline is not None, obs.profiler is not None,
                sched,
            ),
        ) as pool:
            # ``map`` yields in submission order regardless of
            # completion order: records and absorbed observability
            # payloads land deterministically.
            for record, payload in pool.map(_pool_run_cell, cells):
                result.records.append(record)
                if payload is not None:
                    obs.absorb(payload)
    else:
        for suite in suites:
            simulator = ApplicationSimulator(
                platform,
                suite.task_model,
                startup_model=suite.startup_model,
                redistribution_model=suite.redistribution_model,
                engine=engine,
            )
            for params, graph in dags:
                costs = SchedulingCosts(
                    graph,
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
                for algorithm in algorithms:
                    result.records.append(
                        _run_cell(
                            suite, params, graph, algorithm, emulator,
                            costs=costs, cache=cache, engine=engine,
                            simulator=simulator, sched=sched,
                        )
                    )
    result.manifest = RunManifest.collect(
        seed=emulator.seed,
        cluster=platform,
        simulators=[s.name for s in suites],
        algorithms=list(algorithms),
        num_records=len(result.records),
        recorder=obs if obs.enabled else None,
    )
    return result
