"""Attributing the simulation-vs-experiment gap to root causes.

Section V-C of the paper identifies three culprits for the analytical
simulator's errors by *inspecting schedules manually*: (a) task
execution times far from the analytical model, (b) task startup
overhead, (c) data redistribution overhead.  This module performs that
analysis computationally, by **counterfactual build-up**: starting from
the base simulator, the true (measured) models are swapped in one at a
time and the schedule re-simulated after each swap —

    base simulation
      -> + measured kernel times          (culprit a)
      -> + measured startup overheads     (culprit b)
      -> + measured redistribution overheads and the
           achievable (derated) network   (culprit c)
      -> residual vs the experiment       (noise & unmodelled effects)

Each step's makespan delta is that culprit's contribution under this
ordering (a single permutation of a Shapley decomposition — adequate
here because the components interact weakly on the critical path, and
exact enough for the ranking the paper cares about).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.graph import TaskGraph
from repro.platform.cluster import ClusterPlatform
from repro.profiling.calibration import SimulatorSuite
from repro.scheduling.schedule import Schedule
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator

__all__ = ["GapAttribution", "attribute_gap"]


@dataclass
class GapAttribution:
    """Build-up decomposition of one schedule's simulation gap."""

    dag_label: str
    base_makespan: float
    exp_makespan: float
    contributions: dict[str, float] = field(default_factory=dict)

    @property
    def explained(self) -> float:
        """Gap seconds accounted for by the modelled culprits."""
        return sum(self.contributions.values())

    @property
    def residual(self) -> float:
        """Gap seconds left unexplained (noise, unmodelled effects)."""
        return (self.exp_makespan - self.base_makespan) - self.explained

    @property
    def dominant_culprit(self) -> str:
        return max(self.contributions, key=lambda k: abs(self.contributions[k]))

    def fractions(self) -> dict[str, float]:
        """Each culprit's share of the total gap (can exceed [0,1] when
        components pull in opposite directions)."""
        gap = self.exp_makespan - self.base_makespan
        if abs(gap) < 1e-12:
            return {k: 0.0 for k in self.contributions}
        return {k: v / gap for k, v in self.contributions.items()}


def attribute_gap(
    graph: TaskGraph,
    schedule: Schedule,
    base_suite: SimulatorSuite,
    truth_suite: SimulatorSuite,
    emulator: TGridEmulator,
) -> GapAttribution:
    """Decompose the gap between a base simulation and the experiment.

    Parameters
    ----------
    base_suite:
        The simulator under scrutiny (typically the analytical one).
    truth_suite:
        A measured proxy of the environment (typically the brute-force
        profile suite — the best model of reality short of running it).
    emulator:
        The testbed; provides the experimental makespan and the
        achievable (derated) network.
    """
    platform = emulator.platform

    def simulate(task_m, startup_m, redist_m, plat: ClusterPlatform) -> float:
        sim = ApplicationSimulator(
            plat, task_m, startup_model=startup_m, redistribution_model=redist_m
        )
        return sim.run(graph, schedule).makespan

    base = simulate(
        base_suite.task_model,
        base_suite.startup_model,
        base_suite.redistribution_model,
        platform,
    )
    with_kernels = simulate(
        truth_suite.task_model,
        base_suite.startup_model,
        base_suite.redistribution_model,
        platform,
    )
    with_startup = simulate(
        truth_suite.task_model,
        truth_suite.startup_model,
        base_suite.redistribution_model,
        platform,
    )
    with_redistribution = simulate(
        truth_suite.task_model,
        truth_suite.startup_model,
        truth_suite.redistribution_model,
        emulator.effective_platform,
    )
    exp = emulator.makespan(graph, schedule)

    return GapAttribution(
        dag_label=graph.name,
        base_makespan=base,
        exp_makespan=exp,
        contributions={
            "kernel time": with_kernels - base,
            "startup overhead": with_startup - with_kernels,
            "redistribution": with_redistribution - with_startup,
        },
    )
