"""Sensitivity of the paper's findings to environment parameters.

The paper attributes the analytical simulator's failure to environment
specifics it does not model.  If that causal story is right, *dialling
those specifics up and down* should move the failure rate: an
environment with no startup/redistribution overhead and honest kernels
should be predictable analytically; one with heavier overheads should
be even less predictable.  The testbed emulator makes this experiment
possible — it is exactly the kind of counterfactual a physical cluster
cannot offer.

:func:`overhead_sensitivity` sweeps a scale factor applied to the
testbed's startup and redistribution overheads and reports, per point,
the analytical simulator's sign-flip count and mean makespan error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dag.generator import DagParameters
from repro.dag.graph import TaskGraph
from repro.experiments.comparison import compare_algorithms
from repro.experiments.runner import run_study
from repro.platform.cluster import ClusterPlatform
from repro.profiling.calibration import SimulatorSuite, build_analytical_suite
from repro.testbed.tgrid import TGridEmulator

__all__ = ["SensitivityPoint", "SensitivitySweep", "overhead_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of the study at one overhead scale."""

    scale: float
    num_wrong: int
    num_dags: int
    mean_error_pct: float

    @property
    def wrong_fraction(self) -> float:
        return self.num_wrong / self.num_dags


@dataclass
class SensitivitySweep:
    """All points of one sensitivity sweep."""

    parameter: str
    points: list[SensitivityPoint] = field(default_factory=list)

    def errors_increase_with_scale(self) -> bool:
        """True when the mean simulation error grows monotonically."""
        errs = [p.mean_error_pct for p in sorted(self.points, key=lambda x: x.scale)]
        return all(b >= a - 1e-9 for a, b in zip(errs, errs[1:]))

    def point(self, scale: float) -> SensitivityPoint:
        for p in self.points:
            if p.scale == scale:
                return p
        raise KeyError(scale)


def overhead_sensitivity(
    platform: ClusterPlatform,
    dags: Sequence[tuple[DagParameters, TaskGraph]],
    *,
    scales: Sequence[float] = (0.25, 1.0, 4.0),
    seed: int = 0,
    n: int | None = 2000,
    suite: SimulatorSuite | None = None,
) -> SensitivitySweep:
    """Sweep the testbed's overhead magnitude against one simulator.

    Parameters
    ----------
    scales:
        Multipliers applied to both the startup and the redistribution
        overheads of the testbed (1.0 = the measured Bayreuth machine).
    suite:
        Simulator under test; defaults to the analytical one (which
        never models overheads, so its error must track the scale).
    """
    if not scales:
        raise ValueError("need at least one scale point")
    suite = suite or build_analytical_suite(platform)
    selected = [(p, g) for p, g in dags if n is None or p.n == n]
    if not selected:
        raise ValueError("no DAGs match the requested size")
    sweep = SensitivitySweep(parameter="overhead scale")
    for scale in scales:
        emulator = TGridEmulator(
            platform,
            seed=seed,
            startup_scale=scale,
            redistribution_scale=scale,
        )
        study = run_study(selected, [suite], emulator)
        cmp = compare_algorithms(
            study, simulator=suite.name, n=n or selected[0][0].n
        )
        sweep.points.append(
            SensitivityPoint(
                scale=scale,
                num_wrong=cmp.num_wrong,
                num_dags=cmp.num_dags,
                mean_error_pct=float(
                    np.mean([r.error_pct for r in study.records])
                ),
            )
        )
    return sweep
