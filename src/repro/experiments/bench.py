"""Pipeline stage benchmark: measurement core and baseline comparison.

The benchmark times the four stages every study run goes through —
DAG generation, scheduling, simulation, testbed execution — plus a
cold/warm full-study pair through the content-addressed result cache
(:mod:`repro.cache`), using the observability layer's span timers, and
compares the result against the committed baseline
(``BENCH_pipeline.json`` at the repository root).

Noise handling: wall-clock benchmarks on shared machines jitter by tens
of percent, so ``repeat`` runs the whole measurement several times and
keeps the per-stage *minimum* (the run least disturbed by the machine).
The comparison applies a relative ``threshold`` below which differences
are not called regressions; CI runs the comparison as a soft-failing
job for the same reason (see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro import __version__
from repro.cache import ResultCache
from repro.dag.generator import generate_paper_dags
from repro.experiments.runner import run_study
from repro.obs import Recorder, recording
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import schedule_dag
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator

__all__ = [
    "DEFAULT_BASELINE",
    "NUM_DAGS",
    "StageComparison",
    "cache_speedup",
    "compare_to_baseline",
    "default_baseline_path",
    "render_comparison",
    "run_pipeline_bench",
]

#: Study subset: enough work to time meaningfully, small enough for CI
#: (first N of the 54 Table I DAGs, both algorithms).
NUM_DAGS = 12
ALGORITHMS = ("hcpa", "mcpa")

DEFAULT_BASELINE = "BENCH_pipeline.json"

_STAGE_NAMES = (
    "pipeline.dag_generation",
    "pipeline.scheduling",
    "pipeline.simulation",
    "pipeline.testbed_execution",
    "pipeline.study_cold",
    "pipeline.cached_rerun",
)


def default_baseline_path() -> Path:
    """The committed baseline at the repository root (checkout layout)."""
    return Path(__file__).resolve().parents[3] / DEFAULT_BASELINE


def _measure(num_dags: int) -> tuple[dict[str, float], dict[str, int], dict]:
    """One timed pass; returns (stage seconds, stage units, counters)."""
    recorder = Recorder.to_memory()
    with recording(recorder):
        with recorder.span("pipeline.dag_generation"):
            dags = generate_paper_dags(seed=0)[:num_dags]

        platform = bayreuth_cluster(32)
        emulator = TGridEmulator(platform, seed=0)
        suite = build_analytical_suite(platform)

        schedules = []
        with recorder.span("pipeline.scheduling"):
            for _params, graph in dags:
                costs = SchedulingCosts(
                    graph,
                    platform,
                    suite.task_model,
                    startup_model=suite.startup_model,
                    redistribution_model=suite.redistribution_model,
                )
                for algorithm in ALGORITHMS:
                    schedules.append(
                        (graph, schedule_dag(graph, costs, algorithm))
                    )

        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )
        with recorder.span("pipeline.simulation"):
            for graph, schedule in schedules:
                simulator.run(graph, schedule)

        with recorder.span("pipeline.testbed_execution"):
            for graph, schedule in schedules:
                emulator.execute(graph, schedule)

        # Full-study cold/warm pair through the result cache: the cold
        # pass populates a fresh cache (compute + persist), the warm
        # pass replays every cell from it.  Their ratio is the headline
        # incremental-re-execution speedup tracked in the baseline.
        cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = ResultCache(cache_root)
            with recorder.span("pipeline.study_cold"):
                cold = run_study(dags, [suite], emulator, cache=cache)
            with recorder.span("pipeline.cached_rerun"):
                warm = run_study(dags, [suite], emulator, cache=cache)
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)
        if cold.records != warm.records:  # pragma: no cover - cache bug
            raise RuntimeError(
                "cached study re-run diverged from the cold run"
            )

    metrics = recorder.metrics()
    num_cells = len(dags) * len(ALGORITHMS)
    units = {
        "pipeline.dag_generation": num_dags,
        "pipeline.scheduling": len(schedules),
        "pipeline.simulation": len(schedules),
        "pipeline.testbed_execution": len(schedules),
        "pipeline.study_cold": num_cells,
        "pipeline.cached_rerun": num_cells,
    }
    seconds = {
        name: metrics["spans"][name]["total_s"] for name in _STAGE_NAMES
    }
    counters = {
        k: v
        for k, v in metrics["counters"].items()
        if k.startswith(("engine.", "sim.", "sched.", "testbed.", "cache."))
    }
    return seconds, units, counters


def run_pipeline_bench(num_dags: int = NUM_DAGS, repeat: int = 1) -> dict:
    """Time each pipeline stage; returns the BENCH payload.

    ``repeat`` > 1 re-runs the measurement and keeps the per-stage
    minimum.  Counters come from the first pass (the pipeline is
    deterministic, so they are identical across passes).
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    seconds, units, counters = _measure(num_dags)
    for _ in range(repeat - 1):
        again, _units, _counters = _measure(num_dags)
        for name, value in again.items():
            if value < seconds[name]:
                seconds[name] = value
    stages = {}
    for name in _STAGE_NAMES:
        n = units[name]
        stages[name.removeprefix("pipeline.")] = {
            "seconds": round(seconds[name], 6),
            "units": n,
            "seconds_per_unit": round(seconds[name] / n, 6),
        }
    return {
        "bench": "pipeline",
        "version": __version__,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "config": {
            "num_dags": num_dags,
            "algorithms": list(ALGORITHMS),
            "num_nodes": 32,
            "simulator": "analytic",
            "repeat": repeat,
        },
        "stages": stages,
        "counters": counters,
    }


def cache_speedup(payload: dict) -> float | None:
    """Cold-vs-warm study ratio of a bench payload (None if absent).

    ``study_cold / cached_rerun`` — how many times faster a warm-cache
    full-study re-run is than the cold run that populated the cache.
    """
    stages = payload.get("stages", {})
    cold = stages.get("study_cold", {}).get("seconds")
    warm = stages.get("cached_rerun", {}).get("seconds")
    if not cold or not warm:
        return None
    return cold / warm


@dataclass(frozen=True)
class StageComparison:
    """Per-stage verdict of a baseline comparison."""

    stage: str
    baseline_s: float
    current_s: float
    threshold: float

    @property
    def ratio(self) -> float:
        """current / baseline (> 1 means slower than the baseline)."""
        if self.baseline_s <= 0:
            return 1.0
        return self.current_s / self.baseline_s

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold


def compare_to_baseline(
    payload: dict, baseline: dict, *, threshold: float = 0.25
) -> list[StageComparison]:
    """Compare a bench payload's stages against a baseline payload.

    Stages absent from the baseline are skipped (new stages cannot
    regress).  ``threshold`` is the relative slowdown tolerated before
    a stage counts as regressed — benchmarks on shared runners are
    noisy, so small ratios mean nothing.
    """
    current_cfg = payload.get("config", {}).get("num_dags")
    baseline_cfg = baseline.get("config", {}).get("num_dags")
    if baseline_cfg is not None and current_cfg != baseline_cfg:
        raise ValueError(
            f"bench config mismatch: measured num_dags={current_cfg} vs "
            f"baseline num_dags={baseline_cfg}; per-stage times are not "
            "comparable (re-run with matching --dags)"
        )
    comparisons = []
    base_stages = baseline.get("stages", {})
    for stage, current in payload["stages"].items():
        base = base_stages.get(stage)
        if base is None:
            continue
        comparisons.append(
            StageComparison(
                stage=stage,
                baseline_s=base["seconds"],
                current_s=current["seconds"],
                threshold=threshold,
            )
        )
    return comparisons


def render_comparison(comparisons: list[StageComparison]) -> str:
    """Human-readable comparison table with a final verdict line."""
    lines = [
        f"  {'stage':<20} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}  verdict"
    ]
    for c in comparisons:
        verdict = "REGRESSED" if c.regressed else "ok"
        lines.append(
            f"  {c.stage:<20} {c.baseline_s:>9.3f}s {c.current_s:>9.3f}s "
            f"{c.ratio:>6.2f}x  {verdict}"
        )
    worst = max(comparisons, key=lambda c: c.ratio, default=None)
    if worst is None:
        lines.append("  (no comparable stages)")
    elif any(c.regressed for c in comparisons):
        lines.append(
            f"  FAIL: regression beyond {100 * worst.threshold:.0f}% "
            f"(worst: {worst.stage} at {worst.ratio:.2f}x)"
        )
    else:
        lines.append(
            f"  PASS: no stage beyond {100 * worst.threshold:.0f}% of baseline"
        )
    return "\n".join(lines)
