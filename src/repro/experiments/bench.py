"""Pipeline stage benchmark: measurement core and baseline comparison.

The benchmark times the four stages every study run goes through —
DAG generation, scheduling, simulation, testbed execution — plus a
cold/warm full-study pair through the content-addressed result cache
(:mod:`repro.cache`), a second cold study on the array engine backend
(``study_cold_array``; its records are asserted equal to the object
cold run's), a third cold study with the array *scheduler* also
engaged (``study_cold_sched_array``), a timeline-tracing overhead pair
(``obs_overhead_off`` / ``obs_overhead_on``: the same uncached study
with observability disabled vs with a simulated-time timeline
attached), a live-telemetry overhead pair (``obs_live_overhead_off`` /
``obs_live_overhead_on``: the same uncached two-worker study with the
live progress bus of :mod:`repro.obs.live` detached vs attached —
:func:`live_overhead` is their ratio, :func:`assert_live_identity` the
``--assert-live`` bit-identity sweep), a study-throughput quartet (``study_throughput_w1`` /
``_w2`` / ``_w4`` / ``_w4_percell``: the same cold study dispatched
through the chunked executor at one, two and four workers plus
per-cell dispatch at four workers — :func:`study_throughput_speedup`
is the chunked-vs-per-cell ratio, :func:`assert_chunk_identity` the
``--assert-chunk`` bit-identity sweep), and a max-min solver
micro-benchmark (scalar vs vectorized
kernel on synthetic dense/sparse instances), using the observability
layer's span timers, and compares the result against the committed
baseline (``BENCH_pipeline.json`` at the repository root).  Each stage
that runs a simulation engine records which backend produced it in the
stage's ``engine`` field; stages that run the allocation phase record
the scheduler backend in a ``sched`` field.

The scheduling stage is an allocation-phase pair: ``scheduling`` runs
the object allocation loop and ``scheduling_array`` the flat-array
core (:mod:`repro.scheduling.arena`) on identical inputs, both with
observability disabled so the pair isolates pure scheduler throughput
(emission cost is the obs-overhead pair's job).  Their ratio is
:func:`sched_speedup`; allocations are asserted equal, and
:func:`assert_sched_identity` (the ``--assert-sched`` flag) sweeps
the forced-dispatch bit-identity check across backends.

Noise handling: wall-clock benchmarks on shared machines jitter by tens
of percent, so ``repeat`` runs the whole measurement several times and
keeps the per-stage *minimum* (the run least disturbed by the machine).
The comparison applies a relative ``threshold`` below which differences
are not called regressions; CI runs the comparison as a soft-failing
job for the same reason (see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import os
import platform as py_platform
import random
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import __version__
from repro.cache import ResultCache
from repro.dag.generator import generate_paper_dags
from repro.experiments.runner import run_study
from repro.obs import Recorder, Timeline, recording
from repro.obs.live import LiveTelemetry
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import build_analytical_suite
from repro.scheduling.arena import ARRAY_ALLOCATORS, resolve_sched
from repro.scheduling.costs import SchedulingCosts
from repro.scheduling.driver import ALGORITHMS as _OBJECT_ALLOCATORS
from repro.scheduling.driver import schedule_dag
from repro.simgrid.arena import resolve_engine
from repro.simgrid.sharing import _maxmin_dense, _maxmin_flat
from repro.simgrid.simulator import ApplicationSimulator
from repro.testbed.tgrid import TGridEmulator

__all__ = [
    "DEFAULT_BASELINE",
    "NUM_DAGS",
    "StageComparison",
    "assert_chunk_identity",
    "assert_live_identity",
    "assert_sched_identity",
    "cache_speedup",
    "compare_to_baseline",
    "default_baseline_path",
    "host_metadata",
    "live_overhead",
    "measured_crossovers",
    "obs_overhead",
    "render_comparison",
    "run_pipeline_bench",
    "sched_speedup",
    "study_cells_per_sec",
    "study_throughput_speedup",
]

#: Study subset: enough work to time meaningfully, small enough for CI
#: (first N of the 54 Table I DAGs, both algorithms).
NUM_DAGS = 12
ALGORITHMS = ("hcpa", "mcpa")

DEFAULT_BASELINE = "BENCH_pipeline.json"

_STAGE_NAMES = (
    "pipeline.dag_generation",
    "pipeline.scheduling",
    "pipeline.scheduling_array",
    "pipeline.simulation",
    "pipeline.testbed_execution",
    "pipeline.study_cold",
    "pipeline.study_cold_array",
    "pipeline.study_cold_sched_array",
    "pipeline.study_throughput_w1",
    "pipeline.study_throughput_w2",
    "pipeline.study_throughput_w4",
    "pipeline.study_throughput_w4_percell",
    "pipeline.cached_rerun",
    "pipeline.obs_overhead_off",
    "pipeline.obs_overhead_on",
    "pipeline.obs_live_overhead_off",
    "pipeline.obs_live_overhead_on",
    "pipeline.solver_dense_scalar",
    "pipeline.solver_dense_vectorized",
    "pipeline.solver_sparse_scalar",
    "pipeline.solver_sparse_vectorized",
)

#: Solver micro-benchmark shape: one dense instance (every action
#: touches many of the resources — the regime the vectorized kernel is
#: built for) and one sparse instance (few entries per action — the
#: regime the engine's adaptive dispatch keeps on the scalar kernel).
_SOLVER_DENSE = (48, 48, 193)  # (actions, entries per action, resources)
_SOLVER_SPARSE = (48, 4, 193)
_SOLVER_ITERS = 40


def _solver_instance(
    actions: int, entries: int, resources: int
) -> tuple[list, list, list, list]:
    """Deterministic synthetic CSR instance for the solver bench."""
    rng = random.Random(20260806)
    counts: list[int] = []
    e_rid: list[int] = []
    e_w: list[float] = []
    for _ in range(actions):
        counts.append(entries)
        e_rid.extend(rng.sample(range(resources), entries))
        e_w.extend(rng.uniform(0.5, 2.0) for _ in range(entries))
    caps = [rng.uniform(1.0, 8.0) for _ in range(resources)]
    return counts, e_rid, e_w, caps


def default_baseline_path() -> Path:
    """The committed baseline at the repository root (checkout layout)."""
    return Path(__file__).resolve().parents[3] / DEFAULT_BASELINE


def _measure(
    num_dags: int, engine: str, sched: str
) -> tuple[dict[str, float], dict[str, int], dict]:
    """One timed pass; returns (stage seconds, stage units, counters)."""
    recorder = Recorder.to_memory()
    with recording(recorder):
        with recorder.span("pipeline.dag_generation"):
            dags = generate_paper_dags(seed=0)[:num_dags]

        platform = bayreuth_cluster(32)
        emulator = TGridEmulator(platform, seed=0)
        suite = build_analytical_suite(platform)

        # Allocation-phase pair: the object allocation loop vs the
        # flat-array core on identical inputs.  Both legs run with
        # observability disabled (the outer spans are bound to the
        # measuring recorder, so timings still land in this pass) and
        # each builds its own cost providers, so both pay the same
        # model-evaluation misses.  Allocations are asserted equal —
        # the backends are bit-identical by construction.
        def _costed() -> list[tuple]:
            return [
                (
                    graph,
                    SchedulingCosts(
                        graph,
                        platform,
                        suite.task_model,
                        startup_model=suite.startup_model,
                        redistribution_model=suite.redistribution_model,
                    ),
                )
                for _params, graph in dags
            ]

        costed = _costed()
        allocs_object = []
        with recorder.span("pipeline.scheduling"):
            with recording(Recorder()):
                for graph, costs in costed:
                    for algorithm in ALGORITHMS:
                        allocs_object.append(
                            _OBJECT_ALLOCATORS[algorithm](
                                graph, costs, sched="object"
                            )
                        )
        allocs_array = []
        with recorder.span("pipeline.scheduling_array"):
            with recording(Recorder()):
                for graph, costs in _costed():
                    for algorithm in ALGORITHMS:
                        allocs_array.append(
                            ARRAY_ALLOCATORS[algorithm](graph, costs)
                        )
        if allocs_array != allocs_object:  # pragma: no cover - arena bug
            raise RuntimeError(
                "array scheduler allocations diverged from the object loop"
            )

        # Full schedules for the downstream simulation/testbed stages,
        # built untimed (the pair above isolates the allocation phase;
        # mapping is shared object code either way) under the measuring
        # recorder so the usual sched.* counters land in the payload.
        schedules = []
        for graph, costs in costed:
            for algorithm in ALGORITHMS:
                schedules.append(
                    (graph, schedule_dag(graph, costs, algorithm))
                )

        simulator = ApplicationSimulator(
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
            engine=engine,
        )
        with recorder.span("pipeline.simulation"):
            for graph, schedule in schedules:
                simulator.run(graph, schedule)

        with recorder.span("pipeline.testbed_execution"):
            for graph, schedule in schedules:
                emulator.execute(graph, schedule, engine=engine)

        # Full-study cold/warm pair through the result cache: the cold
        # pass populates a fresh cache (compute + persist), the warm
        # pass replays every cell from it.  Their ratio is the headline
        # incremental-re-execution speedup tracked in the baseline.
        cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = ResultCache(cache_root)
            with recorder.span("pipeline.study_cold"):
                cold = run_study(
                    dags,
                    [suite],
                    emulator,
                    cache=cache,
                    engine=engine,
                    sched=sched,
                )
            with recorder.span("pipeline.cached_rerun"):
                warm = run_study(
                    dags,
                    [suite],
                    emulator,
                    cache=cache,
                    engine=engine,
                    sched=sched,
                )
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)
        if cold.records != warm.records:  # pragma: no cover - cache bug
            raise RuntimeError(
                "cached study re-run diverged from the cold run"
            )

        # The same cold study on the array backend (its own fresh
        # cache, so nothing is replayed).  Backends are bit-identical —
        # asserted on the full record list — so the two cold stages
        # time identical work on the two engines.
        cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = ResultCache(cache_root)
            with recorder.span("pipeline.study_cold_array"):
                cold_array = run_study(
                    dags,
                    [suite],
                    emulator,
                    cache=cache,
                    engine="array",
                    sched=sched,
                )
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)
        if cold_array.records != cold.records:  # pragma: no cover
            raise RuntimeError(
                "array-engine study diverged from the object-engine study"
            )

        # The cold study once more with both array backends engaged —
        # array simulation engine *and* array scheduler — on its own
        # fresh cache so nothing is replayed.  Asserted bit-identical
        # to the object cold run, so the stage times identical work
        # with the flat-array allocation core in the loop.
        cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = ResultCache(cache_root)
            with recorder.span("pipeline.study_cold_sched_array"):
                cold_sched = run_study(
                    dags,
                    [suite],
                    emulator,
                    cache=cache,
                    engine="array",
                    sched="array",
                )
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)
        if cold_sched.records != cold.records:  # pragma: no cover
            raise RuntimeError(
                "array-scheduler study diverged from the object-scheduler "
                "study"
            )

        # Study-throughput quartet: the same cold study dispatched
        # through the chunked executor at 1/2/4 workers, plus per-cell
        # (chunk=1) dispatch at 4 workers — the baseline the chunked
        # path is measured against.  Each leg populates its own fresh
        # cache (every cell misses, so every cell flows through the
        # executor) and is asserted record-identical to the cold run.
        # Chunk settings are pinned so an ambient REPRO_CHUNK cannot
        # skew the comparison; worker counts beyond the host's cores
        # clamp to a smaller pool (recorded as runner.workers_clamped
        # in the counters — read them next to the payload's host
        # metadata).
        for stage_name, stage_workers, stage_chunk in (
            ("pipeline.study_throughput_w1", 1, 0),
            ("pipeline.study_throughput_w2", 2, 0),
            ("pipeline.study_throughput_w4", 4, 0),
            ("pipeline.study_throughput_w4_percell", 4, 1),
        ):
            cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
            try:
                cache = ResultCache(cache_root)
                with recorder.span(stage_name):
                    through = run_study(
                        dags,
                        [suite],
                        emulator,
                        workers=stage_workers,
                        cache=cache,
                        engine=engine,
                        sched=sched,
                        chunk=stage_chunk,
                    )
            finally:
                shutil.rmtree(cache_root, ignore_errors=True)
            if through.records != cold.records:  # pragma: no cover
                raise RuntimeError(
                    f"{stage_name} study diverged from the cold run"
                )

        # Timeline-tracing overhead pair: the same uncached study with
        # tracing disabled vs with an in-memory timeline attached.
        # Their ratio is the zero-cost-when-disabled check's enabled
        # counterpart — how much the `if tl is not None:` emission adds.
        # Each leg installs its own recorder; the outer span objects
        # are bound to the measuring recorder, so timings still land
        # in this pass's metrics.
        with recorder.span("pipeline.obs_overhead_off"):
            with recording(Recorder()):
                obs_off = run_study(
                    dags, [suite], emulator, engine=engine, sched=sched
                )
        with recorder.span("pipeline.obs_overhead_on"):
            with recording(Recorder(timeline=Timeline())):
                obs_on = run_study(
                    dags, [suite], emulator, engine=engine, sched=sched
                )
        if obs_on.records != obs_off.records:  # pragma: no cover
            raise RuntimeError(
                "timeline-traced study diverged from the untraced study"
            )

        # Live-telemetry overhead pair: the same uncached study through
        # the two-worker chunked executor with the live progress bus
        # detached vs attached (queue, worker heartbeats, parent drain
        # thread all engaged — the full streaming path).  The short
        # heartbeat makes the pair a worst case for emission cost; the
        # 1.10x acceptance bound lives in the rolling-history check.
        with recorder.span("pipeline.obs_live_overhead_off"):
            with recording(Recorder()):
                live_off = run_study(
                    dags,
                    [suite],
                    emulator,
                    workers=2,
                    engine=engine,
                    sched=sched,
                    chunk=0,
                )
        telemetry = LiveTelemetry(heartbeat_s=0.2).start()
        try:
            with recorder.span("pipeline.obs_live_overhead_on"):
                with recording(Recorder()):
                    live_on = run_study(
                        dags,
                        [suite],
                        emulator,
                        workers=2,
                        engine=engine,
                        sched=sched,
                        chunk=0,
                        telemetry=telemetry,
                    )
        finally:
            telemetry.close()
        if live_on.records != live_off.records:  # pragma: no cover
            raise RuntimeError(
                "live-telemetry study diverged from the detached study"
            )

        # Solver micro-benchmark: the scalar and vectorized max-min
        # kernels on identical synthetic instances.  Results are
        # asserted equal, so the stages time the same computation.
        for label, shape in (
            ("dense", _SOLVER_DENSE),
            ("sparse", _SOLVER_SPARSE),
        ):
            counts, e_rid, e_w, caps = _solver_instance(*shape)
            np_args = (
                np.asarray(counts, dtype=np.intp),
                np.asarray(e_rid, dtype=np.intp),
                np.asarray(e_w, dtype=float),
                np.asarray(caps, dtype=float),
            )
            # Warm-up pass, outside the timed spans, doubling as the
            # bit-identity check between the two kernels.
            scalar_rates = _maxmin_flat(counts, e_rid, e_w, caps)
            vector_rates = _maxmin_dense(*np_args)
            if scalar_rates != vector_rates.tolist():  # pragma: no cover
                raise RuntimeError(
                    f"solver kernels diverged on the {label} instance"
                )
            with recorder.span(f"pipeline.solver_{label}_scalar"):
                for _ in range(_SOLVER_ITERS):
                    _maxmin_flat(counts, e_rid, e_w, caps)
            with recorder.span(f"pipeline.solver_{label}_vectorized"):
                for _ in range(_SOLVER_ITERS):
                    _maxmin_dense(*np_args)

    metrics = recorder.metrics()
    num_cells = len(dags) * len(ALGORITHMS)
    units = {
        "pipeline.dag_generation": num_dags,
        "pipeline.scheduling": len(allocs_object),
        "pipeline.scheduling_array": len(allocs_array),
        "pipeline.simulation": len(schedules),
        "pipeline.testbed_execution": len(schedules),
        "pipeline.study_cold": num_cells,
        "pipeline.study_cold_array": num_cells,
        "pipeline.study_cold_sched_array": num_cells,
        "pipeline.study_throughput_w1": num_cells,
        "pipeline.study_throughput_w2": num_cells,
        "pipeline.study_throughput_w4": num_cells,
        "pipeline.study_throughput_w4_percell": num_cells,
        "pipeline.cached_rerun": num_cells,
        "pipeline.obs_overhead_off": num_cells,
        "pipeline.obs_overhead_on": num_cells,
        "pipeline.obs_live_overhead_off": num_cells,
        "pipeline.obs_live_overhead_on": num_cells,
        "pipeline.solver_dense_scalar": _SOLVER_ITERS,
        "pipeline.solver_dense_vectorized": _SOLVER_ITERS,
        "pipeline.solver_sparse_scalar": _SOLVER_ITERS,
        "pipeline.solver_sparse_vectorized": _SOLVER_ITERS,
    }
    seconds = {
        name: metrics["spans"][name]["total_s"] for name in _STAGE_NAMES
    }
    counters = {
        k: v
        for k, v in metrics["counters"].items()
        if k.startswith(
            ("engine.", "sim.", "sched.", "testbed.", "cache.", "runner.")
        )
    }
    return seconds, units, counters


def _stage_engine(name: str, engine: str) -> str | None:
    """Which engine backend produced a stage's numbers (None: neither)."""
    if name in (
        "pipeline.study_cold_array",
        "pipeline.study_cold_sched_array",
    ):
        return "array"
    if name in (
        "pipeline.simulation",
        "pipeline.testbed_execution",
        "pipeline.study_cold",
        "pipeline.study_throughput_w1",
        "pipeline.study_throughput_w2",
        "pipeline.study_throughput_w4",
        "pipeline.study_throughput_w4_percell",
        "pipeline.cached_rerun",
        "pipeline.obs_overhead_off",
        "pipeline.obs_overhead_on",
        "pipeline.obs_live_overhead_off",
        "pipeline.obs_live_overhead_on",
    ):
        return engine
    return None


def _stage_sched(name: str, sched: str) -> str | None:
    """Which scheduler backend ran a stage's allocations (None: neither)."""
    if name in (
        "pipeline.scheduling_array",
        "pipeline.study_cold_sched_array",
    ):
        return "array"
    if name == "pipeline.scheduling":
        return "object"
    if name in (
        "pipeline.study_cold",
        "pipeline.study_cold_array",
        "pipeline.study_throughput_w1",
        "pipeline.study_throughput_w2",
        "pipeline.study_throughput_w4",
        "pipeline.study_throughput_w4_percell",
        "pipeline.cached_rerun",
        "pipeline.obs_overhead_off",
        "pipeline.obs_overhead_on",
        "pipeline.obs_live_overhead_off",
        "pipeline.obs_live_overhead_on",
    ):
        return sched
    return None


def measured_crossovers() -> dict:
    """Measured scalar/vectorized crossovers per kernel pair.

    Runs :meth:`~repro.obs.prof.CrossoverTable.measure` (a controlled
    calibration: both kernels of every pair on identical instances
    over a size grid) and reduces it to the crossover point and the
    dispatch threshold it implies — the data the recalibration
    satellite of the dispatch thresholds in
    :mod:`repro.simgrid.arena` and :mod:`repro.scheduling.arena`
    reads, and the ``crossovers`` section of the bench payload.
    """
    from repro.obs.prof import PAIRS, CrossoverTable
    from repro.scheduling import arena as sched_arena
    from repro.simgrid import arena

    table = CrossoverTable.measure()
    defaults = {
        "step_scan": arena._SMALL_QUEUE,
        "solver": arena._SMALL_SOLVE,
        "critical_path_dp": sched_arena._SMALL_DP,
        "alloc_grow": sched_arena._SMALL_GROW,
    }
    return {
        pair: {
            "unit": spec["unit"],
            "crossover": table.crossover(pair),
            "threshold": table.threshold(pair, defaults[pair]),
        }
        for pair, spec in sorted(PAIRS.items())
    }


def host_metadata() -> dict:
    """The bench host's identity, stamped into every payload.

    Wall-clock stage times are only comparable on similar machines, so
    every payload (and, through it, every history entry) records the
    cpu count, OS/arch string and python version that produced it —
    the minimum needed to judge whether two bench trajectories ran on
    comparable hardware.
    """
    return {
        "cpus": os.cpu_count(),
        "platform": py_platform.platform(),
        "python": py_platform.python_version(),
    }


def run_pipeline_bench(
    num_dags: int = NUM_DAGS,
    repeat: int = 1,
    engine: str | None = None,
    sched: str | None = None,
) -> dict:
    """Time each pipeline stage; returns the BENCH payload.

    ``repeat`` > 1 re-runs the measurement and keeps the per-stage
    minimum.  Counters come from the first pass (the pipeline is
    deterministic, so they are identical across passes).  ``engine``
    selects the simulation backend for the simulation/testbed/study
    stages (``None``: honor ``REPRO_ENGINE``, default ``object``); the
    ``study_cold_array`` stage always runs on the array backend so the
    payload carries both sides of the comparison.  ``sched`` likewise
    selects the scheduler backend for the study stages (``None``:
    honor ``REPRO_SCHED``, default ``object``); the scheduling stage
    pair and ``study_cold_sched_array`` always pin their backends so
    the payload carries both sides of that comparison too.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    engine = resolve_engine(engine)
    sched = resolve_sched(sched)
    seconds, units, counters = _measure(num_dags, engine, sched)
    for _ in range(repeat - 1):
        again, _units, _counters = _measure(num_dags, engine, sched)
        for name, value in again.items():
            if value < seconds[name]:
                seconds[name] = value
    stages = {}
    for name in _STAGE_NAMES:
        n = units[name]
        stage = {
            "seconds": round(seconds[name], 6),
            "units": n,
            "seconds_per_unit": round(seconds[name] / n, 6),
        }
        stage_engine = _stage_engine(name, engine)
        if stage_engine is not None:
            stage["engine"] = stage_engine
        stage_sched = _stage_sched(name, sched)
        if stage_sched is not None:
            stage["sched"] = stage_sched
        stages[name.removeprefix("pipeline.")] = stage
    return {
        "bench": "pipeline",
        "version": __version__,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "host": host_metadata(),
        "config": {
            "num_dags": num_dags,
            "algorithms": list(ALGORITHMS),
            "num_nodes": 32,
            "simulator": "analytic",
            "repeat": repeat,
            "engine": engine,
            "sched": sched,
        },
        "stages": stages,
        "counters": counters,
        "crossovers": measured_crossovers(),
    }


def cache_speedup(payload: dict) -> float | None:
    """Cold-vs-warm study ratio of a bench payload (None if absent).

    ``study_cold / cached_rerun`` — how many times faster a warm-cache
    full-study re-run is than the cold run that populated the cache.
    """
    stages = payload.get("stages", {})
    cold = stages.get("study_cold", {}).get("seconds")
    warm = stages.get("cached_rerun", {}).get("seconds")
    if not cold or not warm:
        return None
    return cold / warm


def obs_overhead(payload: dict) -> float | None:
    """Timeline-tracing overhead ratio (None if stages are absent).

    ``obs_overhead_on / obs_overhead_off`` — how much slower the
    uncached study runs with an in-memory timeline attached than with
    observability fully disabled (1.0 means free).
    """
    stages = payload.get("stages", {})
    off = stages.get("obs_overhead_off", {}).get("seconds")
    on = stages.get("obs_overhead_on", {}).get("seconds")
    if not off or not on:
        return None
    return on / off


def live_overhead(payload: dict) -> float | None:
    """Live-telemetry overhead ratio (None if stages are absent).

    ``obs_live_overhead_on / obs_live_overhead_off`` — how much slower
    the uncached two-worker study runs with the live progress bus
    attached (queue, heartbeats, drain thread) than detached (1.0
    means free).
    """
    stages = payload.get("stages", {})
    off = stages.get("obs_live_overhead_off", {}).get("seconds")
    on = stages.get("obs_live_overhead_on", {}).get("seconds")
    if not off or not on:
        return None
    return on / off


def solver_speedup(payload: dict, instance: str = "dense") -> float | None:
    """Scalar-vs-vectorized solver ratio (None if stages are absent).

    ``solver_<instance>_scalar / solver_<instance>_vectorized`` — how
    many times faster the vectorized max-min kernel is than the scalar
    transliteration on the synthetic instance (> 1 means faster).
    """
    stages = payload.get("stages", {})
    scalar = stages.get(f"solver_{instance}_scalar", {}).get("seconds")
    vector = stages.get(f"solver_{instance}_vectorized", {}).get("seconds")
    if not scalar or not vector:
        return None
    return scalar / vector


def sched_speedup(payload: dict) -> float | None:
    """Object-vs-array scheduler ratio (None if stages are absent).

    ``scheduling / scheduling_array`` — how many times faster the
    flat-array allocation core runs the bench's allocation phase than
    the object loop on identical inputs (> 1 means faster).
    """
    stages = payload.get("stages", {})
    obj = stages.get("scheduling", {}).get("seconds")
    arr = stages.get("scheduling_array", {}).get("seconds")
    if not obj or not arr:
        return None
    return obj / arr


def study_throughput_speedup(payload: dict) -> float | None:
    """Chunked-vs-per-cell dispatch ratio (None if stages are absent).

    ``study_throughput_w4_percell / study_throughput_w4`` — how many
    times more cold-study cells/sec the chunked executor sustains than
    per-cell dispatch at the same four-worker pool (> 1 means chunking
    pays for the dispatch overhead it amortizes).
    """
    stages = payload.get("stages", {})
    percell = stages.get("study_throughput_w4_percell", {}).get("seconds")
    chunked = stages.get("study_throughput_w4", {}).get("seconds")
    if not percell or not chunked:
        return None
    return percell / chunked


def study_cells_per_sec(
    payload: dict, stage: str = "study_throughput_w4"
) -> float | None:
    """End-to-end cold-study throughput of one bench stage, cells/sec.

    The stage's ``units`` field is its grid-cell count, so
    ``units / seconds`` is the figure ``docs/performance.md`` and the
    CI throughput artifact track (None if the stage is absent).
    """
    info = payload.get("stages", {}).get(stage)
    if not info or not info.get("seconds"):
        return None
    return info["units"] / info["seconds"]


def assert_sched_identity(num_dags: int = NUM_DAGS) -> int:
    """Bit-identity sweep between the scheduler backends.

    Runs every CPA-family algorithm over the bench's DAG subset on
    both backends with the array core's internal dispatch forced both
    ways (all-scalar kernels, then all-incremental/vectorized), and
    compares allocations, observability events, counters, timeline
    lines and profiler structure case by case.  Raises
    :class:`RuntimeError` on the first divergence; returns the number
    of cases compared.  Backs the ``--assert-sched`` bench flag.
    """
    import os

    from repro.obs import MemorySink, Profiler
    from repro.obs.timeline import timeline_lines
    from repro.scheduling import arena as sched_arena
    from repro.simgrid.arena import DISPATCH_ENV_VAR

    platform = bayreuth_cluster(32)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:num_dags]
    algorithms = ("cpa",) + ALGORITHMS
    facets = ("allocations", "events", "counters", "timeline", "profile")

    def _costs(graph):
        return SchedulingCosts(
            graph,
            platform,
            suite.task_model,
            startup_model=suite.startup_model,
            redistribution_model=suite.redistribution_model,
        )

    def _run(allocator, graph):
        costs = _costs(graph)
        sink = MemorySink()
        rec = Recorder(sink, timeline=Timeline(), profiler=Profiler())
        with recording(rec):
            alloc = allocator(graph, costs)
        return (
            alloc,
            [r for r in sink.records if r.get("type") == "event"],
            dict(rec.counters),
            timeline_lines(rec.timeline.records),
            rec.profiler.structure(),
        )

    saved = (sched_arena._SMALL_DP, sched_arena._SMALL_GROW)
    saved_table = os.environ.pop(DISPATCH_ENV_VAR, None)
    checked = 0
    try:
        # Force the array core's kernel dispatch all-scalar, then
        # all-incremental/vectorized, so both code paths are exercised
        # regardless of this host's measured thresholds.
        for forced in ((10**9, 10**9), (-1, -1)):
            sched_arena._SMALL_DP, sched_arena._SMALL_GROW = forced
            sched_arena._SCHED_DISPATCH_CACHE.clear()
            for _params, graph in dags:
                for algorithm in algorithms:
                    obj = _run(
                        lambda g, c: _OBJECT_ALLOCATORS[algorithm](
                            g, c, sched="object"
                        ),
                        graph,
                    )
                    arr = _run(ARRAY_ALLOCATORS[algorithm], graph)
                    for facet, x, y in zip(facets, obj, arr):
                        if x != y:
                            raise RuntimeError(
                                f"scheduler backends diverged on {facet} "
                                f"(dag={graph.name}, algorithm={algorithm}, "
                                f"forced dispatch={forced})"
                            )
                    checked += 1
    finally:
        sched_arena._SMALL_DP, sched_arena._SMALL_GROW = saved
        sched_arena._SCHED_DISPATCH_CACHE.clear()
        if saved_table is not None:
            os.environ[DISPATCH_ENV_VAR] = saved_table
    return checked


def assert_chunk_identity(num_dags: int = NUM_DAGS) -> int:
    """Bit-identity sweep between the chunked executor and serial loop.

    Runs the bench study grid serially, then through the chunked
    executor at four workers with per-cell, small and single-chunk
    sizes, and compares records, observability events, counters,
    timeline lines and profiler structure case by case; a final
    cold/warm cache pair exercises the batched cache front-end the
    same way.  ``runner.workers_clamped`` is excluded (it is the one
    counter allowed to differ across hosts).  Raises
    :class:`RuntimeError` on the first divergence; returns the number
    of configurations compared.  Backs the ``--assert-chunk`` bench
    flag.
    """
    from repro.obs import MemorySink, Profiler
    from repro.obs.timeline import timeline_lines

    platform = bayreuth_cluster(32)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:num_dags]
    facets = ("records", "events", "counters", "timeline", "profile")

    def _run(workers, chunk=None, cache=None):
        sink = MemorySink()
        rec = Recorder(sink, timeline=Timeline(), profiler=Profiler())
        with recording(rec):
            result = run_study(
                dags,
                [suite],
                emulator,
                workers=workers,
                cache=cache,
                chunk=chunk,
            )
        counters = {
            k: v
            for k, v in rec.metrics()["counters"].items()
            if k != "runner.workers_clamped"
        }
        return (
            result.records,
            [r for r in sink.records if r.get("type") == "event"],
            counters,
            timeline_lines(rec.timeline.records),
            rec.profiler.structure(),
        )

    def _compare(serial_run, chunked_run, label):
        for facet, x, y in zip(facets, serial_run, chunked_run):
            if x != y:
                raise RuntimeError(
                    "chunked executor diverged from the serial loop "
                    f"on {facet} ({label})"
                )

    checked = 0
    serial = _run(1)
    for chunk in (1, 4, 10**9):
        _compare(serial, _run(4, chunk=chunk), f"workers=4, chunk={chunk}")
        checked += 1
    # Cold fills the cache through the pool; warm satisfies every cell
    # from the planner's batched probe and never dispatches.
    serial_root = tempfile.mkdtemp(prefix="repro-chunk-identity-")
    chunked_root = tempfile.mkdtemp(prefix="repro-chunk-identity-")
    try:
        serial_cold = _run(1, cache=ResultCache(serial_root))
        serial_warm = _run(1, cache=ResultCache(serial_root))
        _compare(
            serial_cold,
            _run(4, chunk=4, cache=ResultCache(chunked_root)),
            "cold cache, workers=4, chunk=4",
        )
        checked += 1
        _compare(
            serial_warm,
            _run(4, chunk=4, cache=ResultCache(chunked_root)),
            "warm cache, workers=4, chunk=4",
        )
        checked += 1
    finally:
        shutil.rmtree(serial_root, ignore_errors=True)
        shutil.rmtree(chunked_root, ignore_errors=True)
    return checked


def assert_live_identity(num_dags: int = NUM_DAGS) -> int:
    """Bit-identity sweep with live telemetry attached vs detached.

    Runs the bench study grid with no telemetry, then with a started
    :class:`~repro.obs.live.LiveTelemetry` bus observing — serially
    (parent-local folding) and through the chunked executor at four
    workers (queue + heartbeat path) — and compares records,
    observability events, counters, timeline lines and profiler
    structure case by case (``runner.workers_clamped`` excluded, as in
    :func:`assert_chunk_identity`).  Also checks the telemetry's own
    fold saw every cell.  The channel is strictly observational; any
    divergence is a bug.  Raises :class:`RuntimeError` on the first
    divergence; returns the number of configurations compared.  Backs
    the ``--assert-live`` bench flag.
    """
    from repro.obs import MemorySink, Profiler
    from repro.obs.timeline import timeline_lines

    platform = bayreuth_cluster(32)
    emulator = TGridEmulator(platform, seed=0)
    suite = build_analytical_suite(platform)
    dags = generate_paper_dags(seed=0)[:num_dags]
    facets = ("records", "events", "counters", "timeline", "profile")

    def _run(workers, telemetry=None):
        sink = MemorySink()
        rec = Recorder(sink, timeline=Timeline(), profiler=Profiler())
        with recording(rec):
            result = run_study(
                dags,
                [suite],
                emulator,
                workers=workers,
                telemetry=telemetry,
            )
        counters = {
            k: v
            for k, v in rec.metrics()["counters"].items()
            if k != "runner.workers_clamped"
        }
        return (
            result.records,
            [r for r in sink.records if r.get("type") == "event"],
            counters,
            timeline_lines(rec.timeline.records),
            rec.profiler.structure(),
        )

    num_cells = len(dags) * len(ALGORITHMS)
    checked = 0
    for workers in (1, 4):
        detached = _run(workers)
        telemetry = LiveTelemetry(heartbeat_s=0.2).start()
        try:
            attached = _run(workers, telemetry=telemetry)
        finally:
            telemetry.close()
        for facet, x, y in zip(facets, detached, attached):
            if x != y:
                raise RuntimeError(
                    "live telemetry perturbed the study "
                    f"on {facet} (workers={workers})"
                )
        snap = telemetry.snapshot()
        study = snap["study"]
        if study["total"] != num_cells or study["done"] != num_cells:
            raise RuntimeError(
                "live telemetry lost events: saw "
                f"{study['done']}/{study['total']} cells, expected "
                f"{num_cells}/{num_cells} (workers={workers})"
            )
        checked += 1
    return checked


@dataclass(frozen=True)
class StageComparison:
    """Per-stage verdict of a baseline comparison."""

    stage: str
    baseline_s: float
    current_s: float
    threshold: float

    @property
    def ratio(self) -> float:
        """current / baseline (> 1 means slower than the baseline)."""
        if self.baseline_s <= 0:
            return 1.0
        return self.current_s / self.baseline_s

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold


def compare_to_baseline(
    payload: dict, baseline: dict, *, threshold: float = 0.25
) -> list[StageComparison]:
    """Compare a bench payload's stages against a baseline payload.

    Stages absent from the baseline are skipped (new stages cannot
    regress).  ``threshold`` is the relative slowdown tolerated before
    a stage counts as regressed — benchmarks on shared runners are
    noisy, so small ratios mean nothing.
    """
    current_cfg = payload.get("config", {}).get("num_dags")
    baseline_cfg = baseline.get("config", {}).get("num_dags")
    if baseline_cfg is not None and current_cfg != baseline_cfg:
        raise ValueError(
            f"bench config mismatch: measured num_dags={current_cfg} vs "
            f"baseline num_dags={baseline_cfg}; per-stage times are not "
            "comparable (re-run with matching --dags)"
        )
    comparisons = []
    base_stages = baseline.get("stages", {})
    for stage, current in payload["stages"].items():
        base = base_stages.get(stage)
        if base is None:
            continue
        comparisons.append(
            StageComparison(
                stage=stage,
                baseline_s=base["seconds"],
                current_s=current["seconds"],
                threshold=threshold,
            )
        )
    return comparisons


def render_comparison(comparisons: list[StageComparison]) -> str:
    """Human-readable comparison table with a final verdict line."""
    lines = [
        f"  {'stage':<20} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}  verdict"
    ]
    for c in comparisons:
        verdict = "REGRESSED" if c.regressed else "ok"
        lines.append(
            f"  {c.stage:<20} {c.baseline_s:>9.3f}s {c.current_s:>9.3f}s "
            f"{c.ratio:>6.2f}x  {verdict}"
        )
    worst = max(comparisons, key=lambda c: c.ratio, default=None)
    if worst is None:
        lines.append("  (no comparable stages)")
    elif any(c.regressed for c in comparisons):
        lines.append(
            f"  FAIL: regression beyond {100 * worst.threshold:.0f}% "
            f"(worst: {worst.stage} at {worst.ratio:.2f}x)"
        )
    else:
        lines.append(
            f"  PASS: no stage beyond {100 * worst.threshold:.0f}% of baseline"
        )
    return "\n".join(lines)
