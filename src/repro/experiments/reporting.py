"""Plain-text rendering of every reproduced table and figure.

Each ``render_*`` function turns the data object produced by
:mod:`repro.experiments.figures` into the text block the benchmark
harness (and the CLI) prints — the same rows/series the paper reports,
in monospace form.
"""

from __future__ import annotations

from repro.experiments.comparison import AlgorithmComparison
from repro.experiments.figures import (
    Figure2,
    Figure3,
    Figure4,
    Figure6,
    Figure8,
    Table1,
    Table2,
)
from repro.util.text import format_signed_bars, format_table, hbar

__all__ = [
    "render_table1",
    "render_comparison",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure6",
    "render_figure8",
    "render_table2",
]


def render_table1(t1: Table1) -> str:
    """Table I: the DAG generation grid and per-instance summaries."""
    header = [
        "Table I - parameters used for generating random DAGs",
        f"  number of tasks        {t1.parameters['num_tasks']}",
        f"  input matrices (width) {t1.parameters['num_input_matrices']}",
        f"  add/mul ratio          {t1.parameters['add_ratio']}",
        f"  matrix size            {t1.parameters['n']}",
        f"  samples per cell       {t1.parameters['samples']}",
        f"  total DAG instances    {t1.total_instances}",
        "",
    ]
    table = format_table(
        ["dag", "tasks", "edges", "adds", "width", "levels", "n"],
        [
            [d.label, d.num_tasks, d.num_edges, d.num_additions, d.width,
             d.levels, d.n]
            for d in t1.dags
        ],
    )
    return "\n".join(header) + table


def render_comparison(cmp: AlgorithmComparison, *, paper_wrong: int | None = None) -> str:
    """Figs 1/5/7: per-DAG relative makespans, sim vs experiment."""
    dags = cmp.sorted_by_sim()
    width = max(len(d.dag_label) for d in dags)
    chart = format_signed_bars(
        [d.dag_label.rjust(width) for d in dags],
        [d.rel_sim for d in dags],
        [d.rel_exp for d in dags],
    )
    lines = [
        f"{cmp.challenger.upper()} makespan relative to {cmp.baseline.upper()} "
        f"(simulator: {cmp.simulator}, n = {cmp.n})",
        chart,
        "",
        f"wrong comparisons: {cmp.num_wrong} / {cmp.num_dags} "
        f"({100 * cmp.wrong_fraction:.0f} %)"
        + (f"   [paper: {paper_wrong} / 27]" if paper_wrong is not None else ""),
        f"{cmp.challenger} wins in experiment: "
        f"{cmp.challenger_experimental_wins} / {cmp.num_dags}",
    ]
    return "\n".join(lines)


def render_figure2(f2: Figure2) -> str:
    """Fig 2: relative error of the analytical task-time model."""
    rows = []
    sizes = sorted({n for n, _p in f2.java_errors})
    for p in range(1, 33):
        row: list[object] = [p]
        for n in sizes:
            row.append(f2.java_errors[(n, p)])
        rows.append(row)
    java = format_table(
        ["p"] + [f"Java n={n}" for n in sizes], rows, float_fmt="{:.3f}"
    )
    cray_sizes = sorted({n for n, _p in f2.cray_errors})
    rows = []
    for p in range(1, 33):
        rows.append([p] + [f2.cray_errors[(n, p)] for n in cray_sizes])
    cray = format_table(
        ["p"] + [f"PDGEMM n={n}" for n in cray_sizes], rows, float_fmt="{:.3f}"
    )
    return (
        "Fig 2 (left) - 1D MM/Java relative model error\n"
        f"{java}\n"
        f"max Java error: {f2.max_java_error():.2f} (paper: up to ~0.6)\n\n"
        "Fig 2 (right) - PDGEMM/Cray XT4 relative model error\n"
        f"{cray}\n"
        f"mean Cray error: {f2.mean_cray_error():.3f} (paper: ~0.10), "
        f"max: {f2.max_cray_error():.3f} (paper: up to 0.20)"
    )


def render_figure3(f3: Figure3) -> str:
    """Fig 3: task startup overhead per processor count."""
    vmax = max(f3.overheads.values())
    lines = ["Fig 3 - task startup overhead [s] (20 trials per point)"]
    for p in sorted(f3.overheads):
        v = f3.overheads[p]
        lines.append(f"p={p:>2} {v:6.3f}s {hbar(v, vmax, 40)}")
    lo, hi = f3.bounds()
    lines.append(
        f"range: {lo:.2f}-{hi:.2f} s (paper: ~0.8-1.6 s), "
        f"monotone: {f3.is_monotone} (paper: not monotone)"
    )
    return "\n".join(lines)


def render_figure4(f4: Figure4, *, step: int = 4) -> str:
    """Fig 4: redistribution overhead surface (sampled grid, in ms)."""
    srcs = sorted({s for s, _d in f4.grid})[::step]
    dsts = sorted({d for _s, d in f4.grid})[::step]
    rows = []
    for s in srcs:
        rows.append([f"src={s}"] + [1000.0 * f4.grid[(s, d)] for d in dsts])
    table = format_table(
        ["[ms]"] + [f"dst={d}" for d in dsts], rows, float_fmt="{:.0f}"
    )
    dst_slope, src_slope = f4.dst_slope_vs_src_slope()
    return (
        "Fig 4 - data redistribution overhead (subnet manager)\n"
        f"{table}\n"
        f"sensitivity: {1000 * dst_slope:.2f} ms per dst proc vs "
        f"{1000 * src_slope:.2f} ms per src proc "
        "(paper: depends mostly on p(dst))"
    )


def render_figure6(f6: Figure6) -> str:
    """Fig 6: regression fits with and without the outlier points."""
    rows = []
    for p in sorted(f6.measured):
        rows.append(
            [
                p,
                f6.measured[p],
                f6.naive_fit(p),
                f6.final_fit(p),
                "outlier" if p in f6.OUTLIER_PS else "",
            ]
        )
    table = format_table(
        ["p", "measured [s]", "naive fit", "final fit", ""],
        rows,
        float_fmt="{:.1f}",
    )
    return (
        f"Fig 6 - matmul n={f6.n} regression fits\n"
        f"naive plan (p = powers of two): {sorted(f6.naive_points)}\n"
        f"final plan (outliers avoided):  {sorted(f6.final_points)}\n"
        f"{table}\n"
        f"relative RMSE on clean points: naive {f6.naive_rmse:.3f} "
        f"vs final {f6.final_rmse:.3f}\n"
        f"naive fit non-physical in-regime: {f6.naive_fit_goes_nonphysical()}"
    )


def render_figure8(f8: Figure8) -> str:
    """Fig 8: box-whisker simulation error [%] per simulator/algorithm."""
    rows = []
    for (simulator, algorithm), b in sorted(f8.boxes.items()):
        rows.append(
            [simulator, algorithm, b.minimum, b.q1, b.median, b.q3,
             b.maximum, b.mean]
        )
    table = format_table(
        ["simulator", "algorithm", "min", "q1", "median", "q3", "max", "mean"],
        rows,
        float_fmt="{:.1f}",
    )
    return (
        "Fig 8 - makespan simulation error [%] over all DAGs\n"
        f"{table}\n"
        "(paper: analytical errors larger than the refined simulators' "
        "by orders of magnitude)"
    )


def render_table2(t2: Table2) -> str:
    """Table II: fitted regression coefficients vs the paper's."""
    rows = []
    for r in t2.rows:
        rows.append(
            [
                r.quantity,
                ", ".join(f"{v:.3f}" for v in r.fitted),
                ", ".join(f"{v:.3f}" for v in r.paper),
            ]
        )
    table = format_table(["quantity", "fitted (a, b)", "paper (a, b)"], rows)
    return "Table II - empirical regression models\n" + table
