"""Bench history store and rolling-baseline regression checks.

``repro bench`` appends each run's stage timings as one JSON line to
``benchmarks/history/bench_history.jsonl`` (committed, so CI inherits
a machine baseline), and ``repro bench --check`` compares a fresh run
against the *rolling baseline* — the per-stage median of the last few
compatible history entries.  A median over a window absorbs the
one-off outliers single-baseline comparisons trip over, while still
tracking genuine drift; the configurable tolerance plays the same role
as the committed-baseline comparison's threshold (see
``docs/performance.md``).

Entries are compatible when they measured the same work on the same
machine: equal ``num_dags``, engine backend, scheduler backend
(entries written before the scheduler switch existed count as
``object``) and host fingerprint (cpus / platform / python, stamped
into payloads since the host metadata landed; entries and payloads
both lacking one compare equal, so pre-metadata histories keep
working).  Cross-host comparisons are exactly the false regressions a
rolling baseline exists to avoid — a laptop's medians say nothing
about a CI container.  Incompatible entries are skipped, not errors —
the history file accumulates across configurations and machines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from repro import __version__
from repro.experiments.bench import StageComparison

__all__ = [
    "DEFAULT_WINDOW",
    "append_history",
    "check_against_history",
    "default_history_path",
    "history_entry",
    "host_fingerprint",
    "load_history",
    "rolling_baseline",
]

#: Rolling-baseline width: the median of up to this many of the most
#: recent compatible entries.
DEFAULT_WINDOW = 5


def default_history_path() -> Path:
    """The committed history file (checkout layout)."""
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "history"
        / "bench_history.jsonl"
    )


def history_entry(payload: dict) -> dict:
    """Flatten a bench payload into one append-ready history entry."""
    config = payload.get("config", {})
    return {
        "created": payload.get(
            "created", time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
        ),
        "version": payload.get("version", __version__),
        "host": payload.get("host"),
        "num_dags": config.get("num_dags"),
        "engine": config.get("engine"),
        "sched": config.get("sched", "object"),
        "repeat": config.get("repeat"),
        "stages": {
            name: stage["seconds"]
            for name, stage in payload.get("stages", {}).items()
        },
    }


def append_history(payload: dict, path: str | Path | None = None) -> dict:
    """Append one bench payload to the history file; returns the entry."""
    path = Path(path) if path is not None else default_history_path()
    entry = history_entry(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path | None = None) -> list[dict]:
    """All history entries, oldest first; [] when the file is absent."""
    path = Path(path) if path is not None else default_history_path()
    if not path.exists():
        return []
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"bench history {path} line {lineno} is not valid JSON: "
                f"{exc}"
            ) from None
        if not isinstance(entry, dict) or "stages" not in entry:
            raise ValueError(
                f"bench history {path} line {lineno} is not a history "
                "entry (missing 'stages')"
            )
        entries.append(entry)
    return entries


def host_fingerprint(host: object) -> tuple | None:
    """A host-metadata dict reduced to its comparable identity.

    ``None`` for entries/payloads without host metadata (written before
    it existed) — two missing fingerprints compare equal, so old
    histories still form baselines for old payloads, while an entry
    from a *different* machine (or from before the metadata existed,
    against a payload that has it) never does.
    """
    if not isinstance(host, dict):
        return None
    return (
        host.get("cpus"),
        str(host.get("platform")),
        str(host.get("python")),
    )


def _compatible(entry: dict, payload: dict) -> bool:
    config = payload.get("config", {})
    return (
        entry.get("num_dags") == config.get("num_dags")
        and entry.get("engine") == config.get("engine")
        and entry.get("sched", "object") == config.get("sched", "object")
        and host_fingerprint(entry.get("host"))
        == host_fingerprint(payload.get("host"))
    )


def rolling_baseline(
    entries: list[dict], payload: dict, *, window: int = DEFAULT_WINDOW
) -> tuple[dict[str, float], int]:
    """Per-stage median over the newest compatible entries.

    Returns ``(baseline seconds per stage, entries used)``; the
    baseline is empty when no entry matches the payload's
    configuration.  Only stages present in *every* used entry get a
    baseline — a stage added mid-history has no stable median yet.
    """
    recent = [e for e in entries if _compatible(e, payload)][-window:]
    if not recent:
        return {}, 0
    stages = set(recent[0]["stages"])
    for entry in recent[1:]:
        stages &= set(entry["stages"])
    baseline = {
        name: median(entry["stages"][name] for entry in recent)
        for name in sorted(stages)
    }
    return baseline, len(recent)


def check_against_history(
    payload: dict,
    entries: list[dict],
    *,
    tolerance: float = 0.10,
    window: int = DEFAULT_WINDOW,
) -> list[StageComparison] | None:
    """Compare a bench payload against the rolling history baseline.

    Returns one :class:`~repro.experiments.bench.StageComparison` per
    stage with a baseline (reusing the committed-baseline machinery,
    so rendering and regression verdicts are shared), or None when the
    history holds no compatible entries — the caller distinguishes
    "no baseline yet" from "nothing regressed".
    """
    baseline, used = rolling_baseline(entries, payload, window=window)
    if not used:
        return None
    comparisons = []
    for name, stage in payload.get("stages", {}).items():
        base_s = baseline.get(name)
        if base_s is None:
            continue
        comparisons.append(
            StageComparison(
                stage=name,
                baseline_s=base_s,
                current_s=stage["seconds"],
                threshold=tolerance,
            )
        )
    return comparisons
