"""Reproduction functions: one per table/figure of the paper.

Each ``figureN`` / ``tableN`` function takes a
:class:`~repro.experiments.context.StudyContext`, performs exactly the
computation behind the corresponding exhibit, and returns a plain data
object holding the rows/series the paper reports.  The benchmark
harness prints them; the integration tests assert their shape matches
the paper's findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dag.analysis import dag_width, precedence_levels
from repro.experiments.comparison import (
    AlgorithmComparison,
    compare_algorithms,
    simulation_errors,
)
from repro.experiments.context import StudyContext
from repro.models.analytical import AnalyticalTaskModel
from repro.models.regression import HyperbolicFit, fit_hyperbolic
from repro.dag.graph import Task
from repro.dag.kernels import MATMUL
from repro.platform.personalities import cray_xt4
from repro.profiling.profiler import profile_redistribution, profile_startup
from repro.profiling.sparse import NAIVE_POWER_OF_TWO_PLAN, PAPER_PLAN
from repro.testbed.kernels_rt import CrayPdgemmGroundTruth
from repro.util.stats import BoxStats

__all__ = [
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table2",
]


# ----------------------------------------------------------------------
# Table I — the DAG generation grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DagSummary:
    label: str
    num_tasks: int
    num_edges: int
    num_additions: int
    width: int
    levels: int
    n: int


@dataclass
class Table1:
    """The generated DAG set and its parameter grid."""

    parameters: dict
    dags: list[DagSummary] = field(default_factory=list)

    @property
    def total_instances(self) -> int:
        return len(self.dags)


def table1(ctx: StudyContext) -> Table1:
    """Generate the Table I DAG set and summarise every instance."""
    from repro.dag.generator import PAPER_GRID

    out = Table1(parameters=dict(PAPER_GRID))
    for params, graph in ctx.dags:
        additions = sum(1 for t in graph if t.kernel.name == "matadd")
        levels = precedence_levels(graph)
        out.dags.append(
            DagSummary(
                label=graph.name,
                num_tasks=len(graph),
                num_edges=graph.num_edges,
                num_additions=additions,
                width=dag_width(graph),
                levels=1 + max(levels.values()) if levels else 0,
                n=params.n,
            )
        )
    return out


# ----------------------------------------------------------------------
# Figures 1 / 5 / 7 — HCPA vs MCPA under the three simulators
# ----------------------------------------------------------------------
def figure1(ctx: StudyContext, n: int = 2000) -> AlgorithmComparison:
    """Analytical simulator vs experiment (paper: 16/27 wrong at n=2000)."""
    study = ctx.study("analytic")
    return compare_algorithms(study, simulator="analytic", n=n)


def figure5(ctx: StudyContext, n: int = 2000) -> AlgorithmComparison:
    """Profile-based simulator vs experiment (paper: 2-3/27 wrong)."""
    study = ctx.study("profile")
    return compare_algorithms(study, simulator="profile", n=n)


def figure7(ctx: StudyContext, n: int = 2000) -> AlgorithmComparison:
    """Empirical simulator vs experiment (paper: 1/27 and 6/27 wrong)."""
    study = ctx.study("empirical")
    return compare_algorithms(study, simulator="empirical", n=n)


# ----------------------------------------------------------------------
# Figure 2 — relative error of the analytical task-time model
# ----------------------------------------------------------------------
@dataclass
class Figure2:
    """Analytical-model prediction errors per processor count.

    ``java_errors[(n, p)]``: 1D matmul in Java on the Bayreuth cluster
    (paper: fluctuates without pattern, up to ~60 %).
    ``cray_errors[(n, p)]``: PDGEMM on the Cray XT4 (paper: ~10 %, up
    to 20 %).
    """

    java_errors: dict[tuple[int, int], float] = field(default_factory=dict)
    cray_errors: dict[tuple[int, int], float] = field(default_factory=dict)

    def max_java_error(self) -> float:
        return max(self.java_errors.values())

    def mean_cray_error(self) -> float:
        return float(np.mean(list(self.cray_errors.values())))

    def max_cray_error(self) -> float:
        return max(self.cray_errors.values())


def figure2(
    ctx: StudyContext,
    *,
    java_sizes: Sequence[int] = (2000, 3000),
    cray_sizes: Sequence[int] = (1024, 2048, 4096),
    trials: int = 5,
) -> Figure2:
    """Measure the analytical model's relative prediction error."""
    out = Figure2()
    model = AnalyticalTaskModel(ctx.platform)
    max_p = ctx.platform.num_nodes
    for n in java_sizes:
        for p in range(1, max_p + 1):
            measured = float(
                np.mean(ctx.emulator.measure_kernel("matmul", n, p, trials))
            )
            task = Task(task_id=0, kernel=MATMUL, n=n)
            predicted = model.duration(task, p)
            out.java_errors[(n, p)] = abs(predicted - measured) / measured

    cray_platform = cray_xt4(max_p)
    ground = CrayPdgemmGroundTruth(seed=ctx.seed, flops=cray_platform.flops)
    for n in cray_sizes:
        for p in range(1, max_p + 1):
            measured = ground.mean_time(n, p)
            # The paper's Cray model is pure compute (2n^3 / (p*FLOPS)).
            predicted = 2.0 * float(n) ** 3 / (p * cray_platform.flops)
            out.cray_errors[(n, p)] = abs(predicted - measured) / measured
    return out


# ----------------------------------------------------------------------
# Figure 3 — task startup overhead
# ----------------------------------------------------------------------
@dataclass
class Figure3:
    """Mean no-op startup overhead per processor count (20 trials)."""

    overheads: dict[int, float] = field(default_factory=dict)

    @property
    def is_monotone(self) -> bool:
        values = [self.overheads[p] for p in sorted(self.overheads)]
        return all(b >= a for a, b in zip(values, values[1:]))

    def bounds(self) -> tuple[float, float]:
        vals = list(self.overheads.values())
        return (min(vals), max(vals))


def figure3(ctx: StudyContext, *, trials: int = 20) -> Figure3:
    """Measure startup overheads for p = 1..N (paper: 0.8-1.6 s)."""
    return Figure3(overheads=profile_startup(ctx.emulator, trials=trials))


# ----------------------------------------------------------------------
# Figure 4 — redistribution overhead surface
# ----------------------------------------------------------------------
@dataclass
class Figure4:
    """Mean redistribution overhead over the (p_src, p_dst) grid."""

    grid: dict[tuple[int, int], float] = field(default_factory=dict)

    def dst_slope_vs_src_slope(self) -> tuple[float, float]:
        """Least-squares sensitivity of the overhead to p_dst and p_src.

        The paper's observation "the overhead depends mostly on p(dst)"
        translates to the first slope dominating the second.
        """
        keys = list(self.grid)
        A = np.column_stack(
            [
                [k[1] for k in keys],
                [k[0] for k in keys],
                np.ones(len(keys)),
            ]
        )
        y = np.array([self.grid[k] for k in keys])
        coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        return float(coef[0]), float(coef[1])


def figure4(ctx: StudyContext, *, trials: int = 3) -> Figure4:
    """Measure the redistribution-overhead grid (paper: 3 trials)."""
    return Figure4(grid=profile_redistribution(ctx.emulator, trials=trials))


# ----------------------------------------------------------------------
# Figure 6 — regression fits with and without outliers
# ----------------------------------------------------------------------
@dataclass
class Figure6:
    """Fit quality of the empirical matmul model, n = 3000 focus.

    ``naive``: hyperbolic fit over the power-of-two points (includes the
    p = 8 / p = 16 outliers); ``final``: the paper's outlier-avoiding
    points.  ``measured``: the full measured curve for reference;
    ``outlier_ps``: sample points the naive plan should have avoided.
    """

    n: int
    measured: dict[int, float] = field(default_factory=dict)
    naive_points: dict[int, float] = field(default_factory=dict)
    final_points: dict[int, float] = field(default_factory=dict)
    naive_fit: HyperbolicFit | None = None
    final_fit: HyperbolicFit | None = None

    #: Processor counts the paper identified as outliers (n = 3000).
    OUTLIER_PS = (8, 16)

    def rmse_over(self, points: dict[int, float], fit: HyperbolicFit) -> float:
        """Relative RMSE of a fit against measured points.

        Relative, because the hyperbolic regime spans two orders of
        magnitude (600 s at p = 1 down to 10 s at p = 15) and an
        absolute metric would see nothing but the p = 1 endpoint.
        """
        errs = [((fit(p) - t) / t) ** 2 for p, t in points.items()]
        return float(np.sqrt(np.mean(errs)))

    def _clean_points(self) -> dict[int, float]:
        """In-range hyperbolic measurements minus the known outliers.

        The quality criterion is how well a fit tracks the environment's
        *typical* behaviour inside the regime both plans sample
        (2 <= p <= 16); the outliers are exactly the points a model
        should not chase (the paper replaces them with p = 7 and 15).
        """
        return {
            p: t
            for p, t in self.measured.items()
            if 2 <= p <= PAPER_PLAN.split and p not in self.OUTLIER_PS
        }

    @property
    def naive_rmse(self) -> float:
        return self.rmse_over(self._clean_points(), self.naive_fit)

    @property
    def final_rmse(self) -> float:
        return self.rmse_over(self._clean_points(), self.final_fit)

    def naive_fit_goes_nonphysical(self) -> bool:
        """True when the outlier-chasing fit predicts a non-positive
        execution time somewhere in its own regime — the visually
        "poor quality" fit of the paper's Fig 6 (left)."""
        return any(
            self.naive_fit(p) <= 0 for p in range(2, PAPER_PLAN.split + 1)
        )


def figure6(ctx: StudyContext, *, n: int = 3000, trials: int = 3) -> Figure6:
    """Fit the hyperbolic branch from both sampling plans.

    The paper's Fig 6 (left) shows the poor fit caused by the p = 8 and
    p = 16 outliers; (right) the final fit after replacing them with
    p = 7 and p = 15.
    """
    out = Figure6(n=n)
    emu = ctx.emulator
    for p in range(1, ctx.platform.num_nodes + 1):
        out.measured[p] = float(np.mean(emu.measure_kernel("matmul", n, p, trials)))

    def sample(ps: Sequence[int]) -> dict[int, float]:
        return {p: out.measured[p] for p in ps}

    out.naive_points = sample(NAIVE_POWER_OF_TWO_PLAN.matmul_low)
    out.final_points = sample(PAPER_PLAN.matmul_low)
    out.naive_fit = fit_hyperbolic(
        list(out.naive_points), list(out.naive_points.values())
    )
    out.final_fit = fit_hyperbolic(
        list(out.final_points), list(out.final_points.values())
    )
    return out


# ----------------------------------------------------------------------
# Figure 8 — simulation error distributions
# ----------------------------------------------------------------------
@dataclass
class Figure8:
    """Box-whisker makespan error [%] per simulator and algorithm."""

    boxes: dict[tuple[str, str], BoxStats] = field(default_factory=dict)

    def median(self, simulator: str, algorithm: str) -> float:
        return self.boxes[(simulator, algorithm)].median


def figure8(ctx: StudyContext) -> Figure8:
    """Error statistics over all 54 DAGs x 2 algorithms x 3 simulators."""
    study = ctx.full_study()
    out = Figure8()
    for simulator in ("analytic", "profile", "empirical"):
        for algorithm in ("hcpa", "mcpa"):
            out.boxes[(simulator, algorithm)] = simulation_errors(
                study, simulator=simulator, algorithm=algorithm
            )
    return out


# ----------------------------------------------------------------------
# Table II — the fitted empirical models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    quantity: str
    fitted: tuple[float, ...]
    paper: tuple[float, ...]


@dataclass
class Table2:
    rows: list[Table2Row] = field(default_factory=list)

    def row(self, quantity: str) -> Table2Row:
        for r in self.rows:
            if r.quantity == quantity:
                return r
        raise KeyError(quantity)


#: The paper's printed Table II coefficients (hyperbolic coefficients
#: normalised to a/p + b form — the paper writes n=2000 as a/(2p) + b).
PAPER_TABLE2 = {
    "matmul n=2000 hyp": (239.44 / 2.0, 3.43),
    "matmul n=2000 lin": (0.08, 1.93),
    "matmul n=3000 hyp": (537.91, -25.55),
    "matmul n=3000 lin": (-0.09, 11.47),
    "matadd n=2000": (22.99, 0.03),
    "matadd n=3000": (73.59, 0.38),
    "redistribution startup": (0.00788, 0.10858),
    "task startup": (0.03, 0.65),
}


def table2(ctx: StudyContext) -> Table2:
    """Fit the empirical models and compare coefficients to Table II."""
    suite = ctx.empirical_suite
    task_model = suite.task_model
    out = Table2()
    for n in (2000, 3000):
        mm = task_model.curve("matmul", n)
        out.rows.append(
            Table2Row(
                quantity=f"matmul n={n} hyp",
                fitted=(mm.low.a, mm.low.b),
                paper=PAPER_TABLE2[f"matmul n={n} hyp"],
            )
        )
        out.rows.append(
            Table2Row(
                quantity=f"matmul n={n} lin",
                fitted=(mm.high.a, mm.high.b),
                paper=PAPER_TABLE2[f"matmul n={n} lin"],
            )
        )
        ma = task_model.curve("matadd", n)
        out.rows.append(
            Table2Row(
                quantity=f"matadd n={n}",
                fitted=(ma.low.a, ma.low.b),
                paper=PAPER_TABLE2[f"matadd n={n}"],
            )
        )
    out.rows.append(
        Table2Row(
            quantity="redistribution startup",
            fitted=(
                suite.redistribution_model.fit.a,
                suite.redistribution_model.fit.b,
            ),
            paper=PAPER_TABLE2["redistribution startup"],
        )
    )
    out.rows.append(
        Table2Row(
            quantity="task startup",
            fitted=(suite.startup_model.fit.a, suite.startup_model.fit.b),
            paper=PAPER_TABLE2["task startup"],
        )
    )
    return out
