"""The study driver: reproduce every table and figure of the paper.

* :mod:`repro.experiments.runner` — run (DAG x algorithm x simulator)
  grids through scheduling, simulation and testbed execution;
* :mod:`repro.experiments.comparison` — the paper's metrics: relative
  HCPA/MCPA makespans, sign agreement, simulation error distributions;
* :mod:`repro.experiments.context` — :class:`StudyContext`, a lazily
  calibrated bundle of platform + testbed + the three simulator suites;
* :mod:`repro.experiments.figures` — one function per table/figure,
  returning plain data objects the benchmarks print and check.
"""

from repro.experiments.runner import RunRecord, StudyResult, run_study
from repro.experiments.context import StudyContext
from repro.experiments.comparison import (
    AlgorithmComparison,
    compare_algorithms,
    simulation_errors,
)
from repro.experiments.variance import VarianceStudy, run_variance_study
from repro.experiments.attribution import GapAttribution, attribute_gap
from repro.experiments.sensitivity import SensitivitySweep, overhead_sensitivity
from repro.experiments import figures, reporting

__all__ = [
    "VarianceStudy",
    "run_variance_study",
    "GapAttribution",
    "attribute_gap",
    "SensitivitySweep",
    "overhead_sensitivity",
    "reporting",
    "RunRecord",
    "StudyResult",
    "run_study",
    "StudyContext",
    "AlgorithmComparison",
    "compare_algorithms",
    "simulation_errors",
    "figures",
]
