"""StudyContext: one fully-wired instance of the whole case study.

Bundles the platform, the testbed emulator, the 54 Table I DAGs and the
three calibrated simulator suites, computing each lazily and caching it,
so the per-figure reproduction functions (and the benchmarks) can share
expensive calibration work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Sequence

from repro.cache.result_cache import ResultCache
from repro.dag.generator import DagParameters, generate_paper_dags
from repro.dag.graph import TaskGraph
from repro.experiments.runner import StudyResult, run_study
from repro.platform.cluster import ClusterPlatform
from repro.platform.personalities import bayreuth_cluster
from repro.profiling.calibration import (
    SimulatorSuite,
    build_analytical_suite,
    build_empirical_suite,
    build_profile_suite,
)
from repro.testbed.tgrid import TGridEmulator

__all__ = ["StudyContext"]


@dataclass
class StudyContext:
    """Lazily-calibrated bundle of everything the study needs.

    Parameters
    ----------
    seed:
        Root seed of DAG generation and the testbed environment.
    num_nodes:
        Cluster size (the paper's N = 32).
    kernel_trials / startup_trials / redistribution_trials:
        Measurement repetitions used during calibration (paper: 3 / 20 / 3).
    workers:
        Process-pool size for study sweeps (1 = serial, the default).
        Parallel sweeps produce record-for-record identical results —
        see :func:`repro.experiments.runner.run_study`.
    cache_dir:
        Optional directory of the persistent content-addressed result
        cache.  When set, calibrated suites, schedules and traces are
        memoised on disk and warm study re-runs replay unchanged cells
        bit-identically — see :mod:`repro.cache`.
    engine:
        Simulation engine backend for study sweeps (``"object"`` or
        ``"array"``; None resolves via ``REPRO_ENGINE``).  Backends are
        bit-identical, so the choice only affects wall-clock time — see
        :mod:`repro.simgrid.arena`.
    sched:
        Scheduling (allocation) backend for the CPA-family algorithms
        (``"object"`` or ``"array"``; None resolves via
        ``REPRO_SCHED``).  Bit-identical like the engine backends — see
        :mod:`repro.scheduling.arena`.
    chunk:
        Cells per pool dispatch for parallel sweeps (None resolves via
        ``REPRO_CHUNK``; 0 = auto-size to the pool).  Any chunking is
        bit-identical to per-cell dispatch — see
        :func:`repro.experiments.runner.resolve_chunk`.
    telemetry:
        Optional :class:`repro.obs.live.LiveTelemetry` bus attached to
        every study sweep (the ``--progress`` / ``--live-out`` CLI
        flags).  Strictly observational: results and recorded metrics
        are bit-identical with or without it.
    """

    seed: int = 0
    num_nodes: int = 32
    kernel_trials: int = 3
    startup_trials: int = 20
    redistribution_trials: int = 3
    workers: int = 1
    cache_dir: str | Path | None = None
    engine: str | None = None
    sched: str | None = None
    chunk: int | None = None
    telemetry: object | None = None
    _studies: dict[tuple[str, ...], StudyResult] = field(
        default_factory=dict, repr=False
    )

    @cached_property
    def cache(self) -> ResultCache | None:
        """The persistent result cache (None when ``cache_dir`` unset)."""
        if self.cache_dir is None:
            return None
        return ResultCache(self.cache_dir)

    @cached_property
    def platform(self) -> ClusterPlatform:
        return bayreuth_cluster(self.num_nodes)

    @cached_property
    def emulator(self) -> TGridEmulator:
        return TGridEmulator(self.platform, seed=self.seed)

    @cached_property
    def dags(self) -> list[tuple[DagParameters, TaskGraph]]:
        """The 54 DAGs of Table I."""
        return generate_paper_dags(seed=self.seed)

    # ------------------------------------------------------------------
    # simulator suites
    # ------------------------------------------------------------------
    @cached_property
    def analytic_suite(self) -> SimulatorSuite:
        return build_analytical_suite(self.platform)

    @cached_property
    def profile_suite(self) -> SimulatorSuite:
        return build_profile_suite(
            self.emulator,
            kernel_trials=self.kernel_trials,
            startup_trials=self.startup_trials,
            redistribution_trials=self.redistribution_trials,
            cache=self.cache,
        )

    @cached_property
    def empirical_suite(self) -> SimulatorSuite:
        return build_empirical_suite(
            self.emulator,
            kernel_trials=self.kernel_trials,
            startup_trials=self.startup_trials,
            redistribution_trials=self.redistribution_trials,
            cache=self.cache,
        )

    def suite(self, name: str) -> SimulatorSuite:
        # Dispatch through thunks: a dict of attribute reads would
        # evaluate (and calibrate) all three cached suites just to
        # return one — the observability traces caught exactly that.
        try:
            builder = {
                "analytic": lambda: self.analytic_suite,
                "profile": lambda: self.profile_suite,
                "empirical": lambda: self.empirical_suite,
            }[name]
        except KeyError:
            raise ValueError(
                f"unknown simulator suite {name!r}; "
                "choose analytic, profile or empirical"
            ) from None
        return builder()

    # ------------------------------------------------------------------
    # studies
    # ------------------------------------------------------------------
    def study(self, *suite_names: str) -> StudyResult:
        """Run (or return the cached) study for the named simulators.

        Studies are cached per suite, so ``study("analytic")`` followed
        by ``full_study()`` only runs the analytic sweep once.
        """
        names = tuple(sorted(set(suite_names))) or ("analytic",)
        merged = StudyResult()
        for name in names:
            key = (name,)
            cached = self._studies.get(key)
            if cached is None:
                cached = run_study(
                    self.dags,
                    [self.suite(name)],
                    self.emulator,
                    workers=self.workers,
                    cache=self.cache,
                    engine=self.engine,
                    sched=self.sched,
                    chunk=self.chunk,
                    telemetry=self.telemetry,
                )
                self._studies[key] = cached
            merged.records.extend(cached.records)
        # Merged provenance: same seed/platform for every sub-study, so
        # re-collect with the union of suite names.
        from repro.obs.manifest import RunManifest
        from repro.obs.recorder import get_recorder

        rec = get_recorder()
        merged.manifest = RunManifest.collect(
            seed=self.seed,
            cluster=self.platform,
            simulators=list(names),
            algorithms=sorted(
                {r.algorithm for r in merged.records}
            ),
            num_records=len(merged.records),
            recorder=rec if rec.enabled else None,
        )
        return merged

    def full_study(self) -> StudyResult:
        """All three simulators over all 54 DAGs (Fig 8's input)."""
        return self.study("analytic", "profile", "empirical")
