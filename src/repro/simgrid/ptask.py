"""The ``ptask_L07`` parallel-task action model.

SimGrid's L07 model describes a parallel task by a computation vector
``a`` (flops each processor executes) and a communication matrix ``B``
(bytes exchanged between processor pairs).  The task has a single
progress variable; when it advances by a fraction ``d``, processor ``i``
has executed ``d * a[i]`` flops and ``d * B[i][j]`` bytes have crossed
the ``i -> j`` route.  Under max-min sharing this makes the task's rate
the minimum over its resources of the fair share it obtains there — the
slowest processor or the most contended link bounds the whole task,
exactly like a tightly-coupled data-parallel kernel.

This module converts task specifications (computation per host + a list
of flows) into engine :class:`~repro.simgrid.engine.Action` objects whose
*work* is normalised to 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import NetworkTopology, Resource
from repro.util.errors import SimulationError

__all__ = [
    "ParallelTaskSpec",
    "build_ptask_action",
    "comm_matrix_to_flows",
    "redistribution_flows",
]

Flow = tuple[int, int, float]  # (src_host, dst_host, bytes)


@dataclass
class ParallelTaskSpec:
    """A parallel task in the L07 style.

    Attributes
    ----------
    name:
        Debug label.
    comp:
        ``{host: flops}`` — computation executed on each physical host.
    flows:
        ``(src_host, dst_host, bytes)`` triples; intra-host flows are
        allowed and cost nothing.
    extra_latency:
        Additional fixed delay folded into the action's latency phase
        (used for measured startup / redistribution overheads).
    """

    name: str
    comp: dict[int, float] = field(default_factory=dict)
    flows: list[Flow] = field(default_factory=list)
    extra_latency: float = 0.0

    def validate(self) -> None:
        for host, flops in self.comp.items():
            if flops < 0:
                raise SimulationError(
                    f"ptask {self.name!r}: negative computation on host {host}"
                )
        for src, dst, nbytes in self.flows:
            if nbytes < 0:
                raise SimulationError(
                    f"ptask {self.name!r}: negative flow {src}->{dst}"
                )
        if self.extra_latency < 0:
            raise SimulationError(f"ptask {self.name!r}: negative latency")

    @property
    def is_empty(self) -> bool:
        """True when the task has no computation and no inter-host data."""
        return (
            all(f <= 0 for f in self.comp.values())
            and all(b <= 0 or s == d for s, d, b in self.flows)
        )


def comm_matrix_to_flows(B: np.ndarray, hosts: Sequence[int]) -> list[Flow]:
    """Map a local-rank byte matrix onto physical hosts.

    ``B[i, j]`` bytes between local ranks become a flow between
    ``hosts[i]`` and ``hosts[j]``.  Zero entries and intra-host pairs are
    skipped (intra-host copies are free at this modelling level).
    """
    B = np.asarray(B, dtype=float)
    p = len(hosts)
    if B.shape != (p, p):
        raise ValueError(f"comm matrix shape {B.shape} != ({p}, {p})")
    flows: list[Flow] = []
    for i in range(p):
        for j in range(p):
            if B[i, j] > 0 and hosts[i] != hosts[j]:
                flows.append((hosts[i], hosts[j], float(B[i, j])))
    return flows


def redistribution_flows(
    M: np.ndarray, src_hosts: Sequence[int], dst_hosts: Sequence[int]
) -> list[Flow]:
    """Map a redistribution byte matrix (src rank x dst rank) onto hosts."""
    M = np.asarray(M, dtype=float)
    if M.shape != (len(src_hosts), len(dst_hosts)):
        raise ValueError(
            f"redistribution matrix shape {M.shape} != "
            f"({len(src_hosts)}, {len(dst_hosts)})"
        )
    flows: list[Flow] = []
    for i, src in enumerate(src_hosts):
        for j, dst in enumerate(dst_hosts):
            if M[i, j] > 0 and src != dst:
                flows.append((src, dst, float(M[i, j])))
    return flows


def build_ptask_action(
    topology: NetworkTopology,
    spec: ParallelTaskSpec,
    on_complete: Optional[Callable[[SimulationEngine, Action], None]] = None,
    payload: object = None,
) -> Action:
    """Build the engine action realising a parallel-task specification.

    The action's work is normalised to 1.0; consumption weights are the
    total flops per CPU and total bytes per link, so the action's
    standalone duration is ``max(max_i a_i / power, max_l bytes_l / bw_l)
    + latency`` and contention arises naturally from the shared solver.
    """
    spec.validate()
    consumption: dict[Resource, float] = {}
    for host, flops in spec.comp.items():
        if flops > 0:
            cpu = topology.cpu(host)
            consumption[cpu] = consumption.get(cpu, 0.0) + flops
    max_route_latency = 0.0
    for src, dst, nbytes in spec.flows:
        if nbytes <= 0 or src == dst:
            continue
        for link in topology.route(src, dst):
            consumption[link] = consumption.get(link, 0.0) + nbytes
        max_route_latency = max(max_route_latency, topology.route_latency(src, dst))
    work = 0.0 if not consumption else 1.0
    return Action(
        name=spec.name,
        work=work,
        consumption=consumption,
        latency=spec.extra_latency + max_route_latency,
        on_complete=on_complete,
        payload=payload,
    )
