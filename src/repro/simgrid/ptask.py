"""The ``ptask_L07`` parallel-task action model.

SimGrid's L07 model describes a parallel task by a computation vector
``a`` (flops each processor executes) and a communication matrix ``B``
(bytes exchanged between processor pairs).  The task has a single
progress variable; when it advances by a fraction ``d``, processor ``i``
has executed ``d * a[i]`` flops and ``d * B[i][j]`` bytes have crossed
the ``i -> j`` route.  Under max-min sharing this makes the task's rate
the minimum over its resources of the fair share it obtains there — the
slowest processor or the most contended link bounds the whole task,
exactly like a tightly-coupled data-parallel kernel.

This module converts task specifications (computation per host + a list
of flows) into engine :class:`~repro.simgrid.engine.Action` objects whose
*work* is normalised to 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.simgrid.engine import Action, SimulationEngine
from repro.simgrid.resources import NetworkTopology, Resource
from repro.util.errors import SimulationError

__all__ = [
    "ParallelTaskSpec",
    "build_ptask_action",
    "build_matrix_ptask",
    "comm_matrix_to_flows",
    "matrix_network_totals",
    "redistribution_flows",
]

Flow = tuple[int, int, float]  # (src_host, dst_host, bytes)


@dataclass
class ParallelTaskSpec:
    """A parallel task in the L07 style.

    Attributes
    ----------
    name:
        Debug label.
    comp:
        ``{host: flops}`` — computation executed on each physical host.
    flows:
        ``(src_host, dst_host, bytes)`` triples; intra-host flows are
        allowed and cost nothing.
    extra_latency:
        Additional fixed delay folded into the action's latency phase
        (used for measured startup / redistribution overheads).
    """

    name: str
    comp: dict[int, float] = field(default_factory=dict)
    flows: list[Flow] = field(default_factory=list)
    extra_latency: float = 0.0

    def validate(self) -> None:
        for host, flops in self.comp.items():
            if flops < 0:
                raise SimulationError(
                    f"ptask {self.name!r}: negative computation on host {host}"
                )
        for src, dst, nbytes in self.flows:
            if nbytes < 0:
                raise SimulationError(
                    f"ptask {self.name!r}: negative flow {src}->{dst}"
                )
        if self.extra_latency < 0:
            raise SimulationError(f"ptask {self.name!r}: negative latency")

    @property
    def is_empty(self) -> bool:
        """True when the task has no computation and no inter-host data."""
        return (
            all(f <= 0 for f in self.comp.values())
            and all(b <= 0 or s == d for s, d, b in self.flows)
        )


def comm_matrix_to_flows(B: np.ndarray, hosts: Sequence[int]) -> list[Flow]:
    """Map a local-rank byte matrix onto physical hosts.

    ``B[i, j]`` bytes between local ranks become a flow between
    ``hosts[i]`` and ``hosts[j]``.  Zero entries and intra-host pairs are
    skipped (intra-host copies are free at this modelling level).
    """
    B = np.asarray(B, dtype=float)
    p = len(hosts)
    if B.shape != (p, p):
        raise ValueError(f"comm matrix shape {B.shape} != ({p}, {p})")
    flows: list[Flow] = []
    # ``tolist`` converts to plain floats once; per-element ndarray
    # indexing costs a boxed scalar per read and dominates this loop.
    rows = B.tolist()
    for i in range(p):
        src = hosts[i]
        row = rows[i]
        for j in range(p):
            b = row[j]
            if b > 0 and src != hosts[j]:
                flows.append((src, hosts[j], b))
    return flows


def redistribution_flows(
    M: np.ndarray, src_hosts: Sequence[int], dst_hosts: Sequence[int]
) -> list[Flow]:
    """Map a redistribution byte matrix (src rank x dst rank) onto hosts."""
    M = np.asarray(M, dtype=float)
    if M.shape != (len(src_hosts), len(dst_hosts)):
        raise ValueError(
            f"redistribution matrix shape {M.shape} != "
            f"({len(src_hosts)}, {len(dst_hosts)})"
        )
    flows: list[Flow] = []
    rows = M.tolist()
    for i, src in enumerate(src_hosts):
        row = rows[i]
        for j, dst in enumerate(dst_hosts):
            b = row[j]
            if b > 0 and src != dst:
                flows.append((src, dst, b))
    return flows


def matrix_network_totals(
    matrix_rows: Sequence[Sequence[float]],
    src_hosts: Sequence[int],
    dst_hosts: Sequence[int],
) -> tuple[list[tuple[int, float]], list[tuple[int, float]], float]:
    """Per-link byte totals of a byte matrix on a star topology.

    Returns ``(up_items, down_items, backbone_total)``: uplink
    ``(src_host, bytes)`` totals in row order, downlink
    ``(dst_host, bytes)`` totals in column order, and the total bytes
    crossing the backbone.  Accumulation order is load-bearing: an
    uplink total adds its row left-to-right, a downlink total adds its
    column top-to-bottom, and the backbone total adds row-major —
    exactly the order the per-flow path visits them, so the sums are
    floating-point identical to it.  Both engine backends build their
    network consumption from this one helper, which is what makes their
    solver inputs bit-identical by construction.

    ``down_items`` is empty whenever ``backbone_total`` is zero (no
    off-node traffic means no downlink entries either).
    """
    backbone_total = 0.0
    n_dst = len(dst_hosts)
    down_totals = [0.0] * n_dst
    up_items: list[tuple[int, float]] = []
    for i, src in enumerate(src_hosts):
        row = matrix_rows[i]
        up_total = 0.0
        for j in range(n_dst):
            b = row[j]
            if b > 0 and src != dst_hosts[j]:
                up_total = up_total + b
                backbone_total = backbone_total + b
                down_totals[j] = down_totals[j] + b
        if up_total > 0.0:
            up_items.append((src, up_total))
    down_items: list[tuple[int, float]] = []
    if backbone_total > 0.0:
        for j in range(n_dst):
            total = down_totals[j]
            if total > 0.0:
                down_items.append((dst_hosts[j], total))
    return up_items, down_items, backbone_total


def build_matrix_ptask(
    topology: NetworkTopology,
    name: str,
    comp: dict[int, float],
    matrix_rows: Sequence[Sequence[float]],
    src_hosts: Sequence[int],
    dst_hosts: Sequence[int],
    extra_latency: float = 0.0,
    on_complete: Optional[Callable[[SimulationEngine, Action], None]] = None,
    payload: object = None,
) -> tuple[Action, float]:
    """Fused byte-matrix-to-action builder for trusted callers.

    Semantically ``build_ptask_action`` applied to the flows of
    ``matrix_rows`` (``matrix_rows[i][j]`` bytes from ``src_hosts[i]``
    to ``dst_hosts[j]``), but in a single row-major pass that
    accumulates per-link totals directly instead of materialising a
    flow list and hammering the consumption dict per flow.  The sums
    are floating-point identical to the flow-list path: an uplink total
    adds its row left-to-right, a downlink total adds its column
    top-to-bottom, and the backbone total adds row-major — exactly the
    order the per-flow accumulation visits them in a star topology.

    Inputs are trusted (no spec validation): the byte matrix must be
    non-negative and shaped ``(len(src_hosts), len(dst_hosts))``, as
    the distribution/model helpers guarantee by construction.

    Returns ``(action, volume)`` where ``volume`` is the total bytes
    crossing the network — the same left-to-right flow-order sum the
    flow-list path computes.
    """
    consumption: dict[Resource, float] = {}
    get = consumption.get
    for host, flops in comp.items():
        if flops > 0:
            cpu = topology.cpu(host)
            consumption[cpu] = get(cpu, 0.0) + flops
    max_route_latency = 0.0
    backbone_total = 0.0
    if matrix_rows:
        up_items, down_items, backbone_total = matrix_network_totals(
            matrix_rows, src_hosts, dst_hosts
        )
        uplinks = topology.uplinks
        for src, total in up_items:
            consumption[uplinks[src]] = total
        if backbone_total > 0.0:
            consumption[topology.backbone] = backbone_total
            # Every off-node route shares one latency in the star
            # topology, so the max over flows is that constant.
            max_route_latency = topology.offnode_latency
            downlinks = topology.downlinks
            for dst, total in down_items:
                consumption[downlinks[dst]] = total
    work = 0.0 if not consumption else 1.0
    action = Action(
        name=name,
        work=work,
        consumption=consumption,
        latency=extra_latency + max_route_latency,
        on_complete=on_complete,
        payload=payload,
    )
    return action, backbone_total


def build_ptask_action(
    topology: NetworkTopology,
    spec: ParallelTaskSpec,
    on_complete: Optional[Callable[[SimulationEngine, Action], None]] = None,
    payload: object = None,
) -> Action:
    """Build the engine action realising a parallel-task specification.

    The action's work is normalised to 1.0; consumption weights are the
    total flops per CPU and total bytes per link, so the action's
    standalone duration is ``max(max_i a_i / power, max_l bytes_l / bw_l)
    + latency`` and contention arises naturally from the shared solver.
    """
    spec.validate()
    consumption: dict[Resource, float] = {}
    get = consumption.get
    for host, flops in spec.comp.items():
        if flops > 0:
            cpu = topology.cpu(host)
            consumption[cpu] = get(cpu, 0.0) + flops
    max_route_latency = 0.0
    for src, dst, nbytes in spec.flows:
        if nbytes <= 0 or src == dst:
            continue
        for link in topology.route(src, dst):
            consumption[link] = get(link, 0.0) + nbytes
        lat = topology.route_latency(src, dst)
        if lat > max_route_latency:
            max_route_latency = lat
    work = 0.0 if not consumption else 1.0
    return Action(
        name=spec.name,
        work=work,
        consumption=consumption,
        latency=spec.extra_latency + max_route_latency,
        on_complete=on_complete,
        payload=payload,
    )
