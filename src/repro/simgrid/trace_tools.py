"""Trace inspection tools: ASCII Gantt charts and JSON export.

The paper's simulator "outputs an application execution trace"; these
helpers make our traces human-readable (for the examples and for
debugging schedules) and machine-readable (JSON round-trip for external
tooling).
"""

from __future__ import annotations

import json

from repro.scheduling.schedule import Schedule
from repro.simgrid.simulator import EdgeRecord, SimulationTrace, TaskRecord

__all__ = [
    "render_gantt",
    "render_schedule_gantt",
    "trace_to_dict",
    "trace_from_dict",
    "trace_to_json",
    "trace_from_json",
]


def render_gantt(
    trace: SimulationTrace,
    *,
    num_hosts: int,
    width: int = 72,
) -> str:
    """Render a per-host ASCII Gantt chart of a trace.

    Each row is one host; each task paints its id (mod 10) over the
    columns spanning its realised execution interval.  Idle time shows
    as dots.  Redistribution activity is listed below the chart (it
    occupies links, not hosts).
    """
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    if width < 10:
        raise ValueError("width must be >= 10")
    makespan = max(trace.makespan, 1e-12)
    scale = width / makespan
    rows = [["." for _ in range(width)] for _ in range(num_hosts)]
    for rec in trace.tasks.values():
        lo = min(width - 1, int(rec.start * scale))
        hi = min(width, max(lo + 1, int(rec.finish * scale)))
        glyph = str(rec.task_id % 10)
        for host in rec.hosts:
            for col in range(lo, hi):
                rows[host][col] = glyph
    lines = [f"Gantt chart ({makespan:.2f} s across {width} columns)"]
    for host, cells in enumerate(rows):
        lines.append(f"host {host:>2} |{''.join(cells)}|")
    if trace.edges:
        lines.append("redistributions:")
        for (src, dst), rec in sorted(trace.edges.items()):
            mb = rec.volume_bytes / 1e6
            lines.append(
                f"  {src}->{dst}: {rec.start:8.2f}-{rec.finish:8.2f} s, "
                f"{mb:7.1f} MB, overhead {rec.overhead * 1000:6.1f} ms"
            )
    return "\n".join(lines)


def trace_to_dict(trace: SimulationTrace) -> dict:
    """Plain-dict form of a trace (JSON-serialisable)."""
    return {
        "makespan": trace.makespan,
        "tasks": [
            {
                "task_id": rec.task_id,
                "hosts": list(rec.hosts),
                "start": rec.start,
                "finish": rec.finish,
                "startup_overhead": rec.startup_overhead,
            }
            for rec in trace.tasks.values()
        ],
        "redistributions": [
            {
                "src": rec.src,
                "dst": rec.dst,
                "start": rec.start,
                "finish": rec.finish,
                "overhead": rec.overhead,
                "volume_bytes": rec.volume_bytes,
            }
            for rec in trace.edges.values()
        ],
    }


def trace_from_dict(data: dict) -> SimulationTrace:
    """Inverse of :func:`trace_to_dict` (full JSON round-trip)."""
    trace = SimulationTrace(makespan=float(data["makespan"]))
    for rec in data.get("tasks", []):
        record = TaskRecord(
            task_id=int(rec["task_id"]),
            hosts=tuple(int(h) for h in rec["hosts"]),
            start=float(rec["start"]),
            finish=float(rec["finish"]),
            startup_overhead=float(rec["startup_overhead"]),
        )
        trace.tasks[record.task_id] = record
    for rec in data.get("redistributions", []):
        record = EdgeRecord(
            src=int(rec["src"]),
            dst=int(rec["dst"]),
            start=float(rec["start"]),
            finish=float(rec["finish"]),
            overhead=float(rec["overhead"]),
            volume_bytes=float(rec["volume_bytes"]),
        )
        trace.edges[(record.src, record.dst)] = record
    return trace


def trace_to_json(trace: SimulationTrace, *, indent: int = 2) -> str:
    """JSON form of a trace."""
    return json.dumps(trace_to_dict(trace), indent=indent)


def trace_from_json(text: str) -> SimulationTrace:
    """Inverse of :func:`trace_to_json`."""
    return trace_from_dict(json.loads(text))


def render_schedule_gantt(
    schedule: Schedule,
    *,
    num_hosts: int,
    width: int = 72,
) -> str:
    """Render the *scheduler's estimated* Gantt chart of a schedule.

    Complements :func:`render_gantt` (which draws realised traces):
    comparing the two side by side shows where reality diverged from
    the scheduler's plan.
    """
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    if width < 10:
        raise ValueError("width must be >= 10")
    horizon = max(
        (p.est_finish for p in schedule.placements.values()), default=0.0
    )
    horizon = max(horizon, 1e-12)
    scale = width / horizon
    rows = [["." for _ in range(width)] for _ in range(num_hosts)]
    for placement in schedule.placements.values():
        lo = min(width - 1, int(placement.est_start * scale))
        hi = min(width, max(lo + 1, int(placement.est_finish * scale)))
        glyph = str(placement.task_id % 10)
        for host in placement.hosts:
            for col in range(lo, hi):
                rows[host][col] = glyph
    lines = [
        f"Planned Gantt chart ({schedule.algorithm or 'schedule'}: "
        f"{horizon:.2f} s estimated across {width} columns)"
    ]
    for host, cells in enumerate(rows):
        lines.append(f"host {host:>2} |{''.join(cells)}|")
    return "\n".join(lines)
