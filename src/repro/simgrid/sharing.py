"""Bottleneck max-min fair-sharing rate solver.

SimGrid's analytical network/CPU models assign rates to concurrent
actions by solving a max-min fairness problem: each action ``a`` has a
consumption weight ``w[a][r]`` on every resource ``r`` it uses, and the
solver finds rates ``rho[a]`` such that

* feasibility: ``sum_a w[a][r] * rho[a] <= C[r]`` for every resource, and
* max-min fairness: no action's rate can be increased without decreasing
  the rate of an action with an equal or smaller rate.

The classic bottleneck algorithm solves this exactly: repeatedly find the
resource with the smallest *fair share* ``C_rem[r] / W_rem[r]`` (remaining
capacity over the summed weight of still-unfixed actions), freeze every
unfixed action crossing it at that share, deduct their consumption, and
iterate.  Weighted max-min: an action's rate on a bottleneck resource is
``fair_share`` (the same for all actions crossing it), i.e. its
throughput on the resource is proportional to its weight — this matches
SimGrid's treatment of parallel tasks in ``ptask_L07``.

Three implementations live here:

* :func:`solve_rates` — the production scalar solver.  It keeps a
  per-resource weight dict from which frozen actions are *deleted*, and
  re-sums a resource's remaining load only when one of its actions froze
  since the last round (the resource is "dirty").  The naive algorithm
  re-sums every resource's load over *all* actions in every round —
  ``O(rounds * R * A)``; the dirty-resource scheme does the ``O(E)``
  total deletion work once (``E`` = weight entries) plus
  ``O(rounds * R)`` for the bottleneck scan, and only re-sums loads that
  actually changed.
* :func:`solve_rates_vectorized` — the same algorithm over numpy arrays
  (a dense action x resource weight matrix), used by the array engine
  backend (:mod:`repro.simgrid.arena`) for large working sets and
  exposed here behind the same dict API for the equivalence tests.
* :func:`_maxmin_flat` — the scalar algorithm over the array engine's
  flat CSR inputs (integer resource ids, list storage), used by the
  array engine for small working sets where numpy's fixed per-op cost
  dominates.
* :func:`solve_rates_reference` — the original textbook loop, kept as
  the oracle for the equivalence property tests.

All three are *floating-point identical*, not merely approximately
equal.  For the scalar pair: deleting frozen actions from the
per-resource dicts preserves the insertion order of the surviving
entries, so the re-summed load adds the same floats in the same order as
the reference's filtered sum, and the capacity deductions execute in the
same sequence.  The vectorized solver preserves the same accumulation
order by construction — see :func:`_maxmin_dense` for the ordering
argument.  Bottleneck *ties* are broken deterministically: resources are
scanned in first-touch order (the order the consumption mapping first
references them), which the vectorized path reproduces with a
first-occurrence ``argmin`` over first-touch-ranked columns.  The
equivalence suites in ``tests/simgrid/test_sharing_equivalence.py`` and
``tests/simgrid/test_sharing_vectorized.py`` assert exact equality on
randomized instances.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

__all__ = ["solve_rates", "solve_rates_reference", "solve_rates_vectorized"]

_EPS = 1e-12


def solve_rates(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
    *,
    validate: bool = True,
) -> dict[Hashable, float]:
    """Solve weighted max-min fair rates.

    Parameters
    ----------
    consumption:
        ``{action: {resource: weight}}``; weights must be positive (drop
        zero entries before calling).  An action with an empty mapping
        is unconstrained and gets rate ``float('inf')``.
    capacity:
        ``{resource: capacity}`` for at least every referenced resource.
    validate:
        When False, skip the per-entry input checks.  For trusted
        callers only (the engine constructs both mappings from
        already-validated actions/resources); validation never affects
        the computed rates, so this is purely a hot-path switch.

    Returns
    -------
    dict
        ``{action: rate}`` with rates in work-units per second.

    Raises
    ------
    ValueError
        On non-positive weights/capacities or unknown resources (only
        with ``validate=True``).
    """
    if len(consumption) == 1:
        # Fast path for the dominant engine workload: between
        # redistribution waves most solves see a single working action,
        # whose max-min rate is simply its smallest standalone fair
        # share.  Mirrors the general algorithm exactly (validation,
        # the load > _EPS filter, ``float(cap) / w`` in the same form),
        # so the result is bit-identical to the general loop's.
        ((action, weights),) = consumption.items()
        if not weights:
            return {action: float("inf")}
        best_share = None
        for res, w in weights.items():
            if validate:
                if w <= 0:
                    raise ValueError(
                        f"consumption weight of {action!r} on {res!r} "
                        "must be positive"
                    )
                if res not in capacity:
                    raise ValueError(
                        f"resource {res!r} has no declared capacity"
                    )
                if capacity[res] <= 0:
                    raise ValueError(f"capacity of {res!r} must be positive")
            if w <= _EPS:
                continue
            share = float(capacity[res]) / w
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            raise AssertionError("max-min solver lost its remaining actions")
        return {action: best_share}

    rates: dict[Hashable, float] = {}
    # Index each action's resources once.  ``usage[res]`` holds only the
    # still-unfixed actions: freezing an action deletes its entries, so
    # a load re-sum visits exactly the floats the reference algorithm's
    # ``if a in unfixed`` filter would, in the same order.
    usage: dict[object, dict[Hashable, float]] = {}
    unfixed_left = 0
    usage_get = usage.get
    # ``remaining_cap`` and the initial ``loads`` are seeded during
    # indexing: first sight of a resource sets ``loads[res] = w`` and
    # later entries accumulate ``loads[res] + w`` — the same floats
    # added left-to-right in the same (insertion) order as the
    # ``sum(usage[res].values())`` re-sum, and ``0 + w == w`` bitwise
    # for the positive weights the solver accepts, so the first round
    # needs no re-sum pass at all.
    remaining_cap: dict[object, float] = {}
    loads: dict[object, float] = {}
    for action, weights in consumption.items():
        if not weights:
            rates[action] = float("inf")
            continue
        unfixed_left += 1
        for res, w in weights.items():
            if validate:
                if w <= 0:
                    raise ValueError(
                        f"consumption weight of {action!r} on {res!r} "
                        "must be positive"
                    )
                if res not in capacity:
                    raise ValueError(
                        f"resource {res!r} has no declared capacity"
                    )
            per_res = usage_get(res)
            if per_res is None:
                usage[res] = {action: w}
                loads[res] = w
                cap = capacity[res]
                if validate and cap <= 0:
                    raise ValueError(f"capacity of {res!r} must be positive")
                remaining_cap[res] = float(cap)
            else:
                per_res[action] = w
                loads[res] = loads[res] + w

    # First-touch iteration order (``usage`` is insertion-ordered): the
    # bottleneck scan visits resources in the order the consumption
    # mapping first references them, so ties between equal fair shares
    # break deterministically — and identically to the vectorized
    # solver's first-occurrence argmin over first-touch-ranked columns.
    active_res = dict.fromkeys(usage)
    dirty: set = set()  # resources whose load must be re-summed
    while unfixed_left:
        for res in dirty:
            loads[res] = sum(usage[res].values())
        dirty.clear()
        # Fair share of each still-active resource.
        best_share = None
        best_res = None
        for res in active_res:
            load = loads[res]
            if load <= _EPS:
                continue
            share = remaining_cap[res] / load
            if best_share is None or share < best_share:
                best_share = share
                best_res = res
        if best_res is None:
            # No active resource constrains the remaining actions; they
            # only used resources already saturated by themselves —
            # cannot happen because every unfixed action crosses at
            # least one resource with positive load (its own weight).
            raise AssertionError("max-min solver lost its remaining actions")
        # Freeze every unfixed action crossing the bottleneck.  The
        # bottleneck itself retires first: once a resource leaves
        # ``active_res`` its load, remaining capacity and usage entries
        # are never read again, so deductions and deletions are applied
        # to *still-active* resources only — the rates are unaffected
        # and the per-freeze work shrinks with every round.
        frozen = list(usage[best_res])
        del active_res[best_res]
        dirty_add = dirty.add
        for action in frozen:
            rates[action] = best_share
            unfixed_left -= 1
            # Deduct its consumption from every resource that can still
            # become a bottleneck and drop it from their indices.
            # ``rc if rc > 0.0 else 0.0`` is bit-identical to
            # ``max(0.0, rc)`` (same result for negatives, exact zeros
            # and NaN) without the call overhead.
            for res, w in consumption[action].items():
                if res in active_res:
                    rc = remaining_cap[res] - w * best_share
                    remaining_cap[res] = rc if rc > 0.0 else 0.0
                    del usage[res][action]
                    dirty_add(res)
    return rates


def _maxmin_flat(
    row_counts: list,
    e_rid: list,
    e_w: list,
    caps_by_rid: list,
) -> list:
    """Scalar bottleneck loop over a flat CSR-style instance.

    The small-instance twin of :func:`_maxmin_dense`: same inputs (as
    plain Python sequences; ``caps_by_rid`` holds Python floats), same
    output (rates per row, ``inf`` for empty rows), same floats.  The
    array engine dispatches to this kernel when the working set is
    small — at a handful of actions the interpreter loop over flat
    lists is several times faster than numpy's per-op overhead — and
    to the vectorized kernel at scale.

    Bit-identity: this is :func:`solve_rates` transliterated — the same
    first-touch dicts seeded with the same left-to-right load sums, the
    same bottleneck scan with strict-less tie-breaking, the same
    ``rc if rc > 0.0 else 0.0`` deduction clamp, the same dirty-resource
    re-sum — with integer resource ids instead of Resource keys and row
    indices instead of action objects.  Trusted internal kernel: inputs
    are not validated (rows' ids must be distinct, weights positive).
    """
    inf = float("inf")
    A = len(row_counts)
    rates = [inf] * A
    nonempty = [i for i in range(A) if row_counts[i]]
    if not nonempty:
        return rates
    if len(nonempty) == 1:
        # Single non-empty row: its max-min rate is its smallest
        # standalone fair share — the same floats, filter and strict
        # minimum as the scalar fast path.
        best = None
        for rid, w in zip(e_rid, e_w):
            if w <= _EPS:
                continue
            share = caps_by_rid[rid] / w
            if best is None or share < best:
                best = share
        if best is None:
            raise AssertionError("max-min solver lost its remaining actions")
        rates[nonempty[0]] = best
        return rates

    usage: dict[int, dict[int, float]] = {}
    usage_get = usage.get
    loads: dict[int, float] = {}
    remaining_cap: dict[int, float] = {}
    row_entries: dict[int, tuple[list, list]] = {}
    pos = 0
    for i, c in enumerate(row_counts):
        if not c:
            continue
        end = pos + c
        rid_row = e_rid[pos:end]
        w_row = e_w[pos:end]
        row_entries[i] = (rid_row, w_row)
        for rid, w in zip(rid_row, w_row):
            per_rid = usage_get(rid)
            if per_rid is None:
                usage[rid] = {i: w}
                loads[rid] = w
                remaining_cap[rid] = caps_by_rid[rid]
            else:
                per_rid[i] = w
                loads[rid] = loads[rid] + w
        pos = end

    active_res = dict.fromkeys(usage)
    dirty: set = set()
    unfixed_left = len(nonempty)
    while unfixed_left:
        for rid in dirty:
            loads[rid] = sum(usage[rid].values())
        dirty.clear()
        best_share = None
        best_rid = None
        for rid in active_res:
            load = loads[rid]
            if load <= _EPS:
                continue
            share = remaining_cap[rid] / load
            if best_share is None or share < best_share:
                best_share = share
                best_rid = rid
        if best_rid is None:
            raise AssertionError("max-min solver lost its remaining actions")
        frozen = list(usage[best_rid])
        del active_res[best_rid]
        dirty_add = dirty.add
        for i in frozen:
            rates[i] = best_share
            unfixed_left -= 1
            rid_row, w_row = row_entries[i]
            for rid, w in zip(rid_row, w_row):
                if rid in active_res:
                    rc = remaining_cap[rid] - w * best_share
                    remaining_cap[rid] = rc if rc > 0.0 else 0.0
                    del usage[rid][i]
                    dirty_add(rid)
    return rates


def _maxmin_dense(
    row_counts: np.ndarray,
    e_rid: np.ndarray,
    e_w: np.ndarray,
    caps_by_rid: np.ndarray,
) -> np.ndarray:
    """Vectorized bottleneck loop over a CSR-style instance.

    Parameters
    ----------
    row_counts:
        Entries per action row, ``(A,)``.  Entry arrays are the rows'
        entries concatenated in row order.
    e_rid / e_w:
        Resource id and weight per entry, ``(E,)``.  Resource ids within
        one row must be distinct and weights positive (the engine and
        the dict wrapper guarantee both).
    caps_by_rid:
        float64 capacities, indexable by every id in ``e_rid``.

    Returns
    -------
    ndarray
        float64 rates per row; rows without entries get ``inf``.

    Bit-identity argument (why this equals :func:`solve_rates` exactly):

    * Load sums fold rows top-to-bottom via ``np.add.accumulate`` (a
      strictly sequential fold, unlike ``np.add.reduceat``/``np.sum``
      which use pairwise summation) after masking frozen rows to zero;
      adding ``0.0`` to a non-negative partial is the identity, so each
      column accumulates exactly the scalar solver's surviving floats in
      insertion order.
    * Columns are arranged in first-touch order (stable argsort of the
      first entry position per resource), so the first-occurrence
      ``argmin`` breaks fair-share ties on the same resource the scalar
      scan picks.
    * Deductions apply per frozen action in row order with the same
      ``w * share`` product and the same ``rc if rc > 0.0 else 0.0``
      clamp (``np.where(rc > 0.0, rc, 0.0)``); untouched columns pass
      through ``x - 0.0`` unchanged bitwise.
    """
    A = row_counts.shape[0]
    rates = np.full(A, np.inf)
    nonempty = np.flatnonzero(row_counts > 0)
    k = nonempty.shape[0]
    if k == 0:
        return rates
    if k == 1:
        # All entries belong to the single non-empty row; its max-min
        # rate is its smallest standalone fair share — the same floats,
        # filter and min as the scalar fast path.
        mask = e_w > _EPS
        if not mask.any():
            raise AssertionError("max-min solver lost its remaining actions")
        shares = caps_by_rid[e_rid[mask]] / e_w[mask]
        rates[nonempty[0]] = shares.min()
        return rates

    counts = row_counts[nonempty]
    row_of_e = np.repeat(np.arange(k), counts)
    uniq, first, inv = np.unique(e_rid, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    col = rank[inv]
    R = uniq.shape[0]
    W = np.zeros((k, R))
    W[row_of_e, col] = e_w
    rcap = caps_by_rid[uniq[order]]  # fancy indexing: a fresh array
    unfixed = np.ones(k, bool)
    active = np.ones(R, bool)
    inf = np.inf
    remaining = k
    while remaining:
        loads = np.add.accumulate(W * unfixed[:, None], axis=0)[-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = rcap / loads
        shares[~active | (loads <= _EPS)] = inf
        b = int(shares.argmin())
        share = float(shares[b])
        if share == inf:
            raise AssertionError("max-min solver lost its remaining actions")
        frozen = np.flatnonzero(unfixed & (W[:, b] > 0.0))
        active[b] = False
        for a in frozen:
            rates[nonempty[a]] = share
            unfixed[a] = False
            ded = np.where(active, W[a] * share, 0.0)
            rc = rcap - ded
            rcap = np.where(rc > 0.0, rc, 0.0)
        remaining -= frozen.shape[0]
    return rates


def solve_rates_vectorized(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
    *,
    validate: bool = True,
) -> dict[Hashable, float]:
    """Vectorized :func:`solve_rates` behind the same dict API.

    Bit-identical to the scalar solver on every valid instance (see
    :func:`_maxmin_dense` for the argument); raises the same exceptions
    on invalid input.  The array engine backend skips this wrapper and
    feeds :func:`_maxmin_dense` its arena arrays directly.
    """
    actions = []
    row_counts: list[int] = []
    rid_of: dict[object, int] = {}
    caps: list[float] = []
    e_rid: list[int] = []
    e_w: list[float] = []
    for action, weights in consumption.items():
        actions.append(action)
        count = 0
        for res, w in weights.items():
            if validate:
                if w <= 0:
                    raise ValueError(
                        f"consumption weight of {action!r} on {res!r} "
                        "must be positive"
                    )
                if res not in capacity:
                    raise ValueError(
                        f"resource {res!r} has no declared capacity"
                    )
            rid = rid_of.get(res)
            if rid is None:
                cap = capacity[res]
                if validate and cap <= 0:
                    raise ValueError(f"capacity of {res!r} must be positive")
                rid = rid_of[res] = len(caps)
                caps.append(float(cap))
            e_rid.append(rid)
            e_w.append(w)
            count += 1
        row_counts.append(count)
    rates = _maxmin_dense(
        np.asarray(row_counts, dtype=np.intp),
        np.asarray(e_rid, dtype=np.intp),
        np.asarray(e_w, dtype=float),
        np.asarray(caps, dtype=float),
    )
    return dict(zip(actions, rates.tolist()))


def solve_rates_reference(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
) -> dict[Hashable, float]:
    """The original bottleneck loop, kept as the equivalence oracle.

    Functionally and floating-point identical to :func:`solve_rates`,
    but re-sums every active resource's load over all actions in every
    round (``O(rounds * R * A)``).  Used by the property-based
    equivalence tests; not called from production code.
    """
    rates: dict[Hashable, float] = {}
    usage: dict[object, dict[Hashable, float]] = {}
    unfixed: set[Hashable] = set()
    for action, weights in consumption.items():
        if not weights:
            rates[action] = float("inf")
            continue
        unfixed.add(action)
        for res, w in weights.items():
            if w <= 0:
                raise ValueError(
                    f"consumption weight of {action!r} on {res!r} must be positive"
                )
            if res not in capacity:
                raise ValueError(f"resource {res!r} has no declared capacity")
            usage.setdefault(res, {})[action] = w
    remaining_cap = {}
    for res in usage:
        cap = capacity[res]
        if cap <= 0:
            raise ValueError(f"capacity of {res!r} must be positive")
        remaining_cap[res] = float(cap)

    # First-touch order, matching :func:`solve_rates` (tie-breaks).
    active_res = dict.fromkeys(usage)
    while unfixed:
        best_share = None
        best_res = None
        for res in active_res:
            load = sum(w for a, w in usage[res].items() if a in unfixed)
            if load <= _EPS:
                continue
            share = remaining_cap[res] / load
            if best_share is None or share < best_share:
                best_share = share
                best_res = res
        if best_res is None:
            raise AssertionError("max-min solver lost its remaining actions")
        frozen = [a for a in usage[best_res] if a in unfixed]
        for action in frozen:
            rates[action] = best_share
            unfixed.discard(action)
            for res, w in consumption[action].items():
                remaining_cap[res] = max(0.0, remaining_cap[res] - w * best_share)
        del active_res[best_res]
    return rates
