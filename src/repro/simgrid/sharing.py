"""Bottleneck max-min fair-sharing rate solver.

SimGrid's analytical network/CPU models assign rates to concurrent
actions by solving a max-min fairness problem: each action ``a`` has a
consumption weight ``w[a][r]`` on every resource ``r`` it uses, and the
solver finds rates ``rho[a]`` such that

* feasibility: ``sum_a w[a][r] * rho[a] <= C[r]`` for every resource, and
* max-min fairness: no action's rate can be increased without decreasing
  the rate of an action with an equal or smaller rate.

The classic bottleneck algorithm solves this exactly: repeatedly find the
resource with the smallest *fair share* ``C_rem[r] / W_rem[r]`` (remaining
capacity over the summed weight of still-unfixed actions), freeze every
unfixed action crossing it at that share, deduct their consumption, and
iterate.  Weighted max-min: an action's rate on a bottleneck resource is
``fair_share`` (the same for all actions crossing it), i.e. its
throughput on the resource is proportional to its weight — this matches
SimGrid's treatment of parallel tasks in ``ptask_L07``.
"""

from __future__ import annotations

from typing import Hashable, Mapping

__all__ = ["solve_rates"]

_EPS = 1e-12


def solve_rates(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
) -> dict[Hashable, float]:
    """Solve weighted max-min fair rates.

    Parameters
    ----------
    consumption:
        ``{action: {resource: weight}}``; weights must be positive (drop
        zero entries before calling).  An action with an empty mapping
        is unconstrained and gets rate ``float('inf')``.
    capacity:
        ``{resource: capacity}`` for at least every referenced resource.

    Returns
    -------
    dict
        ``{action: rate}`` with rates in work-units per second.

    Raises
    ------
    ValueError
        On non-positive weights/capacities or unknown resources.
    """
    rates: dict[Hashable, float] = {}
    # Validate and index.
    usage: dict[object, dict[Hashable, float]] = {}
    unfixed: set[Hashable] = set()
    for action, weights in consumption.items():
        if not weights:
            rates[action] = float("inf")
            continue
        unfixed.add(action)
        for res, w in weights.items():
            if w <= 0:
                raise ValueError(
                    f"consumption weight of {action!r} on {res!r} must be positive"
                )
            if res not in capacity:
                raise ValueError(f"resource {res!r} has no declared capacity")
            usage.setdefault(res, {})[action] = w
    remaining_cap = {}
    for res in usage:
        cap = capacity[res]
        if cap <= 0:
            raise ValueError(f"capacity of {res!r} must be positive")
        remaining_cap[res] = float(cap)

    active_res = set(usage)
    while unfixed:
        # Fair share of each still-active resource.
        best_share = None
        best_res = None
        for res in active_res:
            load = sum(w for a, w in usage[res].items() if a in unfixed)
            if load <= _EPS:
                continue
            share = remaining_cap[res] / load
            if best_share is None or share < best_share:
                best_share = share
                best_res = res
        if best_res is None:
            # No active resource constrains the remaining actions; they
            # only used resources already saturated by themselves —
            # cannot happen because every unfixed action crosses at
            # least one resource with positive load (its own weight).
            raise AssertionError("max-min solver lost its remaining actions")
        # Freeze every unfixed action crossing the bottleneck.
        frozen = [a for a in usage[best_res] if a in unfixed]
        for action in frozen:
            rates[action] = best_share
            unfixed.discard(action)
            # Deduct its consumption everywhere it appears.
            for res, w in consumption[action].items():
                remaining_cap[res] = max(0.0, remaining_cap[res] - w * best_share)
        active_res.discard(best_res)
    return rates
