"""Bottleneck max-min fair-sharing rate solver.

SimGrid's analytical network/CPU models assign rates to concurrent
actions by solving a max-min fairness problem: each action ``a`` has a
consumption weight ``w[a][r]`` on every resource ``r`` it uses, and the
solver finds rates ``rho[a]`` such that

* feasibility: ``sum_a w[a][r] * rho[a] <= C[r]`` for every resource, and
* max-min fairness: no action's rate can be increased without decreasing
  the rate of an action with an equal or smaller rate.

The classic bottleneck algorithm solves this exactly: repeatedly find the
resource with the smallest *fair share* ``C_rem[r] / W_rem[r]`` (remaining
capacity over the summed weight of still-unfixed actions), freeze every
unfixed action crossing it at that share, deduct their consumption, and
iterate.  Weighted max-min: an action's rate on a bottleneck resource is
``fair_share`` (the same for all actions crossing it), i.e. its
throughput on the resource is proportional to its weight — this matches
SimGrid's treatment of parallel tasks in ``ptask_L07``.

Two implementations live here:

* :func:`solve_rates` — the production solver.  It keeps a per-resource
  weight dict from which frozen actions are *deleted*, and re-sums a
  resource's remaining load only when one of its actions froze since the
  last round (the resource is "dirty").  The naive algorithm re-sums
  every resource's load over *all* actions in every round —
  ``O(rounds * R * A)``; the dirty-resource scheme does the ``O(E)``
  total deletion work once (``E`` = weight entries) plus
  ``O(rounds * R)`` for the bottleneck scan, and only re-sums loads that
  actually changed.
* :func:`solve_rates_reference` — the original textbook loop, kept as
  the oracle for the equivalence property tests.

The two are *floating-point identical*, not merely approximately equal:
deleting frozen actions from the per-resource dicts preserves the
insertion order of the surviving entries, so the re-summed load adds the
same floats in the same order as the reference's filtered sum, and the
capacity deductions execute in the same sequence.  The equivalence suite
in ``tests/simgrid/test_sharing_equivalence.py`` asserts exact equality
on randomized instances.
"""

from __future__ import annotations

from typing import Hashable, Mapping

__all__ = ["solve_rates", "solve_rates_reference"]

_EPS = 1e-12


def solve_rates(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
    *,
    validate: bool = True,
) -> dict[Hashable, float]:
    """Solve weighted max-min fair rates.

    Parameters
    ----------
    consumption:
        ``{action: {resource: weight}}``; weights must be positive (drop
        zero entries before calling).  An action with an empty mapping
        is unconstrained and gets rate ``float('inf')``.
    capacity:
        ``{resource: capacity}`` for at least every referenced resource.
    validate:
        When False, skip the per-entry input checks.  For trusted
        callers only (the engine constructs both mappings from
        already-validated actions/resources); validation never affects
        the computed rates, so this is purely a hot-path switch.

    Returns
    -------
    dict
        ``{action: rate}`` with rates in work-units per second.

    Raises
    ------
    ValueError
        On non-positive weights/capacities or unknown resources (only
        with ``validate=True``).
    """
    if len(consumption) == 1:
        # Fast path for the dominant engine workload: between
        # redistribution waves most solves see a single working action,
        # whose max-min rate is simply its smallest standalone fair
        # share.  Mirrors the general algorithm exactly (validation,
        # the load > _EPS filter, ``float(cap) / w`` in the same form),
        # so the result is bit-identical to the general loop's.
        ((action, weights),) = consumption.items()
        if not weights:
            return {action: float("inf")}
        best_share = None
        for res, w in weights.items():
            if validate:
                if w <= 0:
                    raise ValueError(
                        f"consumption weight of {action!r} on {res!r} "
                        "must be positive"
                    )
                if res not in capacity:
                    raise ValueError(
                        f"resource {res!r} has no declared capacity"
                    )
                if capacity[res] <= 0:
                    raise ValueError(f"capacity of {res!r} must be positive")
            if w <= _EPS:
                continue
            share = float(capacity[res]) / w
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            raise AssertionError("max-min solver lost its remaining actions")
        return {action: best_share}

    rates: dict[Hashable, float] = {}
    # Index each action's resources once.  ``usage[res]`` holds only the
    # still-unfixed actions: freezing an action deletes its entries, so
    # a load re-sum visits exactly the floats the reference algorithm's
    # ``if a in unfixed`` filter would, in the same order.
    usage: dict[object, dict[Hashable, float]] = {}
    unfixed_left = 0
    usage_get = usage.get
    # ``remaining_cap`` and the initial ``loads`` are seeded during
    # indexing: first sight of a resource sets ``loads[res] = w`` and
    # later entries accumulate ``loads[res] + w`` — the same floats
    # added left-to-right in the same (insertion) order as the
    # ``sum(usage[res].values())`` re-sum, and ``0 + w == w`` bitwise
    # for the positive weights the solver accepts, so the first round
    # needs no re-sum pass at all.
    remaining_cap: dict[object, float] = {}
    loads: dict[object, float] = {}
    for action, weights in consumption.items():
        if not weights:
            rates[action] = float("inf")
            continue
        unfixed_left += 1
        for res, w in weights.items():
            if validate:
                if w <= 0:
                    raise ValueError(
                        f"consumption weight of {action!r} on {res!r} "
                        "must be positive"
                    )
                if res not in capacity:
                    raise ValueError(
                        f"resource {res!r} has no declared capacity"
                    )
            per_res = usage_get(res)
            if per_res is None:
                usage[res] = {action: w}
                loads[res] = w
                cap = capacity[res]
                if validate and cap <= 0:
                    raise ValueError(f"capacity of {res!r} must be positive")
                remaining_cap[res] = float(cap)
            else:
                per_res[action] = w
                loads[res] = loads[res] + w

    active_res = set(usage)
    dirty: set = set()  # resources whose load must be re-summed
    while unfixed_left:
        for res in dirty:
            loads[res] = sum(usage[res].values())
        dirty.clear()
        # Fair share of each still-active resource.
        best_share = None
        best_res = None
        for res in active_res:
            load = loads[res]
            if load <= _EPS:
                continue
            share = remaining_cap[res] / load
            if best_share is None or share < best_share:
                best_share = share
                best_res = res
        if best_res is None:
            # No active resource constrains the remaining actions; they
            # only used resources already saturated by themselves —
            # cannot happen because every unfixed action crosses at
            # least one resource with positive load (its own weight).
            raise AssertionError("max-min solver lost its remaining actions")
        # Freeze every unfixed action crossing the bottleneck.  The
        # bottleneck itself retires first: once a resource leaves
        # ``active_res`` its load, remaining capacity and usage entries
        # are never read again, so deductions and deletions are applied
        # to *still-active* resources only — the rates are unaffected
        # and the per-freeze work shrinks with every round.
        frozen = list(usage[best_res])
        active_res.discard(best_res)
        dirty_add = dirty.add
        for action in frozen:
            rates[action] = best_share
            unfixed_left -= 1
            # Deduct its consumption from every resource that can still
            # become a bottleneck and drop it from their indices.
            # ``rc if rc > 0.0 else 0.0`` is bit-identical to
            # ``max(0.0, rc)`` (same result for negatives, exact zeros
            # and NaN) without the call overhead.
            for res, w in consumption[action].items():
                if res in active_res:
                    rc = remaining_cap[res] - w * best_share
                    remaining_cap[res] = rc if rc > 0.0 else 0.0
                    del usage[res][action]
                    dirty_add(res)
    return rates


def solve_rates_reference(
    consumption: Mapping[Hashable, Mapping[object, float]],
    capacity: Mapping[object, float],
) -> dict[Hashable, float]:
    """The original bottleneck loop, kept as the equivalence oracle.

    Functionally and floating-point identical to :func:`solve_rates`,
    but re-sums every active resource's load over all actions in every
    round (``O(rounds * R * A)``).  Used by the property-based
    equivalence tests; not called from production code.
    """
    rates: dict[Hashable, float] = {}
    usage: dict[object, dict[Hashable, float]] = {}
    unfixed: set[Hashable] = set()
    for action, weights in consumption.items():
        if not weights:
            rates[action] = float("inf")
            continue
        unfixed.add(action)
        for res, w in weights.items():
            if w <= 0:
                raise ValueError(
                    f"consumption weight of {action!r} on {res!r} must be positive"
                )
            if res not in capacity:
                raise ValueError(f"resource {res!r} has no declared capacity")
            usage.setdefault(res, {})[action] = w
    remaining_cap = {}
    for res in usage:
        cap = capacity[res]
        if cap <= 0:
            raise ValueError(f"capacity of {res!r} must be positive")
        remaining_cap[res] = float(cap)

    active_res = set(usage)
    while unfixed:
        best_share = None
        best_res = None
        for res in active_res:
            load = sum(w for a, w in usage[res].items() if a in unfixed)
            if load <= _EPS:
                continue
            share = remaining_cap[res] / load
            if best_share is None or share < best_share:
                best_share = share
                best_res = res
        if best_res is None:
            raise AssertionError("max-min solver lost its remaining actions")
        frozen = [a for a in usage[best_res] if a in unfixed]
        for action in frozen:
            rates[action] = best_share
            unfixed.discard(action)
            for res, w in consumption[action].items():
                remaining_cap[res] = max(0.0, remaining_cap[res] - w * best_share)
        active_res.discard(best_res)
    return rates
